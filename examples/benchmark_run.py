"""Full SNB-Interactive benchmark run on both systems under test.

Plays the paper's complete procedure: generate → bulk-load 32 months →
curate parameters → interleave the Table 4 query mix with the 4-month
update stream → drive it through the dependency-tracking scheduler →
print the full-disclosure report — first unthrottled (peak throughput),
then at a fixed acceleration factor to check the run is *sustained*
(the benchmark's actual passing criterion).

Run:  python examples/benchmark_run.py
"""

from repro.core import BenchmarkConfig, InteractiveBenchmark, render_report
from repro.driver.modes import ExecutionMode


def main() -> None:
    for sut in ("store", "engine"):
        config = BenchmarkConfig(
            num_persons=250,
            seed=7,
            sut=sut,
            num_partitions=4,
            mode=ExecutionMode.SEQUENTIAL,
            bindings_per_query=8,
        )
        print(f"\n{'=' * 70}\nunthrottled run — {sut}\n{'=' * 70}")
        report = InteractiveBenchmark(config).run()
        print(render_report(report))

    # Throttled runs: the benchmark's headline metric is the highest
    # acceleration factor (simulation time / real time) the system can
    # sustain — the paper's Virtuoso run sustained 2.5, Sparksee 0.1,
    # on GB-scale data; a miniature in-memory dataset sustains far
    # higher factors.
    print(f"\n{'=' * 70}\nacceleration factor probe\n{'=' * 70}")
    best = None
    for acceleration in (1e6, 4e6, 1.6e7, 6.4e7):
        throttled = BenchmarkConfig(
            num_persons=150, seed=7, sut="store", num_partitions=4,
            mode=ExecutionMode.SEQUENTIAL, bindings_per_query=4,
            acceleration=acceleration,
        )
        report = InteractiveBenchmark(throttled).run()
        verdict = "sustained" if report.sustained \
            else "NOT sustained"
        print(f"  acceleration {acceleration:>12.0f}: {verdict} "
              f"(wall {report.wall_seconds:5.1f}s, late fraction "
              f"{report.late_fraction:.1%}, max lateness covered by "
              f"the 1s slack)" if report.sustained else
              f"  acceleration {acceleration:>12.0f}: {verdict} "
              f"(wall {report.wall_seconds:5.1f}s, late fraction "
              f"{report.late_fraction:.1%})")
        if report.sustained:
            best = acceleration
    if best is not None:
        print(f"\nbenchmark score — sustained acceleration factor: "
              f"{best:.0f}")


if __name__ == "__main__":
    main()
