"""Social analytics scenario: the workload the paper's intro motivates.

"Social network analysis on data that contains excerpts of social
networks is a very common marketing activity nowadays."  This example
plays a marketing analyst working an SNB network through the public API:

1. find trending topics in a user's circle (Q4),
2. recommend new friends by shared interests (Q10),
3. identify engaged audiences via recent likes (Q7),
4. check how tightly two communities connect (Q13/Q14),
5. find experts to consult on a topic category (Q12).

Run:  python examples/social_analytics.py
"""

from collections import Counter

from repro.datagen import DatagenConfig, generate
from repro.datagen.stats import FrequencyStatistics
from repro.queries.complex_reads import q4, q7, q10, q12, q13, q14
from repro.sim_time import MILLIS_PER_DAY, iso
from repro.store import load_network


def main() -> None:
    config = DatagenConfig(num_persons=300, seed=99)
    network = generate(config)
    store = load_network(network)
    stats = FrequencyStatistics.of(network)

    # Focus on a well-connected user (an "influencer").
    influencer_id = max(stats.friend_count,
                        key=lambda pid: stats.friend_count[pid])
    influencer = network.person_by_id()[influencer_id]
    print(f"analyst focus: {influencer.first_name} "
          f"{influencer.last_name} "
          f"({stats.friend_count[influencer_id]} friends, "
          f"{stats.two_hop_count[influencer_id]} in 2-hop circle)")

    with store.transaction() as txn:
        # 1. Trending topics in the influencer's circle, last 90 days.
        window_start = config.window.end - 90 * MILLIS_PER_DAY
        trending = q4.run(txn, q4.Q4Params(influencer_id, window_start,
                                           90))
        print("\ntrending new topics among friends (Q4):")
        for row in trending[:5]:
            print(f"  {row.tag_name}: {row.post_count} posts")

        # 2. Friend recommendations (horoscope-gated, as in the spec).
        print("\nfriend recommendations (Q10):")
        recommendations = []
        for month in range(1, 13):
            recommendations += q10.run(
                txn, q10.Q10Params(influencer_id, month))
        recommendations.sort(key=lambda r: -r.similarity)
        for row in recommendations[:5]:
            print(f"  {row.first_name} {row.last_name} "
                  f"({row.city_name}), interest similarity "
                  f"{row.similarity}")

        # 3. Audience engagement: who likes this user's content?
        likes = q7.run(txn, q7.Q7Params(influencer_id))
        outside = sum(1 for row in likes
                      if row.is_outside_connections)
        print(f"\nrecent likers (Q7): {len(likes)}, of which "
              f"{outside} from outside direct connections")
        for row in likes[:3]:
            print(f"  {iso(row.like_date)} {row.first_name} "
                  f"{row.last_name} (latency "
                  f"{row.latency_minutes} min)")

        # 4. Community connectivity: distance to the least-connected
        # person, and interaction-weighted paths to a peer.
        loner_id = min(stats.friend_count,
                       key=lambda pid: stats.friend_count[pid])
        distance = q13.run(txn, q13.Q13Params(influencer_id,
                                              loner_id))[0].length
        print(f"\nshortest path to least-connected member (Q13): "
              f"{distance}")
        peer_id = sorted(stats.friend_count,
                         key=lambda pid: -stats.friend_count[pid])[1]
        paths = q14.run(txn, q14.Q14Params(influencer_id, peer_id))
        if paths:
            best = paths[0]
            print(f"strongest path to peer influencer (Q14): weight "
                  f"{best.weight:.1f} over {len(best.path) - 1} hops")

        # 5. Experts per topic category (Q12) across categories.
        print("\nexperts by reply volume per category (Q12):")
        expert_counter = Counter()
        for tag_class in network.tag_classes:
            for row in q12.run(txn, q12.Q12Params(influencer_id,
                                                  tag_class.id)):
                expert_counter[(row.first_name, row.last_name)] += \
                    row.reply_count
        for (first, last), replies in expert_counter.most_common(5):
            print(f"  {first} {last}: {replies} topical replies")


if __name__ == "__main__":
    main()
