"""Quickstart: generate a network, load the store, ask it questions.

Run:  python examples/quickstart.py
"""

from repro.datagen import DatagenConfig, generate
from repro.queries.complex_reads import q2, q9, q13
from repro.queries.short_reads import s1_person_profile, s3_friends
from repro.schema import validate_network
from repro.sim_time import iso
from repro.store import load_network


def main() -> None:
    # 1. Generate a miniature social network (deterministic in seed).
    config = DatagenConfig(num_persons=200, seed=2026)
    network = generate(config)
    print("generated:", network.summary())

    # 2. Integrity: every temporal/referential rule holds.
    report = validate_network(network)
    print("integrity violations:", len(report.violations))

    # 3. Bulk-load the MVCC graph store and run some SNB queries.
    store = load_network(network)
    alice = network.persons[0]
    with store.transaction() as txn:
        profile = s1_person_profile(txn, alice.id)
        print(f"\nprofile: {profile.first_name} {profile.last_name}, "
              f"joined {iso(profile.creation_date)}")

        friends = s3_friends(txn, alice.id)
        print(f"friends: {len(friends)}")

        newest = q2.run(txn, q2.Q2Params(
            alice.id, max_date=config.window.end))
        print(f"\nQ2 — newest messages from friends "
              f"({len(newest)} rows):")
        for row in newest[:3]:
            print(f"  {iso(row.creation_date)}  {row.first_name} "
                  f"{row.last_name}: {row.content[:60]}...")

        circle_posts = q9.run(txn, q9.Q9Params(
            alice.id, max_date=config.window.end))
        print(f"\nQ9 — newest 2-hop-circle messages: "
              f"{len(circle_posts)} rows")

        other = network.persons[-1]
        path = q13.run(txn, q13.Q13Params(alice.id, other.id))
        print(f"\nQ13 — shortest path between {alice.first_name} and "
              f"{other.first_name}: {path[0].length} hops")


if __name__ == "__main__":
    main()
