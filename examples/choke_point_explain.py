"""Choke-point analysis demo: the paper's Section 3 on your terminal.

Shows the relational engine's cost-based plan for Query 9 (Figure 4),
its estimated vs actual cardinalities, and the measured penalty of
forcing the wrong join type at each step.

Run:  python examples/choke_point_explain.py
"""

import statistics
import time

from repro.curation import ParameterCurator
from repro.datagen import DatagenConfig, generate
from repro.engine import snb_queries
from repro.engine.catalog import load_catalog
from repro.engine.explain import explain_pipeline


def median_ms(catalog, params, force, repetitions=25):
    samples = []
    for __ in range(repetitions):
        started = time.perf_counter()
        snb_queries.q9_pipeline(catalog, params, force=force).execute()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples) * 1000


def main() -> None:
    network = generate(DatagenConfig(num_persons=400, seed=5))
    catalog = load_catalog(network)
    params = ParameterCurator(network, seed=5).curate(3).by_query[9][0]

    pipeline = snb_queries.q9_pipeline(catalog, params)
    rows = pipeline.execute()
    print("Query 9 — intended plan (Figure 4), with actual "
          "cardinalities:\n")
    print(explain_pipeline(pipeline, show_actuals=True))
    print(f"\npipeline produced {len(rows)} tuples")

    print("\njoin-type ablation (the choke point):")
    variants = {
        "INL, INL (intended)": {0: "inl", 1: "inl"},
        "HASH at join-1 (wrong)": {0: "hash", 1: "inl"},
        "HASH at join-2": {0: "inl", 1: "hash"},
        "HASH, HASH": {0: "hash", 1: "hash"},
    }
    baseline = None
    for label, force in variants.items():
        ms = median_ms(catalog, params, force)
        if baseline is None:
            baseline = ms
        print(f"  {label:<26} {ms:7.2f} ms "
              f"({(ms - baseline) / baseline * 100:+5.0f}%)")
    print("\npaper: 'replacing index-nested loop with hash in ⨝1 "
          "results in 50% penalty' (HyPer, SF10+)")


if __name__ == "__main__":
    main()
