"""DATAGEN export: generate a network, validate, export CSV, report.

Mirrors a real DATAGEN deployment: produce the bulk-load CSVs and the
update stream (the driver's input files), and print dataset statistics
(a miniature paper Table 3 row).

Run:  python examples/datagen_export.py [persons] [outdir]
"""

import sys
from pathlib import Path

from repro.datagen import DatagenConfig, generate
from repro.datagen.serializer import csv_size_bytes, write_csv
from repro.datagen.stats import DatasetStatistics
from repro.datagen.update_stream import split_network
from repro.schema import validate_network
from repro.sim_time import iso


def main() -> None:
    persons = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    outdir = Path(sys.argv[2]) if len(sys.argv) > 2 \
        else Path("snb_export")

    config = DatagenConfig(num_persons=persons, seed=1)
    print(f"generating {persons} persons "
          f"(≈ SF {config.scale_factor:.4f}) ...")
    network = generate(config)

    report = validate_network(network)
    assert report.ok, report.violations[:5]
    print(f"integrity: clean ({report.checked} checks)")

    stats = DatasetStatistics.of(network)
    print("dataset statistics (Table 3 columns):")
    for name, value in stats.as_row().items():
        print(f"  {name:<10} {value}")

    split = split_network(network)
    print(f"\nbulk/update split at {iso(split.cut)} "
          f"(32 of 36 months):")
    print(f"  bulk entities : {sum(split.bulk.summary().values())}")
    print(f"  update stream : {len(split.updates)} DML operations")

    bulk_dir = outdir / "bulk"
    write_csv(split.bulk, bulk_dir)
    size_mb = csv_size_bytes(bulk_dir) / (1024 * 1024)
    print(f"\nwrote bulk CSVs to {bulk_dir} ({size_mb:.2f} MB)")
    full_dir = outdir / "full"
    write_csv(network, full_dir)
    print(f"wrote full-network CSVs to {full_dir}")


if __name__ == "__main__":
    main()
