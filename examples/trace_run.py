"""Trace a tiny driver run and write a Chrome trace to trace.json.

Run:  python examples/trace_run.py [out.json]

Open the resulting file in chrome://tracing (about:tracing) or
https://ui.perfetto.dev to see the span hierarchy: each scheduler
partition is a track; operations nest connector dispatch, query
execution, and — on the engine SUT — every volcano operator with its
``tuples_out`` count.
"""

from __future__ import annotations

import sys

from repro import telemetry
from repro.core.connector import InteractiveConnector
from repro.core.sut import EngineSUT
from repro.curation import ParameterCurator
from repro.datagen import DatagenConfig, generate
from repro.driver import DriverConfig, WorkloadDriver
from repro.engine.catalog import load_catalog
from repro.workload.operations import ReadOperation


def main(out_path: str = "trace.json") -> None:
    # 1. A small network and the relational catalog for the engine SUT.
    network = generate(DatagenConfig(num_persons=120, seed=9))
    catalog = load_catalog(network)
    params = ParameterCurator(network, seed=9).curate(3)

    # 2. A short complex-read stream (Q2, Q9, Q13 — three plan shapes).
    operations = []
    due = 1_000_000
    for query_id in (2, 9, 13):
        for binding in params.by_query[query_id]:
            operations.append(ReadOperation(
                query_id=query_id, params=binding,
                due_time=due, walk_seed=due))
            due += 1_000

    # 3. Run it with tracing on; every layer records spans.
    tracer = telemetry.enable(fresh_registry=True)
    connector = InteractiveConnector(EngineSUT(catalog), seed=9)
    driver = WorkloadDriver(connector, DriverConfig(num_partitions=2))
    report = driver.run(operations)
    telemetry.disable()

    # 4. Export and summarize.
    written = telemetry.write_chrome_trace(tracer, out_path)
    print(f"{report.metrics.operations} operations, "
          f"{written} spans -> {out_path}")
    print()
    print(telemetry.render_span_summary(tracer))
    print()
    print("open the file in about:tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main(*sys.argv[1:2])
