"""Tests for driver metrics and the acceleration clock."""

from __future__ import annotations

import time

import pytest

from repro.driver.clock import AS_FAST_AS_POSSIBLE, AccelerationClock
from repro.driver.metrics import (
    DriverMetrics,
    LatencyRecorder,
    percentile,
    steady_state_ok,
)
from repro.errors import DriverError


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_p99_of_uniform(self):
        values = [float(i) for i in range(100)]
        assert percentile(values, 0.99) == 99.0

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 0.0) == 1.0


class TestLatencyRecorder:
    def test_stats_per_class(self):
        recorder = LatencyRecorder()
        for latency in (0.010, 0.020, 0.030):
            recorder.record("Q1", latency)
        recorder.record("Q2", 0.100)
        stats = recorder.stats()
        assert stats["Q1"].count == 3
        assert stats["Q1"].mean_ms == pytest.approx(20.0)
        assert stats["Q1"].max_ms == pytest.approx(30.0)
        assert stats["Q2"].count == 1
        assert recorder.total_operations == 4

    def test_p99_series_windows(self):
        recorder = LatencyRecorder()
        for offset in (0.1, 0.5, 1.2, 1.8, 2.5):
            recorder.record("Q1", 0.010, at_offset=offset)
        series = recorder.p99_series("Q1", window_seconds=1.0)
        assert len(series) == 3

    def test_p99_series_unknown_class(self):
        assert LatencyRecorder().p99_series("Q9", 1.0) == []


class TestSteadyState:
    def test_flat_series_ok(self):
        assert steady_state_ok([10.0, 11.0, 9.0, 10.5])

    def test_spiking_series_not_ok(self):
        assert not steady_state_ok([10.0, 10.0, 10.0, 100.0])

    def test_short_series_ok(self):
        assert steady_state_ok([5.0])
        assert steady_state_ok([])


class TestDriverMetrics:
    def test_throughput(self):
        metrics = DriverMetrics(wall_seconds=2.0, operations=100)
        assert metrics.throughput == 50.0

    def test_zero_wall(self):
        assert DriverMetrics(wall_seconds=0.0, operations=5) \
            .throughput == 0.0


class TestAccelerationClock:
    def test_unthrottled(self):
        clock = AccelerationClock(0, AS_FAST_AS_POSSIBLE)
        assert clock.is_unthrottled
        assert clock.wait_until_due(10 ** 15) == 0.0

    def test_deadline_mapping(self):
        real_start = time.monotonic()
        clock = AccelerationClock(1_000_000, acceleration=2.0,
                                  real_start=real_start)
        # 4000 ms of simulation at accel 2 → 2 s of real time.
        assert clock.real_deadline(1_004_000) \
            == pytest.approx(real_start + 2.0)

    def test_lateness_reported(self):
        clock = AccelerationClock(0, acceleration=1000.0,
                                  real_start=time.monotonic() - 5.0)
        lateness = clock.wait_until_due(1)  # due long ago
        assert lateness > 4.0

    def test_wait_sleeps_until_due(self):
        clock = AccelerationClock(0, acceleration=1000.0)
        started = time.monotonic()
        clock.wait_until_due(100)  # 100ms sim / 1000 accel = 0.1 ms...
        clock2 = AccelerationClock(0, acceleration=1.0)
        clock2.wait_until_due(50)  # 50 ms of real time
        elapsed = time.monotonic() - started
        assert elapsed >= 0.045

    def test_simulation_now_advances(self):
        clock = AccelerationClock(0, acceleration=10_000.0)
        first = clock.simulation_now()
        time.sleep(0.01)
        assert clock.simulation_now() > first

    def test_invalid_acceleration(self):
        with pytest.raises(DriverError):
            AccelerationClock(0, acceleration=0.0)
