"""Golden validation datasets: create/check roundtrip, corruption
detection, and the committed seed-scale golden file."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.validation import (
    GOLDEN_FORMAT,
    canary_bug,
    check_golden,
    create_golden,
    render_golden_check,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
COMMITTED = os.path.join(GOLDEN_DIR, "snb-p80-s7.jsonl")


@pytest.fixture(scope="module")
def tiny_golden(tmp_path_factory):
    """A small golden dataset recorded fresh for this test module."""
    path = str(tmp_path_factory.mktemp("golden") / "tiny.jsonl")
    records = create_golden(path, persons=40, seed=5,
                            bindings_per_query=2, batch_size=150)
    return path, records


class TestGoldenRoundtrip:
    def test_header_and_record_count(self, tiny_golden):
        path, records = tiny_golden
        with open(path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0]["format"] == GOLDEN_FORMAT
        assert lines[0]["persons"] == 40
        assert len(lines) == records + 1
        ops = {line["op"] for line in lines[1:]}
        assert ops == {"update", "complex", "short", "checkpoint"}

    @pytest.mark.parametrize("sut", ["store", "engine"])
    def test_both_suts_check_clean(self, tiny_golden, sut):
        path, __ = tiny_golden
        report = check_golden(path, sut)
        assert report.ok, render_golden_check(report)
        assert report.updates_replayed > 100
        assert report.reads_checked > 10
        assert report.checkpoints_checked >= 1
        assert "OK — matches golden" in render_golden_check(report)

    def test_corrupted_expectation_is_detected(self, tiny_golden,
                                               tmp_path):
        path, __ = tiny_golden
        corrupted = tmp_path / "corrupted.jsonl"
        flipped = 0
        with open(path, encoding="utf-8") as src, \
                open(corrupted, "w", encoding="utf-8") as dst:
            for line in src:
                record = json.loads(line)
                if not flipped and record.get("op") == "short" \
                        and isinstance(record.get("expect"), dict) \
                        and "content" in record["expect"]:
                    record["expect"]["content"] += " CORRUPTED"
                    flipped = 1
                dst.write(json.dumps(record) + "\n")
        assert flipped, "no short-read content record to corrupt"
        report = check_golden(str(corrupted), "store")
        assert not report.ok
        assert report.mismatches[0].diff is not None
        assert any(d.column == "content"
                   for d in report.mismatches[0].diff.column_diffs)
        assert report.bundle is not None
        text = render_golden_check(report)
        assert "MISMATCHES" in text and "col content" in text
        # An expectation corruption is update-independent: the shrinker
        # reduces the counterexample to the empty update prefix.
        assert report.shrunk is not None
        assert report.shrunk.shrunk_updates == 0

    def test_rejects_non_golden_file(self, tmp_path):
        from repro.errors import BenchmarkError

        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"format":"something-else"}\n')
        with pytest.raises(BenchmarkError):
            check_golden(str(bogus), "store")


class TestCommittedGolden:
    def test_committed_file_exists(self):
        assert os.path.exists(COMMITTED), \
            "the seed-scale golden dataset must be committed"

    def test_cli_check_passes_on_both_suts(self, capsys):
        code = main(["validate", "--check", COMMITTED, "--sut", "both"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert out.count("OK — matches golden") == 2

    def test_cli_canary_is_detected(self, capsys):
        code = main(["validate", "--check", COMMITTED,
                     "--sut", "engine", "--canary"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "canary detected" in out
        assert "shrunk to 0 updates" in out

    def test_cli_undetected_canary_fails(self, tiny_golden, capsys,
                                         monkeypatch):
        """If the harness stops comparing, the canary job must fail."""
        import repro.validation as validation_pkg

        path, __ = tiny_golden
        real_check = validation_pkg.check_golden

        def blind_check(p, sut_name, **kwargs):
            report = real_check(p, sut_name, **kwargs)
            report.mismatches.clear()  # a broken oracle sees nothing
            return report

        # The CLI resolves check_golden through the package namespace
        # at call time, so patching the package attribute is enough.
        monkeypatch.setattr(validation_pkg, "check_golden", blind_check)
        code = main(["validate", "--check", path,
                     "--sut", "engine", "--canary"])
        out = capsys.readouterr().out
        assert code == 1
        assert "CANARY NOT DETECTED" in out


class TestGoldenCli:
    def test_create_then_check_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "cli.jsonl")
        code = main(["validate", "--create", path, "--persons", "40",
                     "--seed", "5", "-k", "2", "--batch", "150"])
        out = capsys.readouterr().out
        assert code == 0
        assert "golden dataset written" in out
        code = main(["validate", "--check", path, "--sut", "store"])
        assert code == 0

    def test_validate_requires_a_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["validate"])
