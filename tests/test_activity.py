"""Tests for the activity generator (forums, messages, likes)."""

from __future__ import annotations

from repro.ids import EntityKind, is_kind, serial_of
from tests.conftest import NETWORK_PERSONS


class TestForums:
    def test_everyone_has_a_wall(self, network):
        walls = [f for f in network.forums
                 if f.title.startswith("Wall of")]
        assert len(walls) == NETWORK_PERSONS

    def test_forum_after_moderator(self, network):
        persons = network.person_by_id()
        for forum in network.forums:
            assert forum.creation_date \
                > persons[forum.moderator_id].creation_date

    def test_moderator_is_member(self, network):
        members = {(m.forum_id, m.person_id)
                   for m in network.memberships}
        for forum in network.forums:
            assert (forum.id, forum.moderator_id) in members

    def test_membership_after_forum_and_person(self, network):
        forums = network.forum_by_id()
        persons = network.person_by_id()
        for membership in network.memberships:
            assert membership.joined_date \
                >= forums[membership.forum_id].creation_date
            assert membership.joined_date \
                > persons[membership.person_id].creation_date

    def test_memberships_unique(self, network):
        keys = [(m.forum_id, m.person_id) for m in network.memberships]
        assert len(keys) == len(set(keys))


class TestMessages:
    def test_posts_by_members_only(self, network):
        members = {(m.forum_id, m.person_id)
                   for m in network.memberships}
        for post in network.posts:
            assert (post.forum_id, post.author_id) in members

    def test_t_safe_respected(self, network, datagen_config):
        """Nobody posts before T_SAFE after joining the forum — the
        guarantee windowed driver execution relies on (paper §4.2)."""
        join = {(m.forum_id, m.person_id): m.joined_date
                for m in network.memberships}
        for post in network.posts:
            joined = join[(post.forum_id, post.author_id)]
            assert post.creation_date \
                >= joined + datagen_config.t_safe_millis

    def test_comment_strictly_after_parent(self, network):
        posts = network.post_by_id()
        comments = network.comment_by_id()
        for comment in network.comments:
            parent = posts.get(comment.reply_of_id) \
                or comments[comment.reply_of_id]
            assert comment.creation_date > parent.creation_date

    def test_comment_root_consistent(self, network):
        posts = network.post_by_id()
        comments = network.comment_by_id()
        for comment in network.comments:
            current = comment
            # Walk up the reply chain; it must end at the root post.
            for __ in range(1000):
                if current.reply_of_id in posts:
                    assert current.reply_of_id == comment.root_post_id
                    break
                current = comments[current.reply_of_id]
            else:
                raise AssertionError("reply chain did not terminate")

    def test_message_ids_time_ordered(self, network):
        """Paper footnote 3: ids increase with creation time."""
        post_dates = [p.creation_date for p in
                      sorted(network.posts, key=lambda p: p.id)]
        assert post_dates == sorted(post_dates)
        comment_dates = [c.creation_date for c in
                         sorted(network.comments, key=lambda c: c.id)]
        assert comment_dates == sorted(comment_dates)

    def test_photos_have_images_and_no_text(self, network):
        photos = [p for p in network.posts if p.is_photo]
        assert photos, "expected some photo albums"
        for photo in photos:
            assert photo.image_file
            assert photo.content == ""

    def test_text_posts_mention_their_topic(self, network):
        tags = network.tag_by_id()
        checked = 0
        for post in network.posts:
            if post.is_photo or not post.tag_ids:
                continue
            topic = tags[post.tag_ids[0]].name
            assert post.content.startswith(f"About {topic}:")
            checked += 1
        assert checked > 50

    def test_post_language_spoken_by_author(self, network):
        persons = network.person_by_id()
        for post in network.posts:
            if post.language:
                assert post.language \
                    in persons[post.author_id].languages

    def test_travel_fraction_small_but_present(self, network):
        persons = network.person_by_id()
        abroad = sum(1 for p in network.posts
                     if p.country_id
                     != persons[p.author_id].country_id)
        fraction = abroad / len(network.posts)
        assert 0.01 < fraction < 0.25


class TestLikes:
    def test_likes_strictly_after_message(self, network):
        posts = network.post_by_id()
        comments = network.comment_by_id()
        for like in network.likes:
            message = posts[like.message_id] if like.is_post \
                else comments[like.message_id]
            assert like.creation_date > message.creation_date

    def test_nobody_likes_own_message(self, network):
        posts = network.post_by_id()
        comments = network.comment_by_id()
        for like in network.likes:
            message = posts[like.message_id] if like.is_post \
                else comments[like.message_id]
            assert like.person_id != message.author_id

    def test_stranger_likes_exist(self, network):
        """Q7 flags likes from outside direct connections; the generator
        must produce some."""
        friends: dict[int, set[int]] = {}
        for edge in network.knows:
            friends.setdefault(edge.person1_id, set()).add(
                edge.person2_id)
            friends.setdefault(edge.person2_id, set()).add(
                edge.person1_id)
        posts = network.post_by_id()
        comments = network.comment_by_id()
        strangers = 0
        for like in network.likes:
            message = posts[like.message_id] if like.is_post \
                else comments[like.message_id]
            if like.person_id not in friends.get(message.author_id,
                                                 set()):
                strangers += 1
        assert strangers > 0

    def test_likes_unique_per_person_message(self, network):
        keys = [(like.person_id, like.message_id)
                for like in network.likes]
        assert len(keys) == len(set(keys))


class TestScaling:
    def test_messages_scale_with_friendships(self):
        """Paper §2: "These data elements scale linearly with the amount
        of friendships"."""
        from repro.datagen import DatagenConfig, generate

        small = generate(DatagenConfig(num_persons=80, seed=3))
        large = generate(DatagenConfig(num_persons=320, seed=3))
        small_ratio = (len(small.posts) + len(small.comments)) \
            / max(len(small.knows), 1)
        large_ratio = (len(large.posts) + len(large.comments)) \
            / max(len(large.knows), 1)
        assert 0.4 < small_ratio / large_ratio < 2.5


class TestPhotoGeolocation:
    def test_photos_geotagged_near_home_city(self, network,
                                             datagen_config):
        """Table 1: post.photoLocation matches the owner's location."""
        from repro.datagen.dictionaries import Dictionaries
        from repro.datagen.universe import build_universe

        universe = build_universe(Dictionaries(datagen_config.seed))
        persons = network.person_by_id()
        photos = [p for p in network.posts if p.is_photo]
        assert photos
        for photo in photos:
            assert photo.latitude is not None
            assert photo.longitude is not None
            owner = persons[photo.author_id]
            lat, lon = universe.city_coords[owner.city_id]
            assert abs(photo.latitude - lat) <= 0.26
            assert abs(photo.longitude - lon) <= 0.26

    def test_text_posts_not_geotagged(self, network):
        for post in network.posts:
            if not post.is_photo:
                assert post.latitude is None
                assert post.longitude is None
