"""Digest-invariance property suite for the sharded store.

The placement rules promise that every vertex row and every adjacency
half lives on exactly one shard, so the merged canonical snapshot —
and therefore the state digest — is a pure function of the applied
updates, independent of the shard count.  Hypothesis drives random
update/read interleavings against shards ∈ {1, 2, 4} and requires
byte-identical digests against the single-process store at every
checkpoint; a forced cross-shard friendship pins the two-phase commit
path specifically, and the PR-3 differential runner doubles as the
interleaved-read oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.operation import ComplexRead, Update
from repro.core.sut import StoreSUT
from repro.datagen.update_stream import UpdateKind, UpdateOperation
from repro.ids import serial_of
from repro.schema.entities import Knows
from repro.shard import (
    ShardedStoreSUT,
    anchor_shard,
    is_static,
    owner_of,
    partition_writes,
)
from repro.validation import snapshot_digest, snapshot_store
from repro.validation.canonical import comparable

#: Updates replayed per property example (speed/coverage trade-off).
PREFIX = 120


def _single_digest(split, prefix: int) -> str:
    sut = StoreSUT.for_network(split.bulk)
    for op in split.updates[:prefix]:
        sut.execute(Update(op))
    return snapshot_digest(snapshot_store(sut.store))


# ---------------------------------------------------------------------------
# placement rules (the invariant the digests rest on)
# ---------------------------------------------------------------------------

@given(serial=st.integers(min_value=0, max_value=2 ** 40),
       kind=st.integers(min_value=1, max_value=8),
       shards=st.sampled_from([1, 2, 4, 7]))
def test_every_vertex_has_exactly_one_owner(serial, kind, shards):
    vid = (kind << 56) | serial
    owner = owner_of(vid, shards)
    assert 0 <= owner < shards
    if is_static(vid):
        assert owner == 0  # static kinds are replica-free on shard 0
    else:
        assert owner == serial_of(vid) % shards


@given(a=st.integers(min_value=0, max_value=2 ** 20),
       b=st.integers(min_value=0, max_value=2 ** 20),
       shards=st.sampled_from([2, 4]))
def test_anchor_shard_prefers_dynamic_endpoints(a, b, shards):
    person = (1 << 56) | a        # dynamic kind
    tag = (5 << 56) | b           # static kind
    assert anchor_shard(person, tag, shards) == owner_of(person, shards)
    assert anchor_shard(tag, person, shards) == owner_of(person, shards)
    assert anchor_shard(tag, (6 << 56) | b, shards) == 0


def test_partition_writes_is_a_partition():
    """Every write lands on exactly one shard; nothing is duplicated."""
    p0, p1 = (1 << 56) | 0, (1 << 56) | 1  # owners 0 and 1 at 2 shards
    vertices = {("person", p0): {"x": 1}, ("person", p1): {"x": 2}}
    edges = [("knows", p0, p1, {"d": 3}), ("knows", p1, p0, {"d": 3})]
    per_shard = partition_writes(vertices, edges, 2)
    total_vertices = sum(len(w.vertices) for w in per_shard.values())
    total_halves = sum(len(w.halves) for w in per_shard.values())
    assert total_vertices == 2
    # Each directed edge row contributes one OUT and one IN half.
    assert total_halves == 4
    assert set(per_shard) == {0, 1}


# ---------------------------------------------------------------------------
# digest invariance under random interleavings
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("num_shards", [1, 2, 4])
@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(boundaries=st.lists(st.integers(min_value=0, max_value=PREFIX),
                           max_size=3, unique=True).map(sorted),
       query=st.sampled_from([2, 8, 9]))
def test_random_interleavings_digest_equal(small_split, small_params,
                                           num_shards, boundaries,
                                           query):
    """Wherever checkpoints and reads land in the update stream, the
    sharded store holds byte-identical state and returns identical
    read results."""
    single = StoreSUT.for_network(small_split.bulk)
    sharded = ShardedStoreSUT.for_network(small_split.bulk, num_shards)
    try:
        binding = small_params.by_query[query][0]
        cursor = 0
        for boundary in list(boundaries) + [PREFIX]:
            for op in small_split.updates[cursor:boundary]:
                single.execute(Update(op))
                sharded.execute(Update(op))
            cursor = max(cursor, boundary)
            read = ComplexRead(query, binding)
            assert comparable(query, single.execute(read).value) \
                == comparable(query, sharded.execute(read).value)
            assert snapshot_digest(snapshot_store(single.store)) \
                == sharded.digest(), \
                f"digest diverged at update {cursor} " \
                f"with {num_shards} shards"
    finally:
        sharded.close()


def test_spawn_start_method_matches_fork(small_split):
    """The workers are spawn-safe: an explicit spawn context produces
    the same bytes as the default (fork-preferring) context."""
    expected = _single_digest(split=small_split, prefix=60)
    sut = ShardedStoreSUT.for_network(small_split.bulk, 2,
                                      start_method="spawn")
    try:
        for op in small_split.updates[:60]:
            sut.execute(Update(op))
        assert sut.digest() == expected
    finally:
        sut.close()


# ---------------------------------------------------------------------------
# the forced cross-shard friendship (the 2PC stress case)
# ---------------------------------------------------------------------------

def test_forced_cross_shard_friendship(small_split):
    """A friendship whose endpoints hash to different shards commits
    two-phase and still matches the single-store digest exactly."""
    existing = {(min(k.person1_id, k.person2_id),
                 max(k.person1_id, k.person2_id))
                for k in small_split.bulk.knows}
    even = [p.id for p in small_split.bulk.persons
            if serial_of(p.id) % 2 == 0]
    odd = [p.id for p in small_split.bulk.persons
           if serial_of(p.id) % 2 == 1]
    pair = next((a, b) for a in even for b in odd
                if (min(a, b), max(a, b)) not in existing)
    op = UpdateOperation(
        kind=UpdateKind.ADD_FRIENDSHIP, due_time=1_500_000_000_000,
        depends_on_time=0,
        payload=Knows(person1_id=pair[0], person2_id=pair[1],
                      creation_date=1_500_000_000_000))
    assert owner_of(pair[0], 2) != owner_of(pair[1], 2)

    single = StoreSUT.for_network(small_split.bulk)
    single.execute(Update(op))
    expected = snapshot_digest(snapshot_store(single.store))

    sharded = ShardedStoreSUT.for_network(small_split.bulk, 2)
    try:
        sharded.execute(Update(op))
        assert sharded.router._multi_shard_updates == 1, \
            "the forced friendship did not take the two-phase path"
        assert sharded.digest() == expected
        # Exactly-once across a duplicate delivery: replaying the same
        # op key must not double-apply (the worker dedups it).
        stats = sharded.router.stats()
        applied = sum(w.get("applied", 0) for w in stats["shards"])
        assert applied >= 2  # one apply per involved shard
    finally:
        sharded.close()


# ---------------------------------------------------------------------------
# the differential runner as the interleaved-read oracle
# ---------------------------------------------------------------------------

def test_differential_runner_oracles_the_sharded_store(small_split,
                                                       small_params):
    """The PR-3 differential runner — curated interleaved reads, short
    reads at touched entities, periodic state checkpoints — passes with
    the sharded store on the right-hand side."""
    from repro.validation import run_differential

    report, bundle = run_differential(
        small_split, small_params, persons=60, seed=11,
        batch_size=200,
        right_factory=lambda bulk: ShardedStoreSUT.for_network(bulk, 2))
    assert bundle is None
    assert report.ok, "\n".join(m.describe()
                                for m in report.mismatches)
    assert report.reads_checked > 0 and report.snapshots_checked > 0
