"""Tests for the dimension-entity universe."""

from __future__ import annotations

import pytest

from repro.datagen.dictionaries import COUNTRIES, Dictionaries, \
    total_city_count, total_tag_count
from repro.datagen.universe import build_universe, university_serial
from repro.ids import EntityKind, is_kind
from repro.schema.entities import OrganisationType, PlaceType


@pytest.fixture(scope="module")
def universe():
    return build_universe(Dictionaries(seed=0))


class TestPlaces:
    def test_counts(self, universe):
        cities = [p for p in universe.places
                  if p.type is PlaceType.CITY]
        countries = [p for p in universe.places
                     if p.type is PlaceType.COUNTRY]
        continents = [p for p in universe.places
                      if p.type is PlaceType.CONTINENT]
        assert len(cities) == total_city_count()
        assert len(countries) == len(COUNTRIES)
        assert len(continents) == len({c.continent for c in COUNTRIES})

    def test_hierarchy(self, universe):
        by_id = {p.id: p for p in universe.places}
        for place in universe.places:
            if place.type is PlaceType.CITY:
                country = by_id[place.part_of]
                assert country.type is PlaceType.COUNTRY
                continent = by_id[country.part_of]
                assert continent.type is PlaceType.CONTINENT
            elif place.type is PlaceType.CONTINENT:
                assert place.part_of is None

    def test_city_zorder_recorded(self, universe):
        for city_id, z in universe.city_zorder.items():
            assert 0 <= z <= 255
            assert universe.country_of_city[city_id] \
                < len(universe.countries)

    def test_ids_in_place_space(self, universe):
        for place in universe.places:
            assert is_kind(place.id, EntityKind.PLACE)


class TestOrganisations:
    def test_universities_located_in_cities(self, universe):
        by_id = {p.id: p for p in universe.places}
        for org in universe.organisations:
            if org.type is OrganisationType.UNIVERSITY:
                assert by_id[org.location_id].type is PlaceType.CITY
            else:
                assert by_id[org.location_id].type is PlaceType.COUNTRY

    def test_country_resolution(self, universe):
        for country in universe.countries:
            assert len(country.university_ids) \
                == len(country.spec.universities)
            assert len(country.company_ids) \
                == len(country.spec.companies)
            assert country.ranked_tag_ids

    def test_org_lookup_map(self, universe):
        for org in universe.organisations:
            assert universe.organisation_by_id[org.id] is org

    def test_university_serial_fits_12_bits(self, universe):
        for org in universe.organisations:
            assert 0 <= university_serial(org.id) <= 0xFFF


class TestTags:
    def test_counts(self, universe):
        assert len(universe.tags) == total_tag_count()

    def test_name_maps_invert(self, universe):
        for tag in universe.tags:
            assert universe.tag_name_by_id[tag.id] == tag.name
            assert universe.tag_id_by_name[tag.name] == tag.id

    def test_tag_classes_resolve(self, universe):
        class_ids = {tc.id for tc in universe.tag_classes}
        for tag in universe.tags:
            assert tag.class_id in class_ids

    def test_country_rankings_are_permutations(self, universe):
        baseline = sorted(t.id for t in universe.tags)
        for country in universe.countries:
            assert sorted(country.ranked_tag_ids) == baseline


class TestDeterminism:
    def test_identical_across_builds(self, universe):
        again = build_universe(Dictionaries(seed=0))
        assert again.places == universe.places
        assert again.organisations == universe.organisations
        assert again.tags == universe.tags
        assert [c.ranked_tag_ids for c in again.countries] \
            == [c.ranked_tag_ids for c in universe.countries]
