"""CSR packed adjacency: the graph structure, the store-side cache, and
its MVCC invalidation rules (served only to head-snapshot, read-clean
transactions; per-label append counters invalidate)."""

from __future__ import annotations

from repro.queries.helpers import friends_within
from repro.store.csr import CSRCache, CSRGraph
from repro.store.loader import EdgeLabel


class TestCSRGraph:
    def test_from_adjacency_preserves_order(self):
        graph = CSRGraph.from_adjacency({1: [2, 3], 2: [1], 4: []})
        assert list(graph.neighbors(1)) == [2, 3]
        assert list(graph.neighbors(2)) == [1]
        assert list(graph.neighbors(4)) == []
        assert list(graph.neighbors(99)) == []
        assert len(graph) == 3
        assert graph.node_count == 3

    def test_from_edges_groups_by_source(self):
        graph = CSRGraph.from_edges([(1, 2), (2, 3), (1, 4)])
        assert list(graph.neighbors(1)) == [2, 4]
        assert list(graph.neighbors(2)) == [3]

    def test_gather_concatenates_with_duplicates(self):
        graph = CSRGraph.from_adjacency({1: [2, 3], 2: [3]})
        assert graph.gather([1, 2]) == [2, 3, 3]

    def test_frontier_bfs_levels(self):
        graph = CSRGraph.from_adjacency(
            {1: [2, 3], 2: [1, 4], 3: [1], 4: [2, 5], 5: [4]})
        levels = list(graph.frontier_bfs(1, 10))
        assert [(sorted(frontier), depth) for frontier, depth in levels] \
            == [([2, 3], 1), ([4], 2), ([5], 3)]

    def test_distances_exclude_source(self):
        graph = CSRGraph.from_adjacency({1: [2], 2: [1, 3], 3: [2]})
        assert graph.distances_from(1, 2) == {2: 1, 3: 2}
        assert graph.distances_from(1, 1) == {2: 1}


class TestCSRCache:
    def test_hit_miss_invalidation_counters(self):
        cache = CSRCache()
        graph_a = CSRGraph.from_adjacency({1: [2]})
        graph_b = CSRGraph.from_adjacency({1: [2, 3]})
        assert cache.lookup(("knows",), 7, lambda: graph_a) is graph_a
        assert cache.lookup(("knows",), 7, lambda: graph_b) is graph_a
        assert cache.lookup(("knows",), 8, lambda: graph_b) is graph_b
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 2, "invalidations": 1,
                         "entries": 1}
        cache.clear()
        assert cache.stats()["entries"] == 0


class TestStoreIntegration:
    def test_friends_within_matches_scan_path(self, fresh_store,
                                              network):
        person = network.persons[0].id
        with fresh_store.transaction() as txn:
            baseline = friends_within(txn, person, 2)
        fresh_store.csr_cache = CSRCache()
        with fresh_store.transaction() as txn:
            packed = friends_within(txn, person, 2)
        assert packed == baseline
        assert fresh_store.csr_cache.misses == 1
        with fresh_store.transaction() as txn:
            assert friends_within(txn, person, 2) == baseline
        assert fresh_store.csr_cache.hits == 1

    def test_transaction_with_own_edges_bypasses(self, fresh_store,
                                                 network):
        fresh_store.csr_cache = CSRCache()
        a, b = network.persons[0].id, network.persons[1].id
        with fresh_store.transaction() as txn:
            txn.insert_edge(EdgeLabel.KNOWS, a, b,
                            {"creation_date": 1})
            assert txn.csr_snapshot(EdgeLabel.KNOWS) is None
            txn.abort()

    def test_stale_snapshot_bypasses(self, fresh_store, network):
        fresh_store.csr_cache = CSRCache()
        a, b = network.persons[0].id, network.persons[2].id
        reader = fresh_store.transaction()
        with fresh_store.transaction() as writer:
            writer.insert_undirected_edge(EdgeLabel.KNOWS, a, b,
                                          {"creation_date": 5})
        # The reader's snapshot predates the commit: no packed serve.
        assert reader.csr_snapshot(EdgeLabel.KNOWS) is None
        reader.abort()

    def test_commit_invalidates_packed_snapshot(self, fresh_store,
                                                network):
        fresh_store.csr_cache = CSRCache()
        a, b = network.persons[0].id, network.persons[3].id
        with fresh_store.transaction() as txn:
            before = friends_within(txn, a, 1)
        with fresh_store.transaction() as writer:
            writer.insert_undirected_edge(EdgeLabel.KNOWS, a, b,
                                          {"creation_date": 5})
        with fresh_store.transaction() as txn:
            after = friends_within(txn, a, 1)
        assert set(after) == set(before) | {b}
        assert fresh_store.csr_cache.invalidations >= 1
