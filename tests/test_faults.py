"""The deterministic fault-injection subsystem (repro.faults)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    FatalSUTError,
    TransientError,
    WriteConflictError,
)
from repro.faults import (
    ClassRates,
    ConflictInjector,
    FaultInjectingConnector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFatalError,
    InjectedTransientError,
    install_conflict_injector,
)
from repro.store.graph import GraphStore


class CountingConnector:
    """Counts delegated executions (thread-safe)."""

    def __init__(self) -> None:
        self.executed = 0
        self._lock = threading.Lock()

    def execute(self, operation) -> None:
        with self._lock:
            self.executed += 1


class TestFaultPlan:
    def test_decisions_are_pure(self):
        plan = FaultPlan.uniform(abort=0.3, latency=0.2, fatal=0.1)
        for key in range(50):
            first = plan.decide(7, key, "ADD_POST")
            again = plan.decide(7, key, "ADD_POST")
            assert first == again

    def test_seed_changes_decisions(self):
        plan = FaultPlan.uniform(abort=0.5)
        a = [plan.decide(1, k, "ADD_POST") for k in range(100)]
        b = [plan.decide(2, k, "ADD_POST") for k in range(100)]
        assert a != b

    def test_rates_approached(self):
        plan = FaultPlan.uniform(abort=0.25)
        hits = sum(1 for k in range(2000)
                   if plan.decide(3, k, "ADD_POST") is not None)
        assert 0.18 < hits / 2000 < 0.32

    def test_explicit_schedule_overrides_rates(self):
        spec = FaultSpec(FaultKind.FATAL)
        plan = FaultPlan.uniform(abort=0.0).with_fault(4, spec)
        assert plan.decide(0, 4, "ADD_POST") is spec
        assert plan.decide(0, 5, "ADD_POST") is None

    def test_per_class_rates_fall_back_to_star(self):
        plan = FaultPlan(rates={
            "ADD_POST": ClassRates(abort=1.0),
            "*": ClassRates(latency=1.0),
        })
        assert plan.decide(0, 1, "ADD_POST").kind is FaultKind.ABORT
        assert plan.decide(0, 1, "ADD_LIKE_POST").kind \
            is FaultKind.LATENCY

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            ClassRates(abort=0.8, fatal=0.3)

    def test_empty(self):
        assert FaultPlan.uniform().empty
        assert not FaultPlan.uniform(abort=0.1).empty
        assert not FaultPlan().with_fault(
            0, FaultSpec(FaultKind.ABORT)).empty


class TestInjector:
    def test_abort_fails_then_succeeds(self, small_split):
        ops = small_split.updates[:20]
        inner = CountingConnector()
        plan = FaultPlan().with_fault(
            3, FaultSpec(FaultKind.ABORT, attempts=2))
        connector = FaultInjectingConnector(inner, plan, seed=0,
                                            operations=ops)
        target = ops[3]
        with pytest.raises(InjectedTransientError):
            connector.execute(target)
        with pytest.raises(InjectedTransientError):
            connector.execute(target)
        connector.execute(target)  # third attempt goes through
        assert inner.executed == 1
        assert connector.injected_counts()["abort"] == 2
        assert isinstance(
            InjectedTransientError("x"), TransientError)

    def test_fatal_always_raises(self, small_split):
        ops = small_split.updates[:5]
        inner = CountingConnector()
        plan = FaultPlan().with_fault(1, FaultSpec(FaultKind.FATAL))
        connector = FaultInjectingConnector(inner, plan,
                                            operations=ops)
        for __ in range(3):
            with pytest.raises(InjectedFatalError):
                connector.execute(ops[1])
        assert inner.executed == 0
        assert isinstance(InjectedFatalError("x"), FatalSUTError)

    def test_hang_never_delegates_on_first_attempt(self, small_split):
        ops = small_split.updates[:5]
        inner = CountingConnector()
        plan = FaultPlan().with_fault(
            2, FaultSpec(FaultKind.HANG, delay_seconds=0.01))
        connector = FaultInjectingConnector(inner, plan,
                                            operations=ops)
        with pytest.raises(InjectedTransientError):
            connector.execute(ops[2])
        assert inner.executed == 0  # the stalled attempt must not mutate
        connector.execute(ops[2])
        assert inner.executed == 1
        assert connector.injected_counts()["hang"] == 1

    def test_unfaulted_ops_pass_through(self, small_split):
        ops = small_split.updates[:10]
        inner = CountingConnector()
        connector = FaultInjectingConnector(inner, FaultPlan.uniform(),
                                            operations=ops)
        for op in ops:
            connector.execute(op)
        assert inner.executed == len(ops)
        assert connector.injected_total == 0

    def test_counts_deterministic_across_runs(self, small_split):
        ops = small_split.updates
        plan = FaultPlan.uniform(abort=0.2, latency=0.1,
                                 latency_seconds=0.0)

        def run() -> dict:
            inner = CountingConnector()
            connector = FaultInjectingConnector(inner, plan, seed=5,
                                                operations=ops)
            for op in ops:
                while True:
                    try:
                        connector.execute(op)
                        break
                    except InjectedTransientError:
                        continue
            return connector.injected_counts()

        first, second = run(), run()
        assert first == second
        assert first["abort"] > 0 and first["latency"] > 0

    def test_fallback_identity_without_operations(self, small_split):
        """No stream binding: ops identified by (class, due time)."""
        op = small_split.updates[0]
        from repro.workload.operations import op_class_name

        plan = FaultPlan().with_fault(
            (op_class_name(op), op.due_time),
            FaultSpec(FaultKind.ABORT, attempts=1))
        inner = CountingConnector()
        connector = FaultInjectingConnector(inner, plan)
        with pytest.raises(InjectedTransientError):
            connector.execute(op)
        connector.execute(op)
        assert inner.executed == 1

    def test_injected_by_class(self, small_split):
        ops = small_split.updates[:1]
        plan = FaultPlan().with_fault(0, FaultSpec(FaultKind.ABORT))
        connector = FaultInjectingConnector(CountingConnector(), plan,
                                            operations=ops)
        with pytest.raises(InjectedTransientError):
            connector.execute(ops[0])
        by_class = connector.injected_by_class()
        assert sum(by_class.values()) == 1


class TestAbandonedAttempts:
    def test_latency_does_not_delegate_when_abandoned(self, small_split):
        """A delayed attempt the watchdog gave up on must not mutate.

        The watchdog's retry already owns the operation; if the
        abandoned attempt delegated after its injected sleep, the
        update would apply twice.
        """
        import time

        from repro.driver.resilience import call_with_watchdog
        from repro.errors import OperationTimeoutError

        ops = small_split.updates[:5]
        inner = CountingConnector()
        plan = FaultPlan().with_fault(
            1, FaultSpec(FaultKind.LATENCY, delay_seconds=0.25))
        connector = FaultInjectingConnector(inner, plan,
                                            operations=ops)
        with pytest.raises(OperationTimeoutError):
            call_with_watchdog(lambda: connector.execute(ops[1]),
                               timeout=0.05)
        time.sleep(0.5)  # let the abandoned helper wake up and check
        assert inner.executed == 0
        # An unsupervised (or in-budget) attempt delegates normally.
        connector.execute(ops[1])
        assert inner.executed == 1


class TestConflictInjector:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ConflictInjector(0, 1.5)

    def test_injects_real_write_conflicts(self):
        store = GraphStore()
        injector = install_conflict_injector(store, seed=1, rate=1.0)
        with pytest.raises(WriteConflictError):
            with store.transaction() as txn:
                txn.insert_vertex("person", 1, {"name": "a"})
        assert injector.injected == 1
        assert store.abort_count == 1
        # The conflict is genuinely transient: retry in a new txn wins.
        store.fault_injector = None
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {"name": "a"})
        assert store.commit_count == 1

    def test_conflict_is_transient_error(self):
        assert isinstance(WriteConflictError("x"), TransientError)

    def test_seeded_rate_deterministic(self):
        def fire_pattern() -> list[bool]:
            injector = ConflictInjector(seed=9, rate=0.4)
            pattern = []
            for __ in range(50):
                try:
                    injector.before_commit(None)
                    pattern.append(False)
                except WriteConflictError:
                    pattern.append(True)
            return pattern

        assert fire_pattern() == fire_pattern()
        assert any(fire_pattern())
