"""Tests for Z-order encoding and the study-location composite key."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.zorder import (
    interleave_bits,
    study_location_key,
    zorder8,
)


class TestInterleave:
    def test_zero(self):
        assert interleave_bits(0, 0, 4) == 0

    def test_x_even_positions(self):
        assert interleave_bits(0b1111, 0, 4) == 0b01010101

    def test_y_odd_positions(self):
        assert interleave_bits(0, 0b1111, 4) == 0b10101010

    def test_full(self):
        assert interleave_bits(0b1111, 0b1111, 4) == 0b11111111


class TestZOrder8:
    def test_range(self):
        for lat, lon in ((-90, -180), (90, 180), (0, 0), (52.5, 13.4)):
            assert 0 <= zorder8(lat, lon) <= 255

    def test_clamps_out_of_range(self):
        assert zorder8(-999, -999) == zorder8(-90, -180)
        assert zorder8(999, 999) == zorder8(90, 180)

    def test_nearby_cities_share_prefix(self):
        # Berlin and Hamburg are close; Berlin and Sydney are not.
        berlin = zorder8(52.5, 13.4)
        hamburg = zorder8(53.6, 10.0)
        sydney = zorder8(-33.9, 151.2)
        assert abs(berlin - hamburg) < abs(berlin - sydney)

    @given(st.floats(min_value=-90, max_value=90),
           st.floats(min_value=-180, max_value=180))
    @settings(max_examples=200)
    def test_always_8_bits(self, lat, lon):
        assert 0 <= zorder8(lat, lon) <= 255


class TestCompositeKey:
    def test_bit_layout(self):
        """Paper: city Z-order in bits 31-24, university in 23-12,
        studied year in 11-0."""
        key = study_location_key(0xAB, 0x123, 2005)
        assert (key >> 24) & 0xFF == 0xAB
        assert (key >> 12) & 0xFFF == 0x123
        assert key & 0xFFF == 2005 & 0xFFF

    def test_city_dominates_ordering(self):
        same_city_a = study_location_key(5, 1, 2000)
        same_city_b = study_location_key(5, 900, 2012)
        other_city = study_location_key(6, 0, 1990)
        assert same_city_a < other_city
        assert same_city_b < other_city

    def test_university_before_year(self):
        a = study_location_key(5, 1, 2999)
        b = study_location_key(5, 2, 1000)
        assert a < b

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=0xFFF),
           st.integers(min_value=0, max_value=0xFFF))
    @settings(max_examples=200)
    def test_roundtrip(self, z, university, year):
        key = study_location_key(z, university, year)
        assert (key >> 24) & 0xFF == z
        assert (key >> 12) & 0xFFF == university
        assert key & 0xFFF == year
