"""Optimizer coverage of the full read mix.

All 14 complex reads execute as relational plans: every query id has a
plan builder in ``snb_queries.PIPELINES``, every plan caches under its
id, and ``refresh_stats()`` forces all 14 shapes to re-optimize.
"""

from __future__ import annotations

import pytest

from repro.cache import PlanCache
from repro.engine import snb_queries
from repro.engine.explain import explain, explain_pipeline

ALL_QUERY_IDS = list(range(1, 15))


def _binding(curated_params, query_id):
    return curated_params.by_query[query_id][0]


@pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
def test_every_query_has_a_pipeline(query_id, loaded_catalog,
                                    curated_params):
    builder = snb_queries.PIPELINES[query_id]
    pipeline = builder(loaded_catalog, _binding(curated_params,
                                                query_id))
    assert pipeline.root is not None
    assert not pipeline.from_cache
    # Every join step carries a costed decision.
    for decision in pipeline.decisions:
        assert decision.algorithm in ("inl", "hash")
        assert decision.inl_cost > 0 or decision.hash_cost > 0


def test_all_plans_cache_under_their_ids(fresh_catalog, curated_params):
    fresh_catalog.plan_cache = PlanCache()
    for query_id in ALL_QUERY_IDS:
        snb_queries.PIPELINES[query_id](
            fresh_catalog, _binding(curated_params, query_id))
    assert len(fresh_catalog.plan_cache) == len(ALL_QUERY_IDS)
    for query_id in ALL_QUERY_IDS:
        pipeline = snb_queries.PIPELINES[query_id](
            fresh_catalog, _binding(curated_params, query_id))
        assert pipeline.from_cache, f"Q{query_id} missed the cache"


def test_refresh_stats_invalidates_all_cached_plans(fresh_catalog,
                                                    curated_params):
    """The satellite: a stats refresh must evict/re-optimize all 14."""
    fresh_catalog.plan_cache = PlanCache()
    for query_id in ALL_QUERY_IDS:
        snb_queries.PIPELINES[query_id](
            fresh_catalog, _binding(curated_params, query_id))
    hits_before = fresh_catalog.plan_cache.stats.hits
    fresh_catalog.refresh_stats()
    for query_id in ALL_QUERY_IDS:
        pipeline = snb_queries.PIPELINES[query_id](
            fresh_catalog, _binding(curated_params, query_id))
        assert not pipeline.from_cache, \
            f"Q{query_id} served a stale-epoch plan"
    # The replans hit nothing and re-cache under the new epoch.
    assert fresh_catalog.plan_cache.stats.hits == hits_before
    for query_id in ALL_QUERY_IDS:
        assert snb_queries.PIPELINES[query_id](
            fresh_catalog, _binding(curated_params, query_id)).from_cache


def test_forced_pipelines_never_cache(fresh_catalog, curated_params):
    fresh_catalog.plan_cache = PlanCache()
    snb_queries.q9_plan(fresh_catalog, _binding(curated_params, 9),
                        force={0: "hash"})
    assert len(fresh_catalog.plan_cache) == 0


def test_explain_renders_estimates_and_actuals(loaded_catalog,
                                               curated_params):
    """The satellite: per-operator ``est=`` next to post-run ``out=``."""
    pipeline = snb_queries.q9_plan(loaded_catalog,
                                   _binding(curated_params, 9))
    pipeline.execute()
    text = explain(pipeline.root, show_actuals=True)
    assert "est=" in text
    assert "out=" in text
    # The root (a Filter or join) carries both annotations on one line.
    assert any("est=" in line and "out=" in line
               for line in text.splitlines())
    full = explain_pipeline(pipeline, show_actuals=True)
    assert "join decisions:" in full


@pytest.mark.parametrize("query_id", [1, 3, 5, 6, 9, 11, 13])
def test_expand_sourced_plans_estimate_the_circle(query_id,
                                                  loaded_catalog,
                                                  curated_params):
    """Circle-shaped queries seed the pipeline with a k-hop estimate."""
    pipeline = snb_queries.PIPELINES[query_id](
        loaded_catalog, _binding(curated_params, query_id))
    source = pipeline.root
    while source.children:
        source = source.children[-1] if source.label.startswith(
            "hashjoin") else source.children[0]
    assert source.label.startswith("transitive(")
    assert source.estimated_rows is not None
    assert source.estimated_rows > 0
