"""End-to-end tests for the benchmark core."""

from __future__ import annotations

import pytest

from repro.core import (
    BenchmarkConfig,
    InteractiveBenchmark,
    render_report,
)
from repro.driver.modes import ExecutionMode
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def store_report():
    bench = InteractiveBenchmark(BenchmarkConfig(
        num_persons=100, seed=5, num_partitions=3,
        bindings_per_query=3))
    return bench.run()


@pytest.fixture(scope="module")
def engine_report():
    bench = InteractiveBenchmark(BenchmarkConfig(
        num_persons=100, seed=5, num_partitions=3, sut="engine",
        bindings_per_query=3))
    return bench.run()


class TestStoreRun:
    def test_all_complex_queries_measured(self, store_report):
        measured = set(store_report.complex_stats)
        assert measured == {f"Q{i}" for i in range(1, 15)}

    def test_updates_measured(self, store_report):
        assert "ADD_POST" in store_report.update_stats
        assert "ADD_PERSON" in store_report.update_stats

    def test_short_reads_executed(self, store_report):
        assert store_report.short_reads > 0
        assert store_report.short_stats

    def test_throughput_positive(self, store_report):
        assert store_report.throughput > 0
        assert store_report.operations > 0

    def test_unthrottled_run_sustains(self, store_report):
        assert store_report.sustained

    def test_render_report_contains_tables(self, store_report):
        text = render_report(store_report)
        assert "Table 6" in text
        assert "Table 7" in text
        assert "Table 9" in text
        assert "Q14" in text
        assert "ADD_FRIENDSHIP" in text

    def test_mean_latency_row_helper(self, store_report):
        row = store_report.mean_latency_row(
            store_report.complex_stats, "Q", 14)
        assert len(row) == 14
        assert any(value > 0 for value in row)


class TestEngineRun:
    def test_engine_also_completes(self, engine_report):
        assert engine_report.sut_name == "relational-engine"
        assert set(engine_report.complex_stats) \
            == {f"Q{i}" for i in range(1, 15)}

    def test_two_systems_comparable(self, store_report, engine_report):
        """Both SUTs run the identical stream — same operation count."""
        assert store_report.operations == engine_report.operations


class TestConfigHandling:
    def test_unknown_sut_rejected(self):
        bench = InteractiveBenchmark(BenchmarkConfig(
            num_persons=60, sut="oracle"))
        with pytest.raises(BenchmarkError):
            bench.prepare()

    def test_custom_frequencies(self):
        bench = InteractiveBenchmark(BenchmarkConfig(
            num_persons=80, seed=2, bindings_per_query=2,
            frequencies={qid: 5000 for qid in range(1, 15)}))
        report = bench.run()
        # With huge frequencies almost no complex reads run.
        total_reads = sum(s.count
                          for s in report.complex_stats.values())
        assert total_reads <= 14

    def test_sequential_mode_runs(self):
        bench = InteractiveBenchmark(BenchmarkConfig(
            num_persons=80, seed=2, bindings_per_query=2,
            mode=ExecutionMode.SEQUENTIAL))
        report = bench.run()
        assert report.operations > 0
