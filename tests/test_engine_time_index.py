"""Tests for the time-ordered-id Q9 variant (paper §3's locality claim)."""

from __future__ import annotations

import pytest

from repro.engine import snb_queries
from repro.queries.complex_reads import q9


class TestTimeIndexVariant:
    def test_matches_reference_q9(self, loaded_catalog, curated_params):
        for params in curated_params.by_query[9]:
            reference = snb_queries.q9(loaded_catalog, params)
            variant = snb_queries.q9_time_index_variant(loaded_catalog,
                                                        params)
            assert variant == reference

    def test_matches_store_q9(self, loaded_store, loaded_catalog,
                              curated_params):
        for params in curated_params.by_query[9][:3]:
            with loaded_store.transaction() as txn:
                store_rows = q9.run(txn, params)
            variant = snb_queries.q9_time_index_variant(loaded_catalog,
                                                        params)
            assert variant == store_rows

    def test_empty_circle(self, loaded_catalog, network):
        """A person with no friends yields no rows."""
        from repro.algorithms import knows_graph

        adjacency = knows_graph(network)
        loners = [pid for pid, friends in adjacency.items()
                  if not friends]
        if not loners:
            pytest.skip("no isolated persons in this network")
        params = q9.Q9Params(loners[0], 2 ** 62)
        assert snb_queries.q9_time_index_variant(loaded_catalog,
                                                 params) == []

    def test_tight_date_bound(self, loaded_catalog, network,
                              curated_params):
        """A date bound before all messages yields no rows."""
        earliest = min(m.creation_date for m in network.messages())
        base = curated_params.by_query[9][0]
        params = q9.Q9Params(base.person_id, earliest)
        assert snb_queries.q9_time_index_variant(loaded_catalog,
                                                 params) == []

    def test_scans_only_newest_sliver(self, loaded_catalog,
                                      curated_params):
        """The variant's key win: it reads a bounded prefix of the
        descending date index, not the whole message table."""
        params = curated_params.by_query[9][0]
        message = loaded_catalog.table("message")
        # Count rows the scan visits by wrapping range_scan.
        visited = 0
        original = message.range_scan

        def counting(*args, **kwargs):
            nonlocal visited
            for row in original(*args, **kwargs):
                visited += 1
                yield row

        message.range_scan = counting
        try:
            rows = snb_queries.q9_time_index_variant(loaded_catalog,
                                                     params)
        finally:
            message.range_scan = original
        assert len(rows) == q9.LIMIT
        assert visited < message.row_count / 2
