"""Chaos-soak coverage for the sharded path.

A fault-perturbed sharded run — worker aborts before any state change,
worker delays pushed past the router's RPC timeout — must converge to
the fault-free single-process digest with zero dependency timeouts:
the strongest exactly-once statement the harness can make about the
cross-shard commit protocol.  The shard-router mutation canary then
proves the oracles would actually notice a routing bug: with a shard
dropped from every scatter-gather, digests and golden-style reads must
FAIL, and must recover the moment the canary lifts.
"""

from __future__ import annotations

import pytest

from repro.core.operation import Update
from repro.core.sut import StoreSUT
from repro.errors import FatalSUTError, TransientError
from repro.faults import FaultPlan
from repro.shard import ShardedStoreSUT, ShardFaultPlan
from repro.validation import run_chaos, run_differential
from repro.validation.canary import canary_bug
from repro.validation.snapshot import snapshot_digest, snapshot_store


def test_worker_abort_soak_converges(small_split):
    """Injected worker aborts (pre-apply) retry to the clean digest."""
    report = run_chaos(
        small_split, "store", FaultPlan(), seed=0, num_partitions=2,
        shards=2, shard_faults=ShardFaultPlan(abort_rate=0.05))
    assert report.failure is None
    assert report.injected_shard_faults.get("abort", 0) > 0, \
        "the worker fault injector never fired — the soak proved nothing"
    assert report.digests_match, \
        f"clean {report.clean_digest} != chaos {report.chaos_digest}"
    assert report.ok


def test_router_timeout_soak_converges(small_split):
    """Delays pushed past the router RPC timeout surface as transient
    timeouts; the retry must dedup against the worker's applied-table
    (the delayed apply still lands), never double-applying."""
    report = run_chaos(
        small_split, "store", FaultPlan(), seed=0, num_partitions=2,
        shards=2,
        shard_faults=ShardFaultPlan(delay_rate=0.01,
                                    delay_seconds=0.3),
        shard_timeout=0.1)
    assert report.failure is None
    assert report.injected_shard_faults.get("delay", 0) > 0
    assert report.driver is not None and report.driver.retries > 0, \
        "no retries — the delays never actually hit the timeout"
    assert report.digests_match
    assert report.ok


def test_client_and_worker_faults_compose(small_split):
    """Client-side chaos (PR-4 injector) and worker-side shard faults
    perturb the same run and still converge."""
    report = run_chaos(
        small_split, "store", FaultPlan.uniform(abort=0.05), seed=0,
        num_partitions=2, shards=2,
        shard_faults=ShardFaultPlan(abort_rate=0.03))
    assert report.ok
    assert report.injected.get("abort", 0) > 0
    assert report.injected_shard_faults.get("abort", 0) > 0


def test_killed_worker_surfaces_fatal(small_split):
    """A dead worker is a broken SUT, not a retry loop: the dead pipe
    maps to ShardConnectionError (fatal), never TransientError."""
    sut = ShardedStoreSUT.for_network(small_split.bulk, 2)
    try:
        sut.router.handles[1].process.terminate()
        sut.router.handles[1].process.join(timeout=5.0)
        with pytest.raises(FatalSUTError):
            for op in small_split.updates[:50]:
                sut.execute(Update(op))
    finally:
        sut.close()


def test_injected_worker_abort_is_transient():
    from repro.shard import InjectedWorkerAbortError

    assert issubclass(InjectedWorkerAbortError, TransientError)


# ---------------------------------------------------------------------------
# the shard-router mutation canary
# ---------------------------------------------------------------------------

def test_shard_canary_breaks_digest_and_recovers(small_split):
    """With shard 0 dropped from scatter-gathers the merged snapshot
    loses that partition's rows; lifting the canary restores the exact
    digest — proving the drop hook cannot leak into real runs."""
    expected = snapshot_digest(snapshot_store(
        StoreSUT.for_network(small_split.bulk).store))
    sut = ShardedStoreSUT.for_network(small_split.bulk, 2)
    try:
        assert sut.digest() == expected
        with canary_bug("sharded"):
            assert sut.digest() != expected, \
                "CANARY NOT DETECTED — a dropped shard went unnoticed"
        assert sut.digest() == expected
    finally:
        sut.close()


def test_shard_canary_fails_golden_style_checks(small_split,
                                                small_params):
    """The full validation surface (interleaved reads + checkpoints,
    exactly what ``validate --check --sut sharded --canary`` replays)
    must FAIL under the canary — a green run here means the harness
    has gone blind to routing bugs."""
    with canary_bug("sharded"):
        report, bundle = run_differential(
            small_split, small_params, persons=60, seed=11,
            batch_size=300, snapshot_every=2, max_mismatches=3,
            right_factory=lambda bulk: ShardedStoreSUT.for_network(
                bulk, 2))
    assert not report.ok, "CANARY NOT DETECTED by the differential"
    assert bundle is not None  # replayable counterexample minted
