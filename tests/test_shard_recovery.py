"""Crash tolerance of the sharded store: WAL, 2PC log, supervision.

The contract under test: an *acknowledged* update survives ``kill -9``
of its worker — never lost, never double-applied — because the worker
WALs before it acks, the respawned incarnation replays before it
serves, and in-doubt 2PC stages resolve by the coordinator's logged
decision.  Every recovery test judges by the same oracle as the rest
of the repo: byte-identical state digest against a single-process
fault-free run.
"""

from __future__ import annotations

import shutil
import tempfile
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.core.operation import Update
from repro.core.sut import StoreSUT
from repro.datagen.update_stream import UpdateKind, UpdateOperation
from repro.driver.resilience import default_is_transient
from repro.errors import ShardConnectionError, ShardError, \
    ShardRecoveringError, TransientError
from repro.faults import FaultPlan
from repro.ids import serial_of
from repro.schema.entities import Knows
from repro.shard import ShardedStoreSUT, ShardFaultPlan, owner_of
from repro.shard.router import ShardRouter, stable_update_key
from repro.shard.supervisor import RESTART_COUNTER
from repro.shard.txlog import CoordinatorLog
from repro.store.graph import GraphStore
from repro.store.wal import (
    TORN_RECORD_COUNTER,
    ShardWAL,
    read_shard_log,
    replay_shard_log,
)
from repro.validation import run_chaos, snapshot_digest, snapshot_store

#: Updates replayed per recovery scenario (speed/coverage trade-off).
PREFIX = 60


def _single_digest(split, prefix: int) -> str:
    sut = StoreSUT.for_network(split.bulk)
    for op in split.updates[:prefix]:
        sut.execute(Update(op))
    return snapshot_digest(snapshot_store(sut.store))


def _cross_shard_friendship(split) -> UpdateOperation:
    """A friendship whose endpoints live on different shards (2PC)."""
    existing = {(min(k.person1_id, k.person2_id),
                 max(k.person1_id, k.person2_id))
                for k in split.bulk.knows}
    even = [p.id for p in split.bulk.persons
            if serial_of(p.id) % 2 == 0]
    odd = [p.id for p in split.bulk.persons
           if serial_of(p.id) % 2 == 1]
    pair = next((a, b) for a in even for b in odd
                if (min(a, b), max(a, b)) not in existing)
    assert owner_of(pair[0], 2) != owner_of(pair[1], 2)
    return UpdateOperation(
        kind=UpdateKind.ADD_FRIENDSHIP, due_time=1_500_000_000_000,
        depends_on_time=0,
        payload=Knows(person1_id=pair[0], person2_id=pair[1],
                      creation_date=1_500_000_000_000))


@pytest.fixture()
def wal_dir():
    path = tempfile.mkdtemp(prefix="repro-recovery-wal-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


# ---------------------------------------------------------------------------
# the WAL substrate: torn tails
# ---------------------------------------------------------------------------

def test_torn_tail_is_skipped_counted_and_truncated(tmp_path):
    """A crash mid-append loses exactly the unacked torn record: the
    reader skips and counts it, and reopening for append truncates it
    so the next record never welds onto the fragment."""
    path = str(tmp_path / "shard-0.wal")
    wal = ShardWAL(path)
    wal.log_apply("op-1", [("person", 7, {"firstName": "A"})], [])
    wal.tear("apply", "op-2", [("person", 8, {"firstName": "B"})], [])
    wal.close()

    before = telemetry.counter(TORN_RECORD_COUNTER).value
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        records = read_shard_log(path)
    assert [r["op"] for r in records] == ["op-1"]
    assert telemetry.counter(TORN_RECORD_COUNTER).value == before + 1
    assert any("torn" in str(w.message) for w in caught)

    # Reopening truncates the fragment before appending — the new
    # record must parse cleanly instead of corrupting mid-file.
    wal = ShardWAL(path)
    wal.log_apply("op-3", [("person", 9, {"firstName": "C"})], [])
    wal.close()
    assert [r["op"] for r in read_shard_log(path)] == ["op-1", "op-3"]

    store = GraphStore()
    applied, staged = replay_shard_log(store, read_shard_log(path))
    assert set(applied) == {"op-1", "op-3"} and not staged


# ---------------------------------------------------------------------------
# the coordinator log: decisions survive and recover
# ---------------------------------------------------------------------------

def test_coordinator_log_round_trips_decisions(tmp_path):
    path = str(tmp_path / "coordinator.log")
    log = CoordinatorLog(path)
    log.log_begin("op-a", [0, 1])
    log.log_commit("op-a")
    log.log_begin("op-b", [0, 1])
    log.log_abort("op-b")
    log.log_begin("op-c", [0, 1])  # in doubt: begun, never decided
    log.close()

    recovered = CoordinatorLog(path)
    assert recovered.decision("op-a") == "commit"
    assert recovered.decision("op-b") == "abort"
    assert recovered.decision("op-c") is None
    assert "op-c" in recovered.in_doubt()
    recovered.close()


# ---------------------------------------------------------------------------
# supervised recovery (the tentpole contract)
# ---------------------------------------------------------------------------

def test_sigkill_recovery_preserves_acked_updates(small_split, wal_dir):
    """kill -9 both workers mid-stream; the digest still matches the
    fault-free single-process run — no acked update lost, none
    double-applied by replay."""
    expected = _single_digest(small_split, PREFIX)
    restarts_before = telemetry.counter(RESTART_COUNTER).value
    sut = ShardedStoreSUT.for_network(small_split.bulk, 2,
                                      wal_dir=wal_dir)
    try:
        for op in small_split.updates[:PREFIX // 2]:
            sut.execute(Update(op))
        for handle in sut.router.handles:
            handle.process.kill()
            handle.process.join(timeout=5.0)
        for op in small_split.updates[PREFIX // 2:PREFIX]:
            sut.execute(Update(op))
        assert sut.digest() == expected
        stats = sut.router.stats()
        assert stats["supervisor"]["restarts"] == 2
        assert stats["supervisor"]["recovery_p50_ms"] > 0
        assert sum(w.get("recovered_ops", 0)
                   for w in stats["shards"]) > 0
        assert telemetry.counter(RESTART_COUNTER).value \
            >= restarts_before + 2
    finally:
        sut.close()


def test_kill_between_prepare_and_commit_rolls_forward(small_split,
                                                       wal_dir):
    """The in-doubt window: a worker that acks the 2PC prepare and dies
    before the commit RPC must roll *forward* on recovery, because the
    coordinator logged commit — that append is the commit point."""
    op = _cross_shard_friendship(small_split)
    single = StoreSUT.for_network(small_split.bulk)
    single.execute(Update(op))
    expected = snapshot_digest(snapshot_store(single.store))

    sut = ShardedStoreSUT.for_network(
        small_split.bulk, 2, wal_dir=wal_dir,
        faults=ShardFaultPlan(kill_after_prepare=1.0, seed=3))
    try:
        sut.execute(Update(op))
        assert sut.router._multi_shard_updates == 1
        assert sut.digest() == expected
        stats = sut.router.stats()
        assert stats["supervisor"]["restarts"] >= 1
        rolled_forward = sum(w.get("resolved", {}).get("commit", 0)
                             for w in stats["shards"])
        assert rolled_forward >= 1, \
            "no in-doubt stage was rolled forward by the supervisor"
        assert stats["coordinator"]["committed"] >= 1
    finally:
        sut.close()


def test_cold_restart_replays_wal_directory(small_split, wal_dir):
    """Spawning into a directory holding prior WALs is a cold restart:
    the replayed state must match where the previous incarnation left
    off (including a decided-but-unresolved 2PC stage)."""
    expected = _single_digest(small_split, PREFIX)
    sut = ShardedStoreSUT.for_network(small_split.bulk, 2,
                                      wal_dir=wal_dir)
    try:
        for op in small_split.updates[:PREFIX]:
            sut.execute(Update(op))
    finally:
        sut.close()

    revived = ShardedStoreSUT.for_network(small_split.bulk, 2,
                                          wal_dir=wal_dir)
    try:
        assert revived.digest() == expected
        stats = revived.router.stats()
        assert sum(w.get("recovered_ops", 0)
                   for w in stats["shards"]) > 0
    finally:
        revived.close()


def test_restart_budget_exhaustion_is_fatal_with_payload(small_split,
                                                         wal_dir):
    """max_restarts=0 is the recovery-disabled canary: the first kill
    must surface the original fatal taxonomy, carrying the structured
    payload (shard index, op key, pending count)."""
    sut = ShardedStoreSUT.for_network(
        small_split.bulk, 2, wal_dir=wal_dir, max_restarts=0,
        faults=ShardFaultPlan(kill_rate=1.0, seed=1))
    try:
        with pytest.raises(ShardConnectionError) as caught:
            for op in small_split.updates[:PREFIX]:
                sut.execute(Update(op))
        exc = caught.value
        assert exc.shard_index in (0, 1)
        assert exc.op_key is not None and len(exc.op_key) == 40
        assert exc.pending >= 0
        assert f"[shard={exc.shard_index}" in str(exc)
        assert exc.op_key in str(exc)
        assert "exhausted" in str(exc)
        assert not default_is_transient(exc), \
            "budget exhaustion must be fatal, not retried forever"
    finally:
        sut.close()


def test_crash_faults_without_wal_dir_refuse_to_spawn(small_split):
    """Killing a WAL-less worker would genuinely lose acked state, so
    the router refuses the configuration outright."""
    with pytest.raises(ShardError, match="WAL"):
        ShardRouter.spawn(small_split.bulk, 2,
                          faults=ShardFaultPlan(kill_rate=0.5))


def test_recovering_error_is_transient():
    exc = ShardRecoveringError("shard 1 recovery in progress",
                               shard_index=1)
    assert isinstance(exc, TransientError)
    assert default_is_transient(exc)
    assert exc.shard_index == 1


def test_stable_update_key_is_stable(small_split):
    op = small_split.updates[0]
    assert stable_update_key(op) == stable_update_key(op)


# ---------------------------------------------------------------------------
# property: ANY kill point converges to the fault-free digest
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("num_shards", [2, 4])
@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(kill_after=st.integers(min_value=0, max_value=PREFIX - 1),
       victim=st.integers(min_value=0, max_value=3))
def test_random_kill_points_recover_to_clean_digest(small_split,
                                                    num_shards,
                                                    kill_after, victim):
    """Wherever in the stream a worker is killed, and whichever worker
    it is, the supervised run ends byte-identical to the fault-free
    single-process run."""
    expected = _single_digest(small_split, PREFIX)
    wal_dir = tempfile.mkdtemp(prefix="repro-killpoint-wal-")
    sut = ShardedStoreSUT.for_network(small_split.bulk, num_shards,
                                      wal_dir=wal_dir)
    try:
        for index, op in enumerate(small_split.updates[:PREFIX]):
            sut.execute(Update(op))
            if index == kill_after:
                handle = sut.router.handles[victim % num_shards]
                handle.process.kill()
                handle.process.join(timeout=5.0)
        assert sut.digest() == expected, \
            f"digest diverged after killing shard " \
            f"{victim % num_shards} at update {kill_after}"
        assert sut.router.stats()["supervisor"]["restarts"] == 1
    finally:
        sut.close()
        shutil.rmtree(wal_dir, ignore_errors=True)


# ---------------------------------------------------------------------------
# the chaos soak, in-test (the CI gate runs the CLI twin of these)
# ---------------------------------------------------------------------------

def test_crash_chaos_soak_converges(small_split, wal_dir):
    report = run_chaos(
        small_split, "store", FaultPlan(), seed=0, num_partitions=2,
        shards=2,
        shard_faults=ShardFaultPlan(kill_rate=0.01,
                                    kill_after_prepare=0.02,
                                    torn_wal_rate=0.005, seed=5),
        shard_wal_dir=wal_dir, shard_max_restarts=256)
    assert report.failure is None, report.failure
    crash_kinds = {"kill", "kill_prepare", "torn"}
    fired = {kind: count
             for kind, count in report.injected_shard_faults.items()
             if kind in crash_kinds and count}
    assert fired, "no crash fault actually fired — the soak is a no-op"
    assert report.worker_restarts > 0
    assert report.digests_match, \
        f"clean {report.clean_digest} != chaos {report.chaos_digest}"
    assert report.ok


def test_crash_chaos_soak_with_recovery_disabled_fails(small_split,
                                                       wal_dir):
    """The same soak minus the supervisor budget must FAIL — a chaos
    harness that cannot fail proves nothing."""
    report = run_chaos(
        small_split, "store", FaultPlan(), seed=0, num_partitions=2,
        shards=2,
        shard_faults=ShardFaultPlan(kill_rate=0.01,
                                    kill_after_prepare=0.02,
                                    torn_wal_rate=0.005, seed=5),
        shard_wal_dir=wal_dir, shard_max_restarts=0)
    assert report.failure is not None
    assert "ShardConnectionError" in report.failure
    assert "exhausted" in report.failure
    assert not report.ok
