"""Cross-SUT equivalence: graph store vs relational engine.

The paper's evaluation runs the same workload on two very different
systems; our two SUTs must agree answer-for-answer on every query, which
doubles as a strong correctness check for both implementations.
"""

from __future__ import annotations

import pytest

from repro.engine import snb_queries as engine_queries
from repro.queries import COMPLEX_QUERIES
from repro.queries import short_reads as store_shorts
from repro.queries.registry import SHORT_QUERIES


@pytest.mark.parametrize("query_id", list(range(1, 15)))
def test_complex_reads_agree(query_id, loaded_store, loaded_catalog,
                             curated_params):
    entry = COMPLEX_QUERIES[query_id]
    engine_run = engine_queries.ENGINE_COMPLEX[query_id]
    for params in curated_params.by_query[query_id]:
        with loaded_store.transaction() as txn:
            store_result = entry.run(txn, params)
        engine_result = engine_run(loaded_catalog, params)
        assert store_result == engine_result


@pytest.mark.parametrize("query_id", list(range(1, 8)))
def test_short_reads_agree(query_id, network, loaded_store,
                           loaded_catalog):
    person_inputs = [p.id for p in network.persons[:10]]
    message_inputs = [m.id for m in network.posts[:5]] \
        + [c.id for c in network.comments[:5]]
    entry = SHORT_QUERIES[query_id]
    inputs = person_inputs if entry.input_kind == "person" \
        else message_inputs
    engine_run = engine_queries.ENGINE_SHORT[query_id]
    for entity_id in inputs:
        with loaded_store.transaction() as txn:
            store_result = entry.run(txn, entity_id)
        engine_result = engine_run(loaded_catalog, entity_id)
        assert store_result == engine_result


def test_updates_agree(network, split, fresh_store, fresh_catalog):
    """Replaying the update stream on both SUTs converges to the same
    query answers."""
    from repro.queries.complex_reads import q2
    from repro.queries.updates import execute_update

    for op in split.updates:
        execute_update(fresh_store, op)
        engine_queries.execute_engine_update(fresh_catalog, op)
    params = q2.Q2Params(network.persons[0].id,
                         network.posts[-1].creation_date + 1)
    with fresh_store.transaction() as txn:
        store_result = COMPLEX_QUERIES[2].run(txn, params)
    engine_result = engine_queries.q2(fresh_catalog, params)
    assert store_result == engine_result
