"""Tests for CSV serialization (bulk-load format round trip)."""

from __future__ import annotations

from repro.datagen.serializer import csv_size_bytes, read_csv, write_csv


class TestRoundTrip:
    def test_full_round_trip(self, network, tmp_path):
        write_csv(network, tmp_path)
        loaded = read_csv(tmp_path)
        assert loaded.persons == network.persons
        assert loaded.knows == network.knows
        assert loaded.forums == network.forums
        assert loaded.memberships == network.memberships
        assert loaded.posts == network.posts
        assert loaded.comments == network.comments
        assert loaded.likes == network.likes
        assert loaded.tags == network.tags
        assert loaded.tag_classes == network.tag_classes
        assert loaded.places == network.places
        assert loaded.organisations == network.organisations

    def test_expected_files_written(self, network, tmp_path):
        write_csv(network, tmp_path)
        names = {path.name for path in tmp_path.glob("*.csv")}
        assert names == {
            "place.csv", "organisation.csv", "tagclass.csv", "tag.csv",
            "person.csv", "knows.csv", "forum.csv",
            "forum_hasMember.csv", "post.csv", "comment.csv",
            "likes.csv",
        }

    def test_csv_size_positive(self, network, tmp_path):
        write_csv(network, tmp_path)
        assert csv_size_bytes(tmp_path) > 10_000

    def test_headers_present(self, network, tmp_path):
        write_csv(network, tmp_path)
        header = (tmp_path / "person.csv").read_text(
            encoding="utf-8").splitlines()[0]
        assert header.split("|")[0] == "id"
        assert "firstName" in header
