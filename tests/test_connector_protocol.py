"""Every connector conforms to the formal ConnectorProtocol contract.

The protocol is structural (``@runtime_checkable``), so these tests
pin the actual contract: the two capability flags exist with sensible
values, ``execute``/``close`` are present, and wrapping layers derive
``is_remote`` from what they wrap instead of hard-coding it.
"""

from __future__ import annotations

import pytest

from repro.core.connector import ConnectorProtocol, InteractiveConnector
from repro.core.operation import OperationResult
from repro.core.sut import StoreSUT
from repro.driver.connectors import (
    Connector,
    DifferentialConnector,
    RecordingConnector,
    SleepingConnector,
    StoreConnector,
    SUTConnector,
)
from repro.faults import FaultInjectingConnector, FaultPlan
from repro.net import RemoteConnector
from repro.store.graph import GraphStore


class _StubSUT:
    """Minimal unified-API SUT for wrapper-construction tests."""

    name = "stub"

    def __init__(self, remote: bool = False) -> None:
        self.is_remote = remote
        self.closed = 0

    def execute(self, op) -> OperationResult:
        return OperationResult(op.op_class, value=None)

    def close(self) -> None:
        self.closed += 1


def all_connectors() -> list:
    return [
        SleepingConnector(0.0),
        StoreConnector(GraphStore()),
        SUTConnector(_StubSUT()),
        DifferentialConnector(_StubSUT(), _StubSUT()),
        RecordingConnector(),
        InteractiveConnector(_StubSUT()),
        FaultInjectingConnector(SUTConnector(_StubSUT()), FaultPlan()),
        # Never dialled: the pool only connects on first execute.
        RemoteConnector("127.0.0.1", 1),
    ]


@pytest.mark.parametrize("connector", all_connectors(),
                         ids=lambda c: type(c).__name__)
def test_conforms_to_protocol(connector):
    assert isinstance(connector, ConnectorProtocol)
    assert isinstance(connector.supports_reads, bool)
    assert isinstance(connector.is_remote, bool)
    connector.close()
    connector.close()  # idempotent


def test_connector_alias_is_the_protocol():
    # The historical driver-local name still resolves, to the same type.
    assert Connector is ConnectorProtocol


def test_capability_flags():
    assert not SleepingConnector(0.0).supports_reads
    assert not StoreConnector(GraphStore()).supports_reads
    assert not RecordingConnector().supports_reads
    assert SUTConnector(_StubSUT()).supports_reads
    assert InteractiveConnector(_StubSUT()).supports_reads
    assert RemoteConnector("127.0.0.1", 1).is_remote


def test_wrappers_inherit_is_remote_from_their_sut():
    assert not SUTConnector(_StubSUT()).is_remote
    assert SUTConnector(_StubSUT(remote=True)).is_remote
    assert not InteractiveConnector(_StubSUT()).is_remote
    assert InteractiveConnector(_StubSUT(remote=True)).is_remote
    assert DifferentialConnector(
        _StubSUT(), _StubSUT(remote=True)).is_remote
    inner = SUTConnector(_StubSUT(remote=True))
    assert FaultInjectingConnector(inner, FaultPlan()).is_remote
    assert RecordingConnector(delegate=inner).is_remote


def test_close_reaches_the_wrapped_sut():
    sut = _StubSUT()
    SUTConnector(sut).close()
    assert sut.closed == 1
    sut = _StubSUT()
    InteractiveConnector(sut).close()
    assert sut.closed == 1
    primary, secondary = _StubSUT(), _StubSUT()
    DifferentialConnector(primary, secondary).close()
    assert primary.closed == 1 and secondary.closed == 1
    sut = _StubSUT()
    FaultInjectingConnector(SUTConnector(sut), FaultPlan()).close()
    assert sut.closed == 1


def test_real_suts_conform_too(loaded_store):
    sut = StoreSUT(loaded_store)
    # SUTs themselves satisfy the structural contract (unified execute
    # plus close), which is what lets RemoteConnector stand in for one.
    assert isinstance(sut, ConnectorProtocol)
    assert sut.supports_reads and not sut.is_remote


def test_nonconforming_object_is_rejected():
    class Half:
        supports_reads = True

        def execute(self, operation):
            return None

    assert not isinstance(Half(), ConnectorProtocol)
