"""Every connector conforms to the ConnectorProtocol contract.

The checks themselves live in :mod:`tests.connector_kit` — one
parametrized suite run against the driver connectors, the interactive
and fault-injecting wrappers, the (never-dialled) wire client, and the
multi-process sharded store.  This module only binds the kit's cases
to pytest and keeps the handful of assertions that are about the
protocol *type* rather than any one connector.
"""

from __future__ import annotations

import pytest

from repro.core.connector import ConnectorProtocol
from repro.core.sut import StoreSUT
from repro.driver.connectors import (
    Connector,
    DifferentialConnector,
    RecordingConnector,
    SUTConnector,
)
from repro.faults import FaultInjectingConnector, FaultPlan

from .connector_kit import (
    DEFAULT_CASES,
    ConnectorCase,
    StubSUT,
    check_abandoned_never_double_applies,
    check_close_idempotent,
    check_crash_recovery,
    check_error_taxonomy,
    check_protocol_structure,
    sharded_case,
)


@pytest.fixture(scope="module")
def all_cases(small_split) -> list[ConnectorCase]:
    return [*DEFAULT_CASES, sharded_case(small_split, shards=2)]


# Parametrize over case *names*; the case objects come from the
# fixture so the sharded case can reuse the session dataset.
_CASE_NAMES = [case.name for case in DEFAULT_CASES] \
    + ["ShardedStoreConnector"]


def _case(all_cases, name: str) -> ConnectorCase:
    return next(case for case in all_cases if case.name == name)


@pytest.mark.parametrize("name", _CASE_NAMES)
def test_protocol_structure(all_cases, name):
    check_protocol_structure(_case(all_cases, name))


@pytest.mark.parametrize("name", _CASE_NAMES)
def test_close_idempotent_and_propagates(all_cases, name):
    check_close_idempotent(_case(all_cases, name))


@pytest.mark.parametrize("name", _CASE_NAMES)
def test_error_taxonomy_crosses_connector(all_cases, name):
    check_error_taxonomy(_case(all_cases, name))


@pytest.mark.parametrize("name", _CASE_NAMES)
def test_abandoned_attempt_never_double_applies(all_cases, name):
    check_abandoned_never_double_applies(_case(all_cases, name))


@pytest.mark.parametrize("name", _CASE_NAMES)
def test_crash_recovery_preserves_acked_updates(all_cases, name):
    check_crash_recovery(_case(all_cases, name))


def test_crash_recovery_check_is_actually_probed(all_cases):
    """The recovery check must not rot into all-skips."""
    probed = [case.name for case in all_cases
              if check_crash_recovery(case)]
    assert "ShardedStoreConnector" in probed


def test_every_guarding_connector_is_actually_probed(all_cases):
    """The exactly-once check must not rot into all-skips."""
    probed = [case.name for case in all_cases
              if check_abandoned_never_double_applies(case)]
    assert "FaultInjectingConnector" in probed
    assert "ShardedStoreConnector" in probed


def test_taxonomy_check_is_actually_probed(all_cases):
    probed = [case.name for case in all_cases
              if check_error_taxonomy(case)]
    assert {"SUTConnector", "InteractiveConnector",
            "FaultInjectingConnector"} <= set(probed)


# -- protocol-type assertions (not per-connector) --------------------------

def test_connector_alias_is_the_protocol():
    # The historical driver-local name still resolves, to the same type.
    assert Connector is ConnectorProtocol


def test_wrappers_inherit_is_remote_from_their_sut():
    assert not SUTConnector(StubSUT()).is_remote
    assert SUTConnector(StubSUT(remote=True)).is_remote
    assert DifferentialConnector(
        StubSUT(), StubSUT(remote=True)).is_remote
    inner = SUTConnector(StubSUT(remote=True))
    assert FaultInjectingConnector(inner, FaultPlan()).is_remote
    assert RecordingConnector(delegate=inner).is_remote


def test_real_suts_conform_too(loaded_store):
    sut = StoreSUT(loaded_store)
    # SUTs themselves satisfy the structural contract (unified execute
    # plus close), which is what lets RemoteConnector stand in for one.
    assert isinstance(sut, ConnectorProtocol)
    assert sut.supports_reads and not sut.is_remote


def test_nonconforming_object_is_rejected():
    class Half:
        supports_reads = True

        def execute(self, operation):
            return None

    assert not isinstance(Half(), ConnectorProtocol)
