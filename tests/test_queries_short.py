"""Tests for the 7 short reads."""

from __future__ import annotations

from repro.queries import short_reads as sr


class TestS1:
    def test_profile_fields(self, network, loaded_store):
        person = network.persons[3]
        with loaded_store.transaction() as txn:
            result = sr.s1_person_profile(txn, person.id)
        assert result.first_name == person.first_name
        assert result.last_name == person.last_name
        assert result.birthday == person.birthday
        assert result.city_id == person.city_id
        assert result.gender == person.gender

    def test_missing_person(self, loaded_store):
        with loaded_store.transaction() as txn:
            assert sr.s1_person_profile(txn, 999_999_999) is None


class TestS2:
    def test_limit_and_order(self, network, loaded_store):
        person = network.persons[0]
        with loaded_store.transaction() as txn:
            results = sr.s2_recent_messages(txn, person.id)
        assert len(results) <= 10
        dates = [r.creation_date for r in results]
        assert dates == sorted(dates, reverse=True)

    def test_root_post_resolution(self, network, loaded_store):
        posts = network.post_by_id()
        author = None
        for comment in network.comments:
            author = comment.author_id
            break
        assert author is not None
        with loaded_store.transaction() as txn:
            for row in sr.s2_recent_messages(txn, author, limit=50):
                root = posts[row.root_post_id]
                assert root.author_id == row.root_author_id


class TestS3:
    def test_all_friends_with_dates(self, network, loaded_store):
        person = network.persons[0]
        expected = {}
        for edge in network.knows:
            if edge.person1_id == person.id:
                expected[edge.person2_id] = edge.creation_date
            elif edge.person2_id == person.id:
                expected[edge.person1_id] = edge.creation_date
        with loaded_store.transaction() as txn:
            results = sr.s3_friends(txn, person.id)
        assert {r.person_id: r.friendship_date
                for r in results} == expected
        dates = [r.friendship_date for r in results]
        assert dates == sorted(dates, reverse=True)


class TestS4S5S6:
    def test_post_content_and_creator(self, network, loaded_store):
        post = network.posts[0]
        with loaded_store.transaction() as txn:
            content = sr.s4_message_content(txn, post.id)
            creator = sr.s5_message_creator(txn, post.id)
            forum = sr.s6_message_forum(txn, post.id)
        assert content.creation_date == post.creation_date
        assert creator.person_id == post.author_id
        assert forum.forum_id == post.forum_id

    def test_comment_forum_via_root(self, network, loaded_store):
        comment = network.comments[0]
        root = network.post_by_id()[comment.root_post_id]
        with loaded_store.transaction() as txn:
            forum = sr.s6_message_forum(txn, comment.id)
        assert forum.forum_id == root.forum_id

    def test_photo_content_falls_back_to_image(self, network,
                                               loaded_store):
        photo = next(p for p in network.posts if p.is_photo)
        with loaded_store.transaction() as txn:
            content = sr.s4_message_content(txn, photo.id)
        assert content.content == photo.image_file

    def test_missing_message(self, loaded_store):
        from repro.ids import EntityKind, make_id

        ghost = make_id(EntityKind.POST, 55_555_555)
        with loaded_store.transaction() as txn:
            assert sr.s4_message_content(txn, ghost) is None
            assert sr.s5_message_creator(txn, ghost) is None
            assert sr.s6_message_forum(txn, ghost) is None


class TestS7:
    def test_replies_match_network(self, network, loaded_store):
        replied = {}
        for comment in network.comments:
            replied.setdefault(comment.reply_of_id, set()).add(
                comment.id)
        target = next(iter(replied))
        with loaded_store.transaction() as txn:
            results = sr.s7_message_replies(txn, target)
        assert {r.comment_id for r in results} == replied[target]

    def test_knows_flag(self, network, loaded_store):
        friends = {}
        for edge in network.knows:
            friends.setdefault(edge.person1_id, set()).add(
                edge.person2_id)
            friends.setdefault(edge.person2_id, set()).add(
                edge.person1_id)
        messages = {m.id: m for m in network.messages()}
        checked = 0
        with loaded_store.transaction() as txn:
            for comment in network.comments[:200]:
                original = messages[comment.reply_of_id]
                for row in sr.s7_message_replies(txn,
                                                 comment.reply_of_id):
                    expected = row.author_id in friends.get(
                        original.author_id, set())
                    assert row.knows_original_author == expected
                    checked += 1
        assert checked > 50

    def test_missing_message_empty(self, loaded_store):
        from repro.ids import EntityKind, make_id

        ghost = make_id(EntityKind.COMMENT, 44_444_444)
        with loaded_store.transaction() as txn:
            assert sr.s7_message_replies(txn, ghost) == []
