"""Tests for the LDS/GDS dependency services (paper Figure 7)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.driver.dependency import (
    STREAM_FINISHED,
    GlobalDependencyService,
    LocalDependencyService,
)
from repro.errors import DriverError


class TestLocalService:
    def test_initial_state(self):
        lds = LocalDependencyService()
        assert lds.local_initiation_time == 0
        assert lds.local_completion_time == -1

    def test_initiate_sets_tli(self):
        lds = LocalDependencyService()
        lds.advance_watermark(100)
        lds.initiate(100)
        assert lds.local_initiation_time == 100
        assert lds.local_completion_time == 99

    def test_complete_advances_tlc(self):
        lds = LocalDependencyService()
        lds.advance_watermark(100)
        lds.initiate(100)
        lds.complete(100)
        assert lds.local_completion_time == 99  # watermark still 100
        lds.advance_watermark(200)
        assert lds.local_completion_time == 199

    def test_monotone_it_enforced(self):
        lds = LocalDependencyService()
        lds.initiate(100)
        with pytest.raises(DriverError):
            lds.initiate(50)

    def test_initiate_below_watermark_rejected(self):
        lds = LocalDependencyService()
        lds.advance_watermark(100)
        with pytest.raises(DriverError):
            lds.initiate(50)

    def test_out_of_order_completion(self):
        """Timestamps can be removed from IT in any order."""
        lds = LocalDependencyService()
        lds.initiate(10)
        lds.initiate(20)
        lds.initiate(30)
        lds.complete(20)
        assert lds.local_completion_time == 9  # 10 still in flight
        lds.complete(10)
        assert lds.local_completion_time == 29  # 30 still in flight
        lds.complete(30)
        assert lds.completed_count == 3

    def test_duplicate_timestamps(self):
        lds = LocalDependencyService()
        lds.initiate(10)
        lds.initiate(10)
        lds.complete(10)
        assert lds.local_initiation_time == 10  # one copy in flight
        lds.complete(10)
        lds.advance_watermark(11)
        assert lds.local_completion_time == 10

    def test_finish_releases_stream(self):
        lds = LocalDependencyService()
        lds.advance_watermark(10)
        lds.finish()
        assert lds.local_completion_time == STREAM_FINISHED

    def test_watermark_only_advances(self):
        lds = LocalDependencyService()
        lds.advance_watermark(100)
        lds.advance_watermark(50)
        assert lds.local_initiation_time == 100

    @given(st.lists(st.integers(min_value=1, max_value=200),
                    min_size=1, max_size=60))
    @settings(max_examples=80)
    def test_tli_tlc_monotone_property(self, raw_times):
        """T_LI and T_LC are guaranteed to monotonically increase."""
        times = sorted(raw_times)
        lds = LocalDependencyService()
        last_tli = lds.local_initiation_time
        last_tlc = lds.local_completion_time
        in_flight = []
        for time in times:
            lds.advance_watermark(time)
            lds.initiate(time)
            in_flight.append(time)
            if len(in_flight) >= 3:
                # Complete an arbitrary (middle) element.
                lds.complete(in_flight.pop(1))
            assert lds.local_initiation_time >= last_tli
            assert lds.local_completion_time >= last_tlc
            last_tli = lds.local_initiation_time
            last_tlc = lds.local_completion_time
        for time in in_flight:
            lds.complete(time)
            assert lds.local_initiation_time >= last_tli
            assert lds.local_completion_time >= last_tlc
            last_tli = lds.local_initiation_time
            last_tlc = lds.local_completion_time


class TestGlobalService:
    def test_empty(self):
        gds = GlobalDependencyService()
        assert gds.global_completion_time == 0
        assert gds.global_initiation_time == 0

    def test_min_over_members(self):
        gds = GlobalDependencyService()
        a = LocalDependencyService()
        b = LocalDependencyService()
        gds.register(a)
        gds.register(b)
        a.advance_watermark(100)
        b.advance_watermark(50)
        assert gds.global_initiation_time == 50
        assert gds.global_completion_time == 49

    def test_slowest_member_pins_gct(self):
        gds = GlobalDependencyService()
        fast = LocalDependencyService()
        slow = LocalDependencyService()
        gds.register(fast)
        gds.register(slow)
        fast.advance_watermark(1000)
        slow.advance_watermark(10)
        slow.initiate(10)
        assert gds.global_completion_time == 9
        slow.complete(10)
        slow.advance_watermark(2000)
        assert gds.global_completion_time == 999

    def test_finished_members_released(self):
        gds = GlobalDependencyService()
        a = LocalDependencyService()
        b = LocalDependencyService()
        gds.register(a)
        gds.register(b)
        a.advance_watermark(500)
        b.finish()
        assert gds.global_completion_time == 499

    def test_wait_until_immediate(self):
        gds = GlobalDependencyService()
        lds = LocalDependencyService()
        gds.register(lds)
        lds.advance_watermark(100)
        assert gds.wait_until(50, timeout=0.1)

    def test_wait_until_timeout(self):
        gds = GlobalDependencyService()
        lds = LocalDependencyService()
        gds.register(lds)
        assert not gds.wait_until(100, timeout=0.05)

    def test_wait_until_released_by_other_thread(self):
        import threading
        import time

        gds = GlobalDependencyService()
        lds = LocalDependencyService()
        gds.register(lds)

        def release():
            time.sleep(0.05)
            lds.advance_watermark(200)

        thread = threading.Thread(target=release)
        thread.start()
        assert gds.wait_until(100, timeout=2.0)
        thread.join()

    def test_composability(self):
        """Figure 7's rationale for T_GI: 'a GDS instance could track
        other GDS instances in the same manner as it tracks LDS
        instances, enabling dependency tracking in a hierarchical /
        distributed setting'."""
        leaf_a = LocalDependencyService()
        leaf_b = LocalDependencyService()
        child_one = GlobalDependencyService()
        child_one.register(leaf_a)
        child_two = GlobalDependencyService()
        child_two.register(leaf_b)
        root = GlobalDependencyService()
        root.register(child_one)
        root.register(child_two)
        leaf_a.advance_watermark(100)
        leaf_b.advance_watermark(70)
        assert root.global_initiation_time == 70
        assert root.global_completion_time == 69
        leaf_b.advance_watermark(300)
        assert root.global_completion_time == 99
