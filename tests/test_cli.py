"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_range_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["curate", "--query", "15"])


class TestGenerate:
    def test_generate_prints_stats(self, capsys):
        code = main(["generate", "--persons", "60", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Persons" in out
        assert "integrity: clean" in out

    def test_generate_with_export_and_validate(self, tmp_path, capsys):
        outdir = tmp_path / "export"
        code = main(["generate", "--persons", "60", "--seed", "3",
                     "--out", str(outdir)])
        assert code == 0
        assert (outdir / "person.csv").exists()
        code = main(["validate", str(outdir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "integrity: clean" in out

    def test_generate_scale_factor(self, capsys):
        code = main(["generate", "--scale-factor", "0.002",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SF 0.002" in out


class TestValidateDetectsCorruption(object):
    def test_corrupted_export_fails(self, tmp_path, capsys):
        outdir = tmp_path / "export"
        main(["generate", "--persons", "60", "--seed", "3",
              "--out", str(outdir)])
        capsys.readouterr()
        # Corrupt a like timestamp.
        likes = (outdir / "likes.csv").read_text().splitlines()
        parts = likes[1].split("|")
        parts[2] = "1"
        likes[1] = "|".join(parts)
        (outdir / "likes.csv").write_text("\n".join(likes) + "\n")
        code = main(["validate", str(outdir)])
        out = capsys.readouterr().out
        assert code == 1
        assert "violations" in out


class TestBenchmark:
    def test_benchmark_store(self, capsys):
        code = main(["benchmark", "--persons", "70", "--seed", "2",
                     "--partitions", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 6" in out
        assert "throughput" in out

    def test_benchmark_engine(self, capsys):
        code = main(["benchmark", "--persons", "70", "--seed", "2",
                     "--sut", "engine", "--mode", "parallel"])
        assert code == 0
        assert "relational-engine" in capsys.readouterr().out


class TestExplainAndCurate:
    def test_explain(self, capsys):
        code = main(["explain", "--persons", "80", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "join decisions:" in out

    def test_curate(self, capsys):
        code = main(["curate", "--persons", "80", "--seed", "2",
                     "--query", "5", "-k", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "curated bindings for Q5" in out
        assert out.count("Q5Params") == 3

    def test_curate_uniform(self, capsys):
        code = main(["curate", "--persons", "80", "--seed", "2",
                     "--query", "2", "-k", "2", "--uniform"])
        out = capsys.readouterr().out
        assert code == 0
        assert "uniform bindings" in out


class TestChaos:
    def test_chaos_store_converges(self, capsys):
        code = main(["chaos", "--persons", "60", "--seed", "11",
                     "--sut", "store", "--abort-rate", "0.06",
                     "--latency-rate", "0.02", "--latency-ms", "0",
                     "--store-conflicts", "0.02"])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos soak [store]" in out
        assert "state digest: MATCH" in out
        assert "OK — chaos run converged" in out

    def test_chaos_fails_without_injections(self, capsys):
        # All rates zero: the soak must refuse to claim success.
        code = main(["chaos", "--persons", "60", "--seed", "11",
                     "--sut", "store", "--abort-rate", "0",
                     "--latency-rate", "0"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out

    def test_canary_faults_requires_check(self, capsys):
        code = main(["validate", ".", "--canary-faults"])
        assert code == 2

    def test_canary_faults_detects(self, capsys, tmp_path):
        golden = tmp_path / "g.jsonl"
        code = main(["validate", "--create", str(golden),
                     "--persons", "60", "--seed", "11"])
        assert code == 0
        capsys.readouterr()
        code = main(["validate", "--check", str(golden),
                     "--canary-faults"])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos canary detected" in out


class TestCrashRecoveryFlags:
    def test_chaos_crash_fault_flags_parse(self):
        args = build_parser().parse_args(
            ["chaos", "--shards", "2",
             "--shard-kill-rate", "0.01",
             "--shard-kill-after-prepare", "0.02",
             "--shard-torn-wal-rate", "0.005",
             "--shard-wal-dir", "/tmp/repro-wal",
             "--shard-max-restarts", "7"])
        assert args.shard_kill_rate == 0.01
        assert args.shard_kill_after_prepare == 0.02
        assert args.shard_torn_wal_rate == 0.005
        assert args.shard_wal_dir == "/tmp/repro-wal"
        assert args.shard_max_restarts == 7

    def test_serve_drain_and_wal_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--drain-timeout", "2.5",
             "--shard-wal-dir", "/tmp/repro-wal"])
        assert args.drain_timeout == 2.5
        assert args.shard_wal_dir == "/tmp/repro-wal"

    def test_chaos_crash_soak_cli_converges(self, capsys):
        code = main(["chaos", "--persons", "50", "--seed", "11",
                     "--shards", "2", "--abort-rate", "0",
                     "--latency-rate", "0",
                     "--shard-kill-rate", "0.01",
                     "--shard-kill-after-prepare", "0.02",
                     "--shard-torn-wal-rate", "0.005",
                     "--shard-max-restarts", "256"])
        out = capsys.readouterr().out
        assert code == 0
        assert "supervised worker restarts:" in out
        assert "state digest: MATCH" in out
        assert "OK — chaos run converged" in out
