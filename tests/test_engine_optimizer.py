"""Tests for cardinality estimation and cost-based join selection."""

from __future__ import annotations

import pytest

from repro.engine.cardinality import CardinalityEstimator
from repro.engine.explain import explain, explain_pipeline
from repro.engine.optimizer import JoinSpec, JoinStep, Optimizer
from repro.engine import snb_queries
from repro.errors import PlanError
from repro.queries.complex_reads import q2 as g2
from repro.queries.complex_reads import q9 as g9


class TestCardinalityEstimator:
    def test_fanout_pk_is_one(self, loaded_catalog):
        estimator = CardinalityEstimator(loaded_catalog)
        assert estimator.fanout("person", None) == 1.0

    def test_knows_fanout_is_average_degree(self, network,
                                            loaded_catalog):
        estimator = CardinalityEstimator(loaded_catalog)
        degree = estimator.average_degree()
        actual = 2 * len(network.knows) / len(network.persons)
        # Persons with zero friends are absent from the index, so the
        # estimator slightly overestimates; allow a band.
        assert actual * 0.8 <= degree <= actual * 1.6

    def test_expand_chains(self, loaded_catalog):
        estimator = CardinalityEstimator(loaded_catalog)
        one = estimator.expand(1.0, "knows", "person1_id")
        two = estimator.expand(one.rows, "knows", "person1_id",
                               repeat_expansion=True)
        assert two.rows > one.rows
        assert "dedup" in two.derivation

    def test_two_hop_estimate_positive(self, loaded_catalog):
        estimator = CardinalityEstimator(loaded_catalog)
        estimate = estimator.two_hop_circle()
        assert estimate.rows > estimator.average_degree()

    def test_date_selectivity_bounds(self, loaded_catalog):
        estimator = CardinalityEstimator(loaded_catalog)
        full = estimator.date_selectivity("message", "creation_date",
                                          None, None)
        assert full == pytest.approx(1.0)
        none = estimator.date_selectivity("message", "creation_date",
                                          10, 5)
        assert none == 0.0

    def test_date_selectivity_half(self, network, loaded_catalog):
        estimator = CardinalityEstimator(loaded_catalog)
        dates = sorted(m.creation_date for m in network.messages())
        mid = dates[len(dates) // 2]
        half = estimator.date_selectivity("message", "creation_date",
                                          None, mid)
        assert 0.1 < half < 0.95


class TestOptimizer:
    def _q9_spec(self, person_id, max_date, force=None):
        force = force or {}
        return JoinSpec(
            source_table="knows", source_keys=[person_id],
            source_column="person1_id",
            steps=[
                JoinStep("knows", outer_key="person2_id",
                         inner_column="person1_id",
                         repeat_expansion=True, force=force.get(0)),
                JoinStep("message", outer_key="inner_person2_id",
                         inner_column="creator_id",
                         residual=lambda row: row[9] < max_date,
                         selectivity=0.5, force=force.get(1)),
            ])

    def test_intended_plan_uses_inl_for_friend_expansion(
            self, network, loaded_catalog):
        """Fig. 4: the low-cardinality friend expansion must be an
        index-nested-loop join."""
        person = network.persons[0]
        pipeline = Optimizer(loaded_catalog).plan(
            self._q9_spec(person.id, 2 ** 62))
        assert pipeline.decisions[0].algorithm == "inl"

    def test_forced_algorithms_agree_on_results(self, network,
                                                loaded_catalog):
        person = network.persons[0]
        max_date = network.posts[-1].creation_date
        optimizer = Optimizer(loaded_catalog)
        free = optimizer.plan(self._q9_spec(person.id, max_date))
        forced = optimizer.plan(self._q9_spec(
            person.id, max_date, force={0: "hash", 1: "hash"}))
        assert sorted(free.execute()) == sorted(forced.execute())

    def test_hash_wins_when_outer_huge(self, loaded_catalog):
        """With a huge outer side, the cost model must flip to hash."""
        optimizer = Optimizer(loaded_catalog)
        knows = loaded_catalog.table("knows")
        all_sources = [row[0] for row in knows.rows]
        spec = JoinSpec(
            source_table="knows", source_keys=all_sources,
            source_column="person1_id",
            steps=[JoinStep("message", outer_key="person2_id",
                            inner_column="creator_id")])
        pipeline = optimizer.plan(spec)
        decision = pipeline.decisions[0]
        assert decision.estimated_outer > 1000
        assert decision.algorithm == "hash"

    def test_unindexed_column_forces_hash(self, loaded_catalog):
        spec = JoinSpec(
            source_table="person",
            source_keys=[loaded_catalog.table("person").rows[0][0]],
            steps=[JoinStep("forum", outer_key="id",
                            inner_column="moderator_id")])
        # forum.moderator_id has no hash index.
        pipeline = Optimizer(loaded_catalog).plan(spec)
        assert pipeline.decisions[0].algorithm == "hash"

    def test_forcing_inl_without_index_raises(self, loaded_catalog):
        spec = JoinSpec(
            source_table="person",
            source_keys=[loaded_catalog.table("person").rows[0][0]],
            steps=[JoinStep("forum", outer_key="id",
                            inner_column="moderator_id",
                            force="inl")])
        with pytest.raises(PlanError):
            Optimizer(loaded_catalog).plan(spec)

    def test_decision_costs_recorded(self, network, loaded_catalog):
        person = network.persons[0]
        pipeline = Optimizer(loaded_catalog).plan(
            self._q9_spec(person.id, 2 ** 62))
        for decision in pipeline.decisions:
            assert decision.inl_cost > 0
            assert decision.hash_cost > 0
            assert decision.chosen_cost \
                == min(decision.inl_cost, decision.hash_cost) \
                or decision.algorithm in ("inl", "hash")


class TestQ9Pipeline:
    def test_pipeline_matches_leg_semantics(self, network,
                                            loaded_catalog,
                                            curated_params):
        """The pipeline is the voluminous friends-of-friends leg of the
        Fig. 4 union: messages of every endpoint of a length-2 knows
        path (duplicates per path, dates filtered)."""
        params = curated_params.by_query[9][0]
        pipeline = snb_queries.q9_pipeline(loaded_catalog, params)
        rows = pipeline.execute()
        got = {row[6] for row in rows}  # message ids
        knows = loaded_catalog.table("knows")
        expected = set()
        for edge1 in knows.probe("person1_id", params.person_id):
            for edge2 in knows.probe("person1_id", edge1[1]):
                for message in loaded_catalog.table("message").probe(
                        "creator_id", edge2[1]):
                    if message[3] < params.max_date:
                        expected.add(message[0])
        assert got == expected

    def test_q2_pipeline_runs(self, loaded_catalog, curated_params):
        params = curated_params.by_query[2][0]
        pipeline = snb_queries.q2_pipeline(loaded_catalog, params)
        assert pipeline.execute() is not None

    def test_q5_pipeline_matches_leg_semantics(self, loaded_catalog,
                                               curated_params):
        """Q5's pipeline: memberships (joined after the date) of every
        endpoint of a length-2 knows path."""
        params = curated_params.by_query[5][0]
        pipeline = snb_queries.q5_pipeline(loaded_catalog, params)
        rows = pipeline.execute()
        got = {(row[6], row[7]) for row in rows}  # (forum, person)
        knows = loaded_catalog.table("knows")
        membership = loaded_catalog.table("membership")
        expected = set()
        for edge1 in knows.probe("person1_id", params.person_id):
            for edge2 in knows.probe("person1_id", edge1[1]):
                for row in membership.probe("person_id", edge2[1]):
                    if row[2] > params.min_date:
                        expected.add((row[0], row[1]))
        assert got == expected

    def test_q5_pipeline_forced_algorithms_agree(self, loaded_catalog,
                                                 curated_params):
        params = curated_params.by_query[5][0]
        free = snb_queries.q5_pipeline(loaded_catalog, params)
        forced = snb_queries.q5_pipeline(loaded_catalog, params,
                                         force={0: "hash", 1: "hash"})
        assert sorted(free.execute()) == sorted(forced.execute())


class TestExplain:
    def test_explain_tree_structure(self, network, loaded_catalog,
                                    curated_params):
        params = curated_params.by_query[9][0]
        pipeline = snb_queries.q9_pipeline(loaded_catalog, params)
        text = explain(pipeline.root)
        assert "lookup(knows.person1_id)" in text
        assert "knows" in text

    def test_explain_with_actuals(self, loaded_catalog, curated_params):
        params = curated_params.by_query[9][0]
        pipeline = snb_queries.q9_pipeline(loaded_catalog, params)
        pipeline.execute()
        text = explain_pipeline(pipeline, show_actuals=True)
        assert "[out=" in text
        assert "join decisions:" in text
        assert "cost(inl)=" in text
