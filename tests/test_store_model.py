"""Model-based testing of the MVCC store against a naive reference.

A hypothesis state machine drives interleaved transactions (insert /
update / edge / abort / commit / reads, plus concurrent committers)
against both the real store and a trivial reference model, asserting:

* an open snapshot transaction keeps seeing begin-time state plus its
  own writes, no matter what commits concurrently;
* commit applies all-or-nothing, failing exactly when first-committer-
  wins says it must (duplicate insert or write-write conflict);
* committed state always equals the model.
"""

from __future__ import annotations

import copy

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.errors import DuplicateError, StoreError
from repro.store.graph import GraphStore, IsolationLevel

VIDS = st.integers(min_value=0, max_value=8)
VALUES = st.integers(min_value=0, max_value=99)


class _Model:
    """Reference committed state."""

    def __init__(self) -> None:
        self.vertices: dict[int, dict] = {}
        self.edges: list[tuple[int, int, int]] = []


class MvccMachine(RuleBasedStateMachine):
    """One open transaction at a time plus concurrent committers."""

    @initialize()
    def setup(self):
        self.store = GraphStore()
        self.model = _Model()
        self.txn = None
        self.txn_model = None
        self.txn_snapshot_model = None
        self.txn_inserts: set[int] = set()
        self.txn_updates: set[int] = set()
        self.concurrent_touched: set[int] = set()

    # -- transaction lifecycle ------------------------------------------

    @precondition(lambda self: self.txn is None)
    @rule()
    def begin(self):
        self.txn = self.store.transaction(IsolationLevel.SNAPSHOT)
        self.txn_snapshot_model = copy.deepcopy(self.model)
        self.txn_model = _Model()
        self.txn_inserts = set()
        self.txn_updates = set()
        self.concurrent_touched = set()

    @precondition(lambda self: self.txn is not None)
    @rule()
    def commit(self):
        # First-committer-wins: the commit must fail iff an insert
        # targets a vertex now committed, or an update raced a
        # concurrent commit of the same vertex.
        expect_fail = (
            any(vid in self.model.vertices for vid in self.txn_inserts)
            or bool(self.txn_updates & self.concurrent_touched))
        try:
            self.txn.commit()
            applied = True
        except StoreError:
            applied = False
        assert applied == (not expect_fail)
        if applied:
            for vid, props in self.txn_model.vertices.items():
                merged = dict(self.model.vertices.get(vid, {}))
                merged.update(props)
                self.model.vertices[vid] = merged
            self.model.edges.extend(self.txn_model.edges)
        self._clear_txn()

    @precondition(lambda self: self.txn is not None)
    @rule()
    def abort(self):
        self.txn.abort()
        self._clear_txn()

    def _clear_txn(self):
        self.txn = None
        self.txn_model = None
        self.txn_snapshot_model = None
        self.txn_inserts = set()
        self.txn_updates = set()
        self.concurrent_touched = set()

    # -- writes inside the open transaction -------------------------------

    @precondition(lambda self: self.txn is not None)
    @rule(vid=VIDS, value=VALUES)
    def insert_vertex(self, vid, value):
        if vid in self.txn_inserts:
            # Double insert within one transaction fails immediately.
            try:
                self.txn.insert_vertex("v", vid, {"value": value})
                raise AssertionError("expected in-txn duplicate error")
            except DuplicateError:
                return
        # An insert over an earlier in-txn *update* buffers fine (the
        # duplicate surfaces at commit, covered by expect_fail) and the
        # insert's properties shadow the update in reads.
        self.txn.insert_vertex("v", vid, {"value": value})
        self.txn_model.vertices[vid] = {"value": value}
        self.txn_inserts.add(vid)

    @precondition(lambda self: self.txn is not None)
    @rule(vid=VIDS, value=VALUES)
    def update_vertex(self, vid, value):
        visible = (vid in self.txn_snapshot_model.vertices
                   or vid in self.txn_model.vertices)
        if not visible:
            return  # updating a missing vertex fails at commit; skip
        self.txn.update_vertex("v", vid, value=value)
        current = self.txn_model.vertices.get(vid, {})
        self.txn_model.vertices[vid] = {**current, "value": value}
        if vid not in self.txn_inserts:
            self.txn_updates.add(vid)

    @precondition(lambda self: self.txn is not None)
    @rule(src=VIDS, dst=VIDS, weight=VALUES)
    def insert_edge(self, src, dst, weight):
        self.txn.insert_edge("e", src, dst, {"weight": weight})
        self.txn_model.edges.append((src, dst, weight))

    # -- concurrent committed writes (other transactions) ----------------

    @rule(vid=VIDS, value=VALUES)
    def concurrent_commit(self, vid, value):
        with self.store.transaction() as other:
            if other.vertex("v", vid) is None:
                other.insert_vertex("v", vid, {"value": value})
            else:
                other.update_vertex("v", vid, value=value)
        merged = dict(self.model.vertices.get(vid, {}))
        merged["value"] = value
        self.model.vertices[vid] = merged
        if self.txn is not None:
            self.concurrent_touched.add(vid)

    # -- invariants ---------------------------------------------------------

    @invariant()
    def open_transaction_sees_stable_snapshot(self):
        if self.txn is None:
            return
        for vid in range(9):
            got = self.txn.vertex("v", vid)
            own = self.txn_model.vertices.get(vid)
            committed = self.txn_snapshot_model.vertices.get(vid)
            if own is not None:
                expected = {**(committed or {}), **own}
            else:
                expected = committed
            assert got == expected, (vid, got, expected)

    @invariant()
    def committed_state_matches_model(self):
        with self.store.transaction() as reader:
            for vid in range(9):
                got = reader.vertex("v", vid)
                expected = self.model.vertices.get(vid)
                assert got == expected, (vid, got, expected)
            got_edges = sorted(
                (src, dst, props["weight"])
                for src in range(9)
                for dst, props in reader.neighbors("e", src))
            assert got_edges == sorted(self.model.edges)


MvccMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestMvccModel = MvccMachine.TestCase
