"""Reusable connector-conformance kit.

One parametrized suite (``test_connector_protocol.py``) asserts the
:class:`~repro.core.connector.ConnectorProtocol` contract against every
connector in the system — the driver connectors, the interactive and
fault-injecting wrappers, the wire client, and the sharded store.  New
connectors join the suite by adding a :class:`ConnectorCase`; the
checks themselves live here so other test modules (and downstream
SUT implementations) can reuse them against their own connectors.

The contract, as checked:

* **structure** — the connector satisfies the runtime-checkable
  protocol; ``supports_reads`` / ``is_remote`` are real booleans with
  the declared values;
* **close** — ``close()`` is safe to call twice, and a single close
  reaches every wrapped SUT/connector exactly once;
* **error taxonomy** — exceptions raised by the wrapped system cross
  the connector unwrapped, so the retry policy's transient/fatal
  classification still sees the taxonomy type;
* **abandoned attempts** — a connector that can stall checks
  :func:`~repro.driver.resilience.raise_if_abandoned` before its
  side-effecting step, so an attempt the watchdog gave up on can never
  double-apply an update behind the retry's back.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.core.connector import ConnectorProtocol
from repro.driver.resilience import AbandonedAttemptError, \
    _attempt_state, default_is_transient
from repro.errors import FatalSUTError, TransientError


class StubSUT:
    """Minimal unified-API SUT: counts executions and closes, and can
    be armed to raise a chosen exception on the next execute."""

    name = "stub"

    def __init__(self, remote: bool = False) -> None:
        self.is_remote = remote
        self.closed = 0
        self.executed = 0
        self.raise_next: BaseException | None = None

    def execute(self, op):
        from repro.core.operation import OperationResult

        if self.raise_next is not None:
            exc, self.raise_next = self.raise_next, None
            raise exc
        self.executed += 1
        return OperationResult(op.op_class, value=None)

    def close(self) -> None:
        self.closed += 1


def probe_update():
    """A synthetic update operation for stub-backed connectors."""
    from repro.datagen.update_stream import UpdateKind, UpdateOperation

    return UpdateOperation(kind=UpdateKind.ADD_LIKE_POST, due_time=1,
                           depends_on_time=0, payload=None)


@dataclass
class Live:
    """One built connector plus the observation hooks its case offers.

    Hooks are optional: a ``None`` hook means the corresponding check
    does not apply to this connector (e.g. the never-dialled wire
    client cannot count applies without a server).
    """

    connector: object
    #: Close counters of everything the connector wraps; each must be
    #: >= 1 after one close (propagation).
    wrapped_close_counts: Callable[[], list[int]] | None = None
    #: Arm the wrapped system to raise ``exc`` on the next execute.
    arm_error: Callable[[BaseException], None] | None = None
    #: An update operation this connector can execute for real.
    update_op: object | None = None
    #: Times the probe update landed on the underlying state.
    applied_count: Callable[[], int] | None = None
    #: True when the connector consults ``raise_if_abandoned`` before
    #: its side-effecting step (stalling connectors must).
    guards_abandonment: bool = False
    #: True when the underlying system survives a hard crash without
    #: losing acknowledged updates (arms ``check_crash_recovery``).
    supports_recovery: bool = False
    #: Hard-kill the underlying system's worker processes (``kill -9``
    #: semantics — no flush, no goodbye).
    crash: Callable[[], None] | None = None
    #: Canonical digest of the underlying state (recovery oracle).
    state_digest: Callable[[], str] | None = None
    cleanup: Callable[[], None] | None = None

    def done(self) -> None:
        if self.cleanup is not None:
            self.cleanup()


@dataclass(frozen=True)
class ConnectorCase:
    """One connector's entry in the conformance suite."""

    name: str
    build: Callable[[], Live]
    supports_reads: bool
    is_remote: bool = False


# ---------------------------------------------------------------------------
# the checks
# ---------------------------------------------------------------------------

def check_protocol_structure(case: ConnectorCase) -> None:
    live = case.build()
    try:
        connector = live.connector
        assert isinstance(connector, ConnectorProtocol), case.name
        assert isinstance(connector.supports_reads, bool)
        assert isinstance(connector.is_remote, bool)
        assert connector.supports_reads == case.supports_reads, case.name
        assert connector.is_remote == case.is_remote, case.name
    finally:
        live.done()


def check_close_idempotent(case: ConnectorCase) -> None:
    """Double close must not raise; one close reaches every wrap."""
    live = case.build()
    try:
        live.connector.close()
        if live.wrapped_close_counts is not None:
            counts = live.wrapped_close_counts()
            assert counts and all(n >= 1 for n in counts), \
                f"{case.name}: close did not propagate ({counts})"
        live.connector.close()  # idempotent: no raise, no hang
    finally:
        live.done()


def check_error_taxonomy(case: ConnectorCase) -> bool:
    """Wrapped taxonomy errors cross the connector classifiable.

    Returns False when the case offers no way to arm an error (the
    check does not apply); asserts on violation otherwise.
    """
    live = case.build()
    try:
        if live.arm_error is None or live.update_op is None:
            return False
        for exc, want_transient in ((TransientError("probe"), True),
                                    (FatalSUTError("probe"), False)):
            live.arm_error(exc)
            try:
                live.connector.execute(live.update_op)
                raised = None
            except BaseException as caught:
                raised = caught
            assert raised is not None, \
                f"{case.name}: armed {type(exc).__name__} was swallowed"
            assert default_is_transient(raised) is want_transient, \
                f"{case.name}: {type(raised).__name__} classified " \
                f"{'transient' if not want_transient else 'fatal'} — " \
                f"the retry policy would mishandle it"
        return True
    finally:
        live.done()


def check_abandoned_never_double_applies(case: ConnectorCase) -> bool:
    """An attempt the watchdog abandoned must not reach the SUT.

    Simulates the watchdog by setting the per-thread cancellation flag
    (exactly what :func:`call_with_watchdog` does on expiry), issues
    the attempt, and requires (a) ``AbandonedAttemptError``, (b) zero
    state change; the follow-up retry must then apply exactly once.
    Returns False when the case does not guard abandonment (stall-free
    connectors need no guard).
    """
    live = case.build()
    try:
        if not live.guards_abandonment:
            return False
        assert live.update_op is not None and live.applied_count, \
            f"{case.name}: guarding case must provide an update probe"
        before = live.applied_count()
        cancel = threading.Event()
        cancel.set()
        _attempt_state.cancel = cancel
        try:
            try:
                live.connector.execute(live.update_op)
                raise AssertionError(
                    f"{case.name}: abandoned attempt executed anyway")
            except AbandonedAttemptError:
                pass
        finally:
            _attempt_state.cancel = None
        assert live.applied_count() == before, \
            f"{case.name}: abandoned attempt mutated state"
        live.connector.execute(live.update_op)  # the scheduler's retry
        assert live.applied_count() == before + 1, \
            f"{case.name}: retry after abandonment did not apply " \
            f"exactly once"
        return True
    finally:
        live.done()


def check_crash_recovery(case: ConnectorCase) -> bool:
    """An acknowledged update must survive a hard worker crash.

    Executes the probe update (the ack), digests the state, hard-kills
    the underlying workers, and digests again: the second read runs
    through the connector's recovery path and must return the exact
    pre-crash digest — the acked write neither lost nor double-applied
    by WAL replay.  Returns False for connectors that do not declare
    crash tolerance (the check does not apply).
    """
    live = case.build()
    try:
        if not live.supports_recovery:
            return False
        assert live.crash is not None and live.state_digest is not None, \
            f"{case.name}: recovery case must provide crash + digest hooks"
        assert live.update_op is not None, \
            f"{case.name}: recovery case must provide an update probe"
        live.connector.execute(live.update_op)  # the acknowledged write
        before = live.state_digest()
        live.crash()
        after = live.state_digest()  # supervised: recovers, then reads
        assert after == before, \
            f"{case.name}: digest diverged across crash recovery " \
            f"({before[:12]}… -> {after[:12]}…)"
        return True
    finally:
        live.done()


ALL_CHECKS = (check_protocol_structure, check_close_idempotent,
              check_error_taxonomy,
              check_abandoned_never_double_applies,
              check_crash_recovery)


# ---------------------------------------------------------------------------
# the cases
# ---------------------------------------------------------------------------

def _sleeping() -> Live:
    from repro.driver.connectors import SleepingConnector

    return Live(SleepingConnector(0.0))


def _store() -> Live:
    from repro.driver.connectors import StoreConnector
    from repro.store.graph import GraphStore

    return Live(StoreConnector(GraphStore()))


def _sut() -> Live:
    from repro.driver.connectors import SUTConnector

    stub = StubSUT()
    connector = SUTConnector(stub)

    def arm(exc: BaseException) -> None:
        stub.raise_next = exc

    return Live(connector,
                wrapped_close_counts=lambda: [stub.closed],
                arm_error=arm, update_op=probe_update(),
                applied_count=lambda: stub.executed)


def _differential() -> Live:
    from repro.driver.connectors import DifferentialConnector

    primary, secondary = StubSUT(), StubSUT()
    connector = DifferentialConnector(primary, secondary)
    return Live(connector,
                wrapped_close_counts=lambda: [primary.closed,
                                              secondary.closed])


def _recording() -> Live:
    from repro.driver.connectors import RecordingConnector, SUTConnector

    stub = StubSUT()
    connector = RecordingConnector(delegate=SUTConnector(stub))
    return Live(connector,
                wrapped_close_counts=lambda: [stub.closed])


def _interactive() -> Live:
    from repro.core.connector import InteractiveConnector

    stub = StubSUT()
    connector = InteractiveConnector(stub)

    def arm(exc: BaseException) -> None:
        stub.raise_next = exc

    return Live(connector,
                wrapped_close_counts=lambda: [stub.closed],
                arm_error=arm, update_op=probe_update(),
                applied_count=lambda: stub.executed)


def _fault_injecting() -> Live:
    from repro.driver.connectors import SUTConnector
    from repro.faults import FaultInjectingConnector, FaultPlan

    stub = StubSUT()
    # Every op takes the latency path: sleep, then the abandonment
    # re-check, then delegate — the guarded stall this kit probes.
    plan = FaultPlan.uniform(latency=1.0, latency_seconds=0.001)
    connector = FaultInjectingConnector(SUTConnector(stub), plan)

    def arm(exc: BaseException) -> None:
        stub.raise_next = exc

    return Live(connector,
                wrapped_close_counts=lambda: [stub.closed],
                arm_error=arm, update_op=probe_update(),
                applied_count=lambda: stub.executed,
                guards_abandonment=True)


def _remote() -> Live:
    from repro.net import RemoteConnector

    # Never dialled: the pool only connects on first execute, so the
    # structural and close checks run without a server.
    return Live(RemoteConnector("127.0.0.1", 1))


DEFAULT_CASES = (
    ConnectorCase("SleepingConnector", _sleeping, supports_reads=False),
    ConnectorCase("StoreConnector", _store, supports_reads=False),
    ConnectorCase("SUTConnector", _sut, supports_reads=True),
    ConnectorCase("DifferentialConnector", _differential,
                  supports_reads=True),
    ConnectorCase("RecordingConnector", _recording,
                  supports_reads=False),
    ConnectorCase("InteractiveConnector", _interactive,
                  supports_reads=True),
    ConnectorCase("FaultInjectingConnector", _fault_injecting,
                  supports_reads=True),
    ConnectorCase("RemoteConnector", _remote, supports_reads=True,
                  is_remote=True),
)


def sharded_case(split, shards: int = 2) -> ConnectorCase:
    """The sharded store as a driver connector (spawns real workers).

    The router checks abandonment before routing a commit, so the
    exactly-once probe runs against genuine worker processes; the
    update probe is the first operation of the split's update stream.
    Workers get a shard WAL directory, so the case also exercises the
    crash-recovery check: ``crash`` kill -9s every worker and the
    supervised digest read must come back byte-identical.
    """
    def build() -> Live:
        import shutil
        import tempfile

        from repro.driver.connectors import SUTConnector
        from repro.shard import ShardedStoreSUT

        wal_dir = tempfile.mkdtemp(prefix="repro-kit-wal-")
        sut = ShardedStoreSUT.for_network(split.bulk, shards,
                                          wal_dir=wal_dir)
        connector = SUTConnector(sut)

        def crash() -> None:
            for handle in sut.router.handles:
                handle.process.kill()
                handle.process.join(timeout=5.0)

        def cleanup() -> None:
            sut.close()
            shutil.rmtree(wal_dir, ignore_errors=True)

        return Live(connector,
                    wrapped_close_counts=lambda: [
                        1 if sut.router._closed else 0],
                    update_op=split.updates[0],
                    applied_count=lambda: sut.router._updates,
                    guards_abandonment=True,
                    supports_recovery=True,
                    crash=crash,
                    state_digest=sut.digest,
                    cleanup=cleanup)

    return ConnectorCase("ShardedStoreConnector", build,
                         supports_reads=True)
