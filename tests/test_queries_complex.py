"""Tests for the 14 complex reads: brute-force reference checks.

Each query's store implementation is validated against an independent
naive computation over the raw :class:`SocialNetwork` (no store, no
indexes), on several curated parameter bindings.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.queries import COMPLEX_QUERIES
from repro.queries.complex_reads import (
    q2,
    q3,
    q4,
    q5,
    q6,
    q7,
    q8,
    q9,
    q13,
)
from repro.sim_time import MILLIS_PER_DAY


@pytest.fixture(scope="module")
def graph(network):
    """Naive adjacency + message maps for reference computations."""
    neighbors = defaultdict(set)
    for edge in network.knows:
        neighbors[edge.person1_id].add(edge.person2_id)
        neighbors[edge.person2_id].add(edge.person1_id)
    messages_by_author = defaultdict(list)
    for message in network.messages():
        messages_by_author[message.author_id].append(message)
    return {
        "neighbors": neighbors,
        "messages_by_author": messages_by_author,
        "persons": network.person_by_id(),
    }


def _two_hop(graph, person_id):
    friends = graph["neighbors"][person_id]
    circle = set(friends)
    for friend in friends:
        circle |= graph["neighbors"][friend]
    circle.discard(person_id)
    return circle


def _run(loaded_store, query_id, params):
    with loaded_store.transaction() as txn:
        return COMPLEX_QUERIES[query_id].run(txn, params)


class TestQ1:
    def test_results_within_three_hops(self, loaded_store, graph,
                                       curated_params):
        for params in curated_params.by_query[1]:
            results = _run(loaded_store, 1, params)
            for row in results:
                assert 1 <= row.distance <= 3
                person = graph["persons"][row.person_id]
                assert person.first_name == params.first_name

    def test_sorted_by_distance_then_name(self, loaded_store,
                                          curated_params):
        for params in curated_params.by_query[1]:
            results = _run(loaded_store, 1, params)
            keys = [(r.distance, r.last_name, r.person_id)
                    for r in results]
            assert keys == sorted(keys)

    def test_start_person_excluded(self, loaded_store, curated_params):
        for params in curated_params.by_query[1]:
            results = _run(loaded_store, 1, params)
            assert all(r.person_id != params.person_id for r in results)


class TestQ2:
    def test_matches_reference(self, loaded_store, graph,
                               curated_params):
        for params in curated_params.by_query[2]:
            expected = []
            for friend in graph["neighbors"][params.person_id]:
                for message in graph["messages_by_author"][friend]:
                    if message.creation_date <= params.max_date:
                        expected.append((-message.creation_date,
                                         message.id))
            expected.sort()
            got = [(-r.creation_date, r.message_id)
                   for r in _run(loaded_store, 2, params)]
            assert got == expected[:q2.LIMIT]


class TestQ3:
    def test_counts_match_reference(self, loaded_store, graph, network,
                                    curated_params):
        for params in curated_params.by_query[3]:
            results = _run(loaded_store, 3, params)
            for row in results:
                x = y = 0
                for message in graph["messages_by_author"][row.person_id]:
                    if not (params.start_date <= message.creation_date
                            < params.end_date):
                        continue
                    if message.country_id == params.country_x_id:
                        x += 1
                    elif message.country_id == params.country_y_id:
                        y += 1
                assert (x, y) == (row.x_count, row.y_count)
                assert x > 0 and y > 0

    def test_home_country_excluded(self, loaded_store, graph,
                                   curated_params):
        for params in curated_params.by_query[3]:
            for row in _run(loaded_store, 3, params):
                home = graph["persons"][row.person_id].country_id
                assert home not in (params.country_x_id,
                                    params.country_y_id)


class TestQ4:
    def test_new_topics_only(self, loaded_store, graph, network,
                             curated_params):
        tag_names = {t.id: t.name for t in network.tags}
        for params in curated_params.by_query[4]:
            results = _run(loaded_store, 4, params)
            before = set()
            for friend in graph["neighbors"][params.person_id]:
                for message in graph["messages_by_author"][friend]:
                    if message.creation_date < params.start_date \
                            and hasattr(message, "forum_id"):
                        before |= {tag_names[t]
                                   for t in message.tag_ids}
            for row in results:
                assert row.tag_name not in before
                assert row.post_count > 0


class TestQ5:
    def test_forums_joined_after_date(self, loaded_store, network,
                                      graph, curated_params):
        joined = defaultdict(list)
        for membership in network.memberships:
            joined[membership.forum_id].append(membership)
        for params in curated_params.by_query[5]:
            circle = _two_hop(graph, params.person_id)
            for row in _run(loaded_store, 5, params):
                assert any(m.person_id in circle
                           and m.joined_date > params.min_date
                           for m in joined[row.forum_id])

    def test_sorted_by_post_count(self, loaded_store, curated_params):
        for params in curated_params.by_query[5]:
            results = _run(loaded_store, 5, params)
            keys = [(-r.post_count, r.forum_id) for r in results]
            assert keys == sorted(keys)


class TestQ6:
    def test_counts_match_reference(self, loaded_store, graph, network,
                                    curated_params):
        tag_names = {t.id: t.name for t in network.tags}
        for params in curated_params.by_query[6]:
            expected = defaultdict(int)
            for person in _two_hop(graph, params.person_id):
                for message in graph["messages_by_author"][person]:
                    if not hasattr(message, "forum_id"):
                        continue  # posts only
                    tags = set(message.tag_ids)
                    if params.tag_id in tags:
                        for tag in tags - {params.tag_id}:
                            expected[tag_names[tag]] += 1
            got = {r.tag_name: r.post_count
                   for r in _run(loaded_store, 6, params)}
            for name, count in got.items():
                assert expected[name] == count


class TestQ7:
    def test_latest_like_per_liker(self, loaded_store, network,
                                   curated_params):
        for params in curated_params.by_query[7]:
            results = _run(loaded_store, 7, params)
            likers = [r.liker_id for r in results]
            assert len(likers) == len(set(likers))
            dates = [r.like_date for r in results]
            assert dates == sorted(dates, reverse=True)

    def test_latency_consistent(self, loaded_store, network,
                                curated_params):
        messages = {m.id: m for m in network.messages()}
        for params in curated_params.by_query[7]:
            for row in _run(loaded_store, 7, params):
                message = messages[row.message_id]
                minutes = (row.like_date - message.creation_date) \
                    // 60000
                assert row.latency_minutes == minutes

    def test_outside_flag(self, loaded_store, graph, curated_params):
        for params in curated_params.by_query[7]:
            friends = graph["neighbors"][params.person_id]
            for row in _run(loaded_store, 7, params):
                assert row.is_outside_connections \
                    == (row.liker_id not in friends)


class TestQ8:
    def test_replies_to_own_messages(self, loaded_store, network,
                                     curated_params):
        my_messages = defaultdict(set)
        for message in network.messages():
            my_messages[message.author_id].add(message.id)
        comments = network.comment_by_id()
        for params in curated_params.by_query[8]:
            for row in _run(loaded_store, 8, params):
                comment = comments[row.comment_id]
                assert comment.reply_of_id \
                    in my_messages[params.person_id]

    def test_newest_first(self, loaded_store, curated_params):
        for params in curated_params.by_query[8]:
            dates = [r.creation_date
                     for r in _run(loaded_store, 8, params)]
            assert dates == sorted(dates, reverse=True)
            assert len(dates) <= q8.LIMIT


class TestQ9:
    def test_matches_reference(self, loaded_store, graph,
                               curated_params):
        for params in curated_params.by_query[9]:
            expected = []
            for person in _two_hop(graph, params.person_id):
                for message in graph["messages_by_author"][person]:
                    if message.creation_date < params.max_date:
                        expected.append((-message.creation_date,
                                         message.id))
            expected.sort()
            got = [(-r.creation_date, r.message_id)
                   for r in _run(loaded_store, 9, params)]
            assert got == expected[:q9.LIMIT]


class TestQ10:
    def test_candidates_are_friends_of_friends(self, loaded_store,
                                               graph, curated_params):
        for params in curated_params.by_query[10]:
            friends = graph["neighbors"][params.person_id]
            fof = set()
            for friend in friends:
                fof |= graph["neighbors"][friend]
            for row in _run(loaded_store, 10, params):
                assert row.person_id in fof
                assert row.person_id not in friends
                assert row.person_id != params.person_id

    def test_sorted_by_similarity(self, loaded_store, curated_params):
        for params in curated_params.by_query[10]:
            keys = [(-r.similarity, r.person_id)
                    for r in _run(loaded_store, 10, params)]
            assert keys == sorted(keys)


class TestQ11:
    def test_work_from_before_cutoff(self, loaded_store,
                                     curated_params):
        for params in curated_params.by_query[11]:
            for row in _run(loaded_store, 11, params):
                assert row.work_from < params.max_work_from

    def test_organisation_in_country(self, loaded_store, network,
                                     curated_params):
        orgs = {o.name: o for o in network.organisations}
        for params in curated_params.by_query[11]:
            for row in _run(loaded_store, 11, params):
                assert orgs[row.organisation_name].location_id \
                    == params.country_id


class TestQ12:
    def test_reply_counts_positive(self, loaded_store, curated_params):
        for params in curated_params.by_query[12]:
            for row in _run(loaded_store, 12, params):
                assert row.reply_count > 0
                assert row.tag_names

    def test_experts_are_friends(self, loaded_store, graph,
                                 curated_params):
        for params in curated_params.by_query[12]:
            friends = graph["neighbors"][params.person_id]
            for row in _run(loaded_store, 12, params):
                assert row.person_id in friends


class TestQ13:
    def test_matches_bfs_reference(self, loaded_store, graph,
                                   curated_params):
        from collections import deque

        for params in curated_params.by_query[13]:
            source = params.person_x_id
            target = params.person_y_id
            distances = {source: 0}
            queue = deque([source])
            while queue:
                current = queue.popleft()
                for neighbor in graph["neighbors"][current]:
                    if neighbor not in distances:
                        distances[neighbor] = distances[current] + 1
                        queue.append(neighbor)
            expected = distances.get(target, -1)
            got = _run(loaded_store, 13, params)[0].length
            assert got == expected

    def test_same_person_zero(self, loaded_store, network):
        person = network.persons[0]
        result = _run(loaded_store, 13,
                      q13.Q13Params(person.id, person.id))
        assert result[0].length == 0


class TestQ14:
    def test_paths_are_shortest_and_valid(self, loaded_store, graph,
                                          curated_params):
        for params in curated_params.by_query[14]:
            results = _run(loaded_store, 14, params)
            length_result = _run(
                loaded_store, 13,
                q13.Q13Params(params.person_x_id, params.person_y_id))
            shortest = length_result[0].length
            if shortest == -1:
                assert results == []
                continue
            for row in results:
                assert len(row.path) == shortest + 1
                assert row.path[0] == params.person_x_id
                assert row.path[-1] == params.person_y_id
                for a, b in zip(row.path, row.path[1:]):
                    assert b in graph["neighbors"][a]

    def test_weights_descending(self, loaded_store, curated_params):
        for params in curated_params.by_query[14]:
            weights = [r.weight
                       for r in _run(loaded_store, 14, params)]
            assert weights == sorted(weights, reverse=True)

    def test_paths_distinct(self, loaded_store, curated_params):
        for params in curated_params.by_query[14]:
            paths = [r.path for r in _run(loaded_store, 14, params)]
            assert len(paths) == len(set(paths))
