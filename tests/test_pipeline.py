"""Tests for the DATAGEN pipeline: determinism and timing projection."""

from __future__ import annotations

import pytest

from repro.datagen import DatagenConfig, generate
from repro.datagen.pipeline import DatagenPipeline, StageTiming, \
    DatagenTimings
from repro.schema import validate_network


class TestDeterminism:
    def test_same_config_same_network(self):
        a = generate(DatagenConfig(num_persons=80, seed=17))
        b = generate(DatagenConfig(num_persons=80, seed=17))
        assert a.persons == b.persons
        assert a.knows == b.knows
        assert a.forums == b.forums
        assert a.posts == b.posts
        assert a.comments == b.comments
        assert a.likes == b.likes
        assert a.memberships == b.memberships

    def test_serial_person_stage_interleaves_chunks_round_robin(
            self, monkeypatch):
        """The serial fallback must actually process chunks round-robin
        (one serial from each ``num_workers`` chunk per round), so the
        worker-count invariance test exercises a genuinely reordered
        merge — not just a relabelled sequential scan."""
        from repro.datagen import pipeline as pipeline_module
        from repro.datagen.dictionaries import Dictionaries
        from repro.datagen.universe import build_universe
        from repro.ids import serial_of

        calls = []
        real = pipeline_module.generate_person

        def recording(serial, config, dictionaries, universe):
            calls.append(serial)
            return real(serial, config, dictionaries, universe)

        monkeypatch.setattr(pipeline_module, "generate_person", recording)
        config = DatagenConfig(num_persons=10, seed=17, num_workers=3)
        dictionaries = Dictionaries(config.seed)
        universe = build_universe(dictionaries)
        persons = DatagenPipeline(config)._generate_persons(
            dictionaries, universe)
        # Chunks of ceil(10/3)=4: [0..3], [4..7], [8..9]; round-robin
        # takes one serial from each chunk per round.
        assert calls == [0, 4, 8, 1, 5, 9, 2, 6, 3, 7]
        # ... and the merge restores serial order.
        assert [serial_of(p.id) for p in persons] == list(range(10))

    def test_worker_count_does_not_change_output(self):
        """The paper's headline determinism property: output identical
        "regardless the Hadoop configuration parameters"."""
        one = generate(DatagenConfig(num_persons=80, seed=17,
                                     num_workers=1))
        four = generate(DatagenConfig(num_persons=80, seed=17,
                                      num_workers=4))
        eleven = generate(DatagenConfig(num_persons=80, seed=17,
                                        num_workers=11))
        assert one.persons == four.persons == eleven.persons
        assert one.knows == four.knows == eleven.knows
        assert one.posts == four.posts == eleven.posts
        assert one.likes == four.likes == eleven.likes

    def test_owner_processing_order_does_not_change_activity(self):
        """Activity generation is keyed per owner, so processing owners
        in any order yields the same forums/messages."""
        from repro.datagen.activity import ActivityGenerator
        from repro.datagen.dictionaries import Dictionaries
        from repro.datagen.events import EventCalendar
        from repro.datagen.friendships import generate_friendships
        from repro.datagen.persons import generate_persons
        from repro.datagen.pipeline import _adjacency
        from repro.datagen.universe import build_universe

        config = DatagenConfig(num_persons=60, seed=23)
        dictionaries = Dictionaries(config.seed)
        universe = build_universe(dictionaries)
        persons = generate_persons(config, dictionaries, universe)
        knows = generate_friendships(config, universe, persons)
        adjacency = _adjacency(persons, knows)
        calendar = EventCalendar.generate(config, universe)

        forward = ActivityGenerator(config, dictionaries, universe,
                                    calendar).generate(persons, adjacency)
        backward = ActivityGenerator(
            config, dictionaries, universe, calendar
        ).generate(list(reversed(persons)), adjacency)
        assert forward.forums == backward.forums
        assert forward.posts == backward.posts
        assert forward.comments == backward.comments
        assert forward.likes == backward.likes
        assert forward.memberships == backward.memberships

    def test_seed_changes_network(self):
        a = generate(DatagenConfig(num_persons=60, seed=1))
        b = generate(DatagenConfig(num_persons=60, seed=2))
        assert a.persons != b.persons


class TestIntegrity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_generated_networks_validate(self, seed):
        network = generate(DatagenConfig(num_persons=70, seed=seed))
        report = validate_network(network)
        assert report.ok, report.violations[:10]

    def test_session_network_validates(self, network):
        report = validate_network(network)
        assert report.ok, report.violations[:10]


class TestTimings:
    def test_stages_recorded(self):
        pipeline = DatagenPipeline(DatagenConfig(num_persons=40, seed=1))
        pipeline.run()
        names = [stage.name for stage in pipeline.timings.stages]
        assert names == ["universe", "persons", "friendships",
                         "activity"]
        assert pipeline.timings.total_seconds > 0

    def test_amdahl_projection(self):
        timings = DatagenTimings([
            StageTiming("a", 10.0, parallel_fraction=1.0),
            StageTiming("b", 10.0, parallel_fraction=0.0),
        ])
        assert timings.projected_seconds(1) == pytest.approx(20.0)
        assert timings.projected_seconds(10) == pytest.approx(11.0)

    def test_projection_monotone(self):
        pipeline = DatagenPipeline(DatagenConfig(num_persons=40, seed=1))
        pipeline.run()
        t1 = pipeline.timings.projected_seconds(1)
        t3 = pipeline.timings.projected_seconds(3)
        t10 = pipeline.timings.projected_seconds(10)
        assert t1 >= t3 >= t10

    def test_projection_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            DatagenTimings([]).projected_seconds(0)
