"""Tests for person generation and its attribute correlations."""

from __future__ import annotations

from collections import Counter

from repro.datagen.config import DatagenConfig
from repro.datagen.dictionaries import FIRST_NAMES, Dictionaries
from repro.datagen.persons import generate_person, generate_persons
from repro.datagen.universe import build_universe
from repro.ids import EntityKind, is_kind, serial_of
from repro.schema.entities import OrganisationType


def _setup(num_persons=400, seed=11):
    config = DatagenConfig(num_persons=num_persons, seed=seed)
    dictionaries = Dictionaries(config.seed)
    universe = build_universe(dictionaries)
    return config, dictionaries, universe


class TestDeterminism:
    def test_pure_function_of_serial(self):
        config, dictionaries, universe = _setup()
        a = generate_person(5, config, dictionaries, universe)
        b = generate_person(5, config, dictionaries, universe)
        assert a == b

    def test_different_serials_differ(self):
        config, dictionaries, universe = _setup()
        a = generate_person(5, config, dictionaries, universe)
        b = generate_person(6, config, dictionaries, universe)
        assert a != b

    def test_different_seed_differs(self):
        config_a, dict_a, universe_a = _setup(seed=1)
        config_b, dict_b, universe_b = _setup(seed=2)
        a = generate_person(5, config_a, dict_a, universe_a)
        b = generate_person(5, config_b, dict_b, universe_b)
        assert (a.first_name, a.city_id, a.birthday) \
            != (b.first_name, b.city_id, b.birthday)


class TestInvariants:
    def test_ids_are_person_kind_serials(self):
        config, dictionaries, universe = _setup(num_persons=50)
        persons = generate_persons(config, dictionaries, universe)
        for serial, person in enumerate(persons):
            assert is_kind(person.id, EntityKind.PERSON)
            assert serial_of(person.id) == serial

    def test_created_after_birth(self):
        config, dictionaries, universe = _setup(num_persons=100)
        for person in generate_persons(config, dictionaries, universe):
            assert person.creation_date > person.birthday

    def test_created_inside_window(self):
        config, dictionaries, universe = _setup(num_persons=100)
        for person in generate_persons(config, dictionaries, universe):
            assert config.window.contains(person.creation_date)

    def test_city_belongs_to_country(self):
        config, dictionaries, universe = _setup(num_persons=100)
        place_by_id = {p.id: p for p in universe.places}
        for person in generate_persons(config, dictionaries, universe):
            city = place_by_id[person.city_id]
            assert city.part_of == person.country_id

    def test_everyone_has_email_and_interest_cap(self):
        config, dictionaries, universe = _setup(num_persons=100)
        for person in generate_persons(config, dictionaries, universe):
            assert person.emails
            assert len(person.interests) <= config.max_interests
            assert len(set(person.interests)) == len(person.interests)


class TestCorrelations:
    def test_local_names_dominate(self):
        """Table 1: location determines the first-name ranking — most
        Chinese persons carry Chinese-dictionary names (but not all)."""
        config, dictionaries, universe = _setup(num_persons=1200)
        persons = generate_persons(config, dictionaries, universe)
        china = next(c for c in universe.countries
                     if c.spec.name == "China")
        chinese_names = (set(FIRST_NAMES["chinese"]["male"])
                         | set(FIRST_NAMES["chinese"]["female"]))
        chinese_persons = [p for p in persons
                           if p.country_id == china.country_place_id]
        assert len(chinese_persons) > 20
        local = sum(1 for p in chinese_persons
                    if p.first_name in chinese_names)
        assert local / len(chinese_persons) > 0.6

    def test_university_mostly_local(self):
        config, dictionaries, universe = _setup(num_persons=800)
        persons = generate_persons(config, dictionaries, universe)
        org_by_id = universe.organisation_by_id
        local = foreign = 0
        for person in persons:
            if not person.study_at:
                continue
            university = org_by_id[person.study_at[0].organisation_id]
            assert university.type is OrganisationType.UNIVERSITY
            city_country = universe.country_of_city.get(
                university.location_id)
            person_country = universe.country_of_city[person.city_id]
            if city_country == person_country:
                local += 1
            else:
                foreign += 1
        assert local > foreign * 3

    def test_company_in_home_country(self):
        config, dictionaries, universe = _setup(num_persons=300)
        persons = generate_persons(config, dictionaries, universe)
        org_by_id = universe.organisation_by_id
        for person in persons:
            for work in person.work_at:
                company = org_by_id[work.organisation_id]
                assert company.type is OrganisationType.COMPANY
                assert company.location_id == person.country_id

    def test_employer_email_domain(self):
        """Table 1: person.employer → person.email (@company)."""
        config, dictionaries, universe = _setup(num_persons=300)
        persons = generate_persons(config, dictionaries, universe)
        org_by_id = universe.organisation_by_id
        checked = 0
        for person in persons:
            if not person.work_at:
                continue
            employer = org_by_id[person.work_at[0].organisation_id]
            slug = "".join(ch for ch in employer.name.lower()
                           if ch.isascii() and ch.isalnum())
            assert any(slug in email for email in person.emails), \
                (person.emails, employer.name)
            checked += 1
        assert checked > 100

    def test_languages_include_country_language(self):
        config, dictionaries, universe = _setup(num_persons=200)
        persons = generate_persons(config, dictionaries, universe)
        for person in persons:
            country = universe.countries[
                universe.country_of_city[person.city_id]]
            assert country.spec.languages[0] in person.languages

    def test_name_distribution_skewed(self):
        config, dictionaries, universe = _setup(num_persons=1000)
        persons = generate_persons(config, dictionaries, universe)
        counts = Counter(p.first_name for p in persons)
        top = counts.most_common(1)[0][1]
        assert top >= 3 * (sum(counts.values()) / len(counts))
