"""Failure injection: the driver's transient-error retry policy."""

from __future__ import annotations

import threading

import pytest

import time

from repro.driver import (
    CircuitOpenError,
    DegradePolicy,
    DriverConfig,
    RetryPolicy,
    WorkloadDriver,
)
from repro.errors import FatalSUTError
from repro.rng import RandomStream


class FlakyConnector:
    """Fails a configurable fraction of first attempts, then succeeds."""

    def __init__(self, failure_rate: float, permanent: bool = False,
                 seed: int = 0) -> None:
        self.failure_rate = failure_rate
        self.permanent = permanent
        self._stream = RandomStream.for_key(seed, "flaky")
        self._lock = threading.Lock()
        self._failed_once: set[int] = set()
        self.executions = 0
        self.failures_injected = 0

    def execute(self, operation) -> None:
        with self._lock:
            key = id(operation)
            should_fail = self._stream.random() < self.failure_rate
            if should_fail and (self.permanent
                                or key not in self._failed_once):
                self._failed_once.add(key)
                self.failures_injected += 1
                raise ConnectionError("injected transient failure")
            self.executions += 1


class TestRetryPolicy:
    def test_transient_failures_absorbed(self, split):
        connector = FlakyConnector(failure_rate=0.2, seed=3)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=4, max_retries=3, retry_backoff=0.0))
        report = driver.run(split.updates)
        assert connector.failures_injected > 0
        assert report.retries == connector.failures_injected
        assert report.metrics.operations == len(split.updates)
        assert connector.executions == len(split.updates)

    def test_no_retries_by_default(self, split):
        connector = FlakyConnector(failure_rate=0.5, seed=3)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=2))
        with pytest.raises(ConnectionError):
            driver.run(split.updates)

    def test_permanent_failure_eventually_raises(self, split):
        connector = FlakyConnector(failure_rate=1.0, permanent=True)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=2, max_retries=2, retry_backoff=0.0))
        with pytest.raises(ConnectionError):
            driver.run(split.updates[:10])

    def test_retried_dependency_still_completes(self, split):
        """A retried dependency op must still advance T_GC (no IT
        leak): dependents behind it execute normally."""
        connector = FlakyConnector(failure_rate=0.3, seed=9)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=4, max_retries=5, retry_backoff=0.0,
            dependency_wait_timeout=30))
        report = driver.run(split.updates)
        assert report.dependency_timeouts == 0
        assert report.metrics.operations == len(split.updates)

    def test_retries_accounted_by_class(self, split):
        connector = FlakyConnector(failure_rate=0.2, seed=3)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=4,
            resilience=RetryPolicy(max_retries=3, base_backoff=0.0,
                                   max_backoff=0.0)))
        report = driver.run(split.updates)
        assert report.retries > 0
        assert sum(report.retries_by_class.values()) == report.retries
        assert all(name.isupper() or "_" in name
                   for name in report.retries_by_class)


class TargetedConnector:
    """Raises a chosen exception every attempt on selected ops."""

    def __init__(self, operations, bad_indices, exc_factory) -> None:
        self._bad = {id(operations[i]) for i in bad_indices}
        self._exc_factory = exc_factory
        self._lock = threading.Lock()
        self.attempts_on_bad = 0
        self.executions = 0

    def execute(self, operation) -> None:
        with self._lock:
            if id(operation) in self._bad:
                self.attempts_on_bad += 1
                raise self._exc_factory()
            self.executions += 1


class TestFatalClassification:
    def test_fatal_never_retried(self, small_split):
        ops = small_split.updates
        connector = TargetedConnector(
            ops, [4], lambda: FatalSUTError("corrupt page"))
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=2, dependency_wait_timeout=10,
            resilience=RetryPolicy(max_retries=8, base_backoff=0.0,
                                   max_backoff=0.0)))
        with pytest.raises(FatalSUTError):
            driver.run(ops)
        assert connector.attempts_on_bad == 1  # single attempt, no retry

    def test_plain_exception_never_retried(self, small_split):
        ops = small_split.updates
        connector = TargetedConnector(ops, [4],
                                      lambda: ValueError("bug"))
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=2, dependency_wait_timeout=10,
            resilience=RetryPolicy(max_retries=8, base_backoff=0.0,
                                   max_backoff=0.0)))
        with pytest.raises(ValueError):
            driver.run(ops)
        assert connector.attempts_on_bad == 1


class TestGracefulDegradation:
    DEGRADE = RetryPolicy(max_retries=2, base_backoff=0.0,
                          max_backoff=0.0,
                          on_exhaustion=DegradePolicy.DEGRADE)

    def test_degrade_finishes_and_records_skips(self, small_split):
        ops = small_split.updates
        bad = [3, 17, 40]
        connector = TargetedConnector(
            ops, bad, lambda: ConnectionError("down"))
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=2, dependency_wait_timeout=10,
            resilience=self.DEGRADE))
        report = driver.run(ops)
        assert report.skipped == len(bad)
        assert sum(report.skipped_by_class.values()) == len(bad)
        assert report.metrics.operations == len(ops) - len(bad)
        assert connector.executions == len(ops) - len(bad)

    def test_skipped_dependency_still_advances_tgc(self, small_split):
        """Giving up on a dependency op must still lds.complete() it,
        or every dependent behind it wedges until timeout."""
        ops = small_split.updates
        dep_index = next(i for i, op in enumerate(ops)
                         if op.is_dependency)
        connector = TargetedConnector(
            ops, [dep_index], lambda: ConnectionError("down"))
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=4, dependency_wait_timeout=15,
            resilience=self.DEGRADE))
        report = driver.run(ops)
        assert report.skipped == 1
        assert report.dependency_timeouts == 0

    def test_circuit_breaker_bounds_degradation(self, small_split):
        ops = small_split.updates
        connector = TargetedConnector(
            ops, range(len(ops)), lambda: ConnectionError("down"))
        policy = RetryPolicy(max_retries=0, base_backoff=0.0,
                             max_backoff=0.0,
                             on_exhaustion=DegradePolicy.DEGRADE,
                             failure_budget=5)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=2, dependency_wait_timeout=10,
            resilience=policy))
        with pytest.raises(CircuitOpenError):
            driver.run(ops)

    def test_breaker_trips_counted_in_report(self, small_split):
        ops = small_split.updates
        connector = TargetedConnector(
            ops, range(len(ops)), lambda: ConnectionError("down"))
        policy = RetryPolicy(max_retries=0, base_backoff=0.0,
                             max_backoff=0.0,
                             on_exhaustion=DegradePolicy.DEGRADE,
                             failure_budget=5)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=1, dependency_wait_timeout=10,
            resilience=policy))
        with pytest.raises(CircuitOpenError) as excinfo:
            driver.run(ops)
        assert isinstance(excinfo.value.__cause__, ConnectionError)


class TestWatchdogTimeouts:
    def test_slow_attempt_times_out_and_retries(self, small_split):
        ops = small_split.updates[:30]

        class SlowOnce:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self._slowed: set[int] = set()
                self.executions = 0

            def execute(self, operation) -> None:
                with self._lock:
                    first = id(operation) not in self._slowed
                    if first:
                        self._slowed.add(id(operation))
                if first and (id(operation) == id(ops[2])):
                    time.sleep(5.0)  # abandoned by the watchdog
                    return
                with self._lock:
                    self.executions += 1

        connector = SlowOnce()
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=2, dependency_wait_timeout=10,
            resilience=RetryPolicy(max_retries=3, base_backoff=0.0,
                                   max_backoff=0.0,
                                   attempt_timeout=0.2)))
        report = driver.run(ops)
        assert report.op_timeouts >= 1
        assert report.retries >= 1
        assert report.metrics.operations == len(ops)


class TestPartitionFailureAggregation:
    def test_all_partition_failures_surface(self, small_split):
        """Every failed partition is reported, not just the first."""
        from repro.driver.scheduler import partition_updates

        ops = small_split.updates
        config = DriverConfig(num_partitions=4,
                              dependency_wait_timeout=10)
        index_of = {id(op): i for i, op in enumerate(ops)}
        parts = partition_updates(ops, config.num_partitions)
        # Fail the first op of each of three distinct partitions.
        bad = [index_of[id(part[0])] for part in parts if part][:3]
        assert len(bad) == 3

        connector = TargetedConnector(ops, bad,
                                      lambda: ValueError("bug"))
        driver = WorkloadDriver(connector, config)
        with pytest.raises(ValueError) as excinfo:
            driver.run(ops)
        failures = excinfo.value.partition_failures
        assert len(failures) == len(bad)
        assert all(isinstance(e, ValueError) for _, e in failures)
        assert len({idx for idx, _ in failures}) == len(bad)
