"""Failure injection: the driver's transient-error retry policy."""

from __future__ import annotations

import threading

import pytest

from repro.driver import DriverConfig, WorkloadDriver
from repro.rng import RandomStream


class FlakyConnector:
    """Fails a configurable fraction of first attempts, then succeeds."""

    def __init__(self, failure_rate: float, permanent: bool = False,
                 seed: int = 0) -> None:
        self.failure_rate = failure_rate
        self.permanent = permanent
        self._stream = RandomStream.for_key(seed, "flaky")
        self._lock = threading.Lock()
        self._failed_once: set[int] = set()
        self.executions = 0
        self.failures_injected = 0

    def execute(self, operation) -> None:
        with self._lock:
            key = id(operation)
            should_fail = self._stream.random() < self.failure_rate
            if should_fail and (self.permanent
                                or key not in self._failed_once):
                self._failed_once.add(key)
                self.failures_injected += 1
                raise ConnectionError("injected transient failure")
            self.executions += 1


class TestRetryPolicy:
    def test_transient_failures_absorbed(self, split):
        connector = FlakyConnector(failure_rate=0.2, seed=3)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=4, max_retries=3, retry_backoff=0.0))
        report = driver.run(split.updates)
        assert connector.failures_injected > 0
        assert report.retries == connector.failures_injected
        assert report.metrics.operations == len(split.updates)
        assert connector.executions == len(split.updates)

    def test_no_retries_by_default(self, split):
        connector = FlakyConnector(failure_rate=0.5, seed=3)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=2))
        with pytest.raises(ConnectionError):
            driver.run(split.updates)

    def test_permanent_failure_eventually_raises(self, split):
        connector = FlakyConnector(failure_rate=1.0, permanent=True)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=2, max_retries=2, retry_backoff=0.0))
        with pytest.raises(ConnectionError):
            driver.run(split.updates[:10])

    def test_retried_dependency_still_completes(self, split):
        """A retried dependency op must still advance T_GC (no IT
        leak): dependents behind it execute normally."""
        connector = FlakyConnector(failure_rate=0.3, seed=9)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=4, max_retries=5, retry_backoff=0.0,
            dependency_wait_timeout=30))
        report = driver.run(split.updates)
        assert report.dependency_timeouts == 0
        assert report.metrics.operations == len(split.updates)
