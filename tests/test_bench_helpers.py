"""Tests for the bench harness helpers."""

from __future__ import annotations

from repro.bench import (
    ascii_histogram,
    ascii_series,
    format_table,
    median_seconds,
)


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(["name", "count"],
                            [["alpha", 10], ["b", 20000]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "20000" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 3")
        assert text.splitlines()[0] == "Table 3"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text


class TestAsciiPlots:
    def test_histogram_bars_scale(self):
        text = ascii_histogram([("a", 10), ("b", 5)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_histogram_empty(self):
        assert "(empty)" in ascii_histogram([])

    def test_histogram_title(self):
        text = ascii_histogram([("a", 1)], title="Figure 3a")
        assert text.splitlines()[0] == "Figure 3a"

    def test_series_height(self):
        text = ascii_series([1.0, 5.0, 3.0], height=5)
        lines = [l for l in text.splitlines() if "|" in l]
        assert len(lines) == 5

    def test_series_empty(self):
        assert "(empty)" in ascii_series([])


class TestTiming:
    def test_median_positive(self):
        assert median_seconds(lambda: sum(range(100)),
                              repetitions=3, warmup=0) >= 0

    def test_runs_expected_times(self):
        calls = []
        median_seconds(lambda: calls.append(1), repetitions=3,
                       warmup=2)
        assert len(calls) == 5
