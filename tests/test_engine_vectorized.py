"""Vectorized (batch-at-a-time) execution: chunks, predicates, modes.

The engine runs every plan in two modes over the same operator tree —
``tuple`` (volcano, row at a time) and ``vectorized`` (fixed-size chunks
of parallel column arrays).  These tests pin the chunk/predicate
building blocks and assert the two modes are observationally identical
on every complex read.
"""

from __future__ import annotations

import pytest

from repro.engine import snb_queries
from repro.engine.chunks import (
    CHUNK_SIZE,
    TUPLE,
    VECTORIZED,
    Chunk,
    engine_mode,
    execution_mode,
    set_execution_mode,
)
from repro.engine.predicates import All, Compare, InSet, Where
from repro.errors import EngineError


class TestChunk:
    def test_from_rows_round_trip(self):
        rows = [(1, "a"), (2, "b"), (3, "c")]
        chunk = Chunk.from_rows(rows, width=2)
        assert len(chunk) == 3
        assert chunk.columns[0] == (1, 2, 3)
        assert list(chunk.rows()) == rows

    def test_empty_chunk_keeps_width(self):
        chunk = Chunk.from_rows([], width=3)
        assert len(chunk) == 0
        assert len(chunk.columns) == 3

    def test_gather(self):
        chunk = Chunk.from_rows([(1, "a"), (2, "b"), (3, "c")], width=2)
        picked = chunk.gather([2, 0])
        assert list(picked.rows()) == [(3, "c"), (1, "a")]


class TestExecutionMode:
    def test_default_follows_environment(self):
        import os

        expected = os.environ.get("REPRO_ENGINE_MODE", VECTORIZED)
        assert execution_mode() == expected

    def test_context_manager_restores(self):
        before = execution_mode()
        other = TUPLE if before == VECTORIZED else VECTORIZED
        with engine_mode(other):
            assert execution_mode() == other
        assert execution_mode() == before

    def test_unknown_mode_rejected(self):
        with pytest.raises(EngineError):
            set_execution_mode("columnar-ish")


class TestPredicates:
    COLUMNS = [[1, 5, 9, 5], ["x", "y", "x", "z"]]
    SCHEMA_POSITIONS = {"num": 0, "tag": 1}

    def _resolved(self, predicate):
        class FakeSchema:
            def position(self, name):
                return TestPredicates.SCHEMA_POSITIONS[name]

        predicate.resolve(FakeSchema())
        return predicate

    @pytest.mark.parametrize("predicate,expected", [
        (Compare("num", "lt", 6), [0, 1, 3]),
        (Compare("num", "eq", 5), [1, 3]),
        (InSet("tag", {"x"}), [0, 2]),
        (InSet("tag", {"x"}, negate=True), [1, 3]),
        (Where("num", lambda v: v % 2 == 1), [0, 1, 2, 3]),
        (All(Compare("num", "ge", 5), InSet("tag", {"y", "z"})), [1, 3]),
    ])
    def test_keep_indices_matches_row_fn(self, predicate, expected):
        resolved = self._resolved(predicate)
        assert resolved.keep_indices(self.COLUMNS) == expected
        row_fn = resolved.row_fn()
        rows = list(zip(*self.COLUMNS))
        assert [i for i, row in enumerate(rows) if row_fn(row)] \
            == expected


class TestTableCSR:
    def test_matches_index_probe_order(self, loaded_catalog):
        knows = loaded_catalog.table("knows")
        csr = knows.csr("person1_id", "person2_id")
        sources = {row[0] for row in knows.rows[:50]}
        for person in sources:
            assert list(csr.neighbors(person)) \
                == [row[1] for row in knows.probe("person1_id", person)]

    def test_epoch_invalidation_on_insert(self):
        from repro.engine.rows import Schema, Table

        table = Table("edges", Schema(("src", "dst")))
        table.create_hash_index("src")
        table.insert((1, 2))
        first = table.csr("src", "dst")
        assert table.csr("src", "dst") is first  # cached
        table.insert((1, 3))
        rebuilt = table.csr("src", "dst")
        assert rebuilt is not first
        assert list(rebuilt.neighbors(1)) == [2, 3]


@pytest.mark.parametrize("query_id", list(range(1, 15)))
def test_modes_agree_on_complex_reads(query_id, loaded_catalog,
                                      curated_params):
    """Tuple and vectorized execution return identical results."""
    run = snb_queries.ENGINE_COMPLEX[query_id]
    for params in curated_params.by_query[query_id]:
        with engine_mode(VECTORIZED):
            vectorized = run(loaded_catalog, params)
        with engine_mode(TUPLE):
            volcano = run(loaded_catalog, params)
        assert vectorized == volcano


def test_execute_columns_matches_execute(loaded_catalog, curated_params):
    params = curated_params.by_query[9][0]
    for mode in (VECTORIZED, TUPLE):
        with engine_mode(mode):
            pipeline = snb_queries.q9_plan(loaded_catalog, params)
            columns = pipeline.execute_columns()
            pipeline = snb_queries.q9_plan(loaded_catalog, params)
            rows = pipeline.execute()
        width = len(pipeline.root.schema)
        assert len(columns) == width
        transposed = [tuple(column[i] for column in columns)
                      for i in range(len(columns[0]))] if rows else []
        assert transposed == [tuple(row) for row in rows]


def test_chunks_are_bounded(loaded_catalog, curated_params):
    params = curated_params.by_query[9][0]
    with engine_mode(VECTORIZED):
        pipeline = snb_queries.q9_plan(loaded_catalog, params)
        sizes = [len(chunk) for chunk in pipeline.root.chunks()]
    assert sizes, "pipeline produced no chunks"
    assert all(size <= CHUNK_SIZE for size in sizes)
