"""Tests for the bulk/update split and update-stream metadata."""

from __future__ import annotations

import pytest

from repro.datagen.update_stream import (
    DEPENDENCY_KINDS,
    DEPENDENT_KINDS,
    UpdateKind,
    partition_updates,
    split_network,
)
from repro.errors import DatagenError
from repro.schema import validate_network
from repro.sim_time import bulk_load_cut


class TestSplit:
    def test_cut_defaults_to_32_of_36(self, split):
        assert split.cut == bulk_load_cut()

    def test_bulk_strictly_before_cut(self, split):
        cut = split.cut
        for person in split.bulk.persons:
            assert person.creation_date < cut
        for edge in split.bulk.knows:
            assert edge.creation_date < cut
        for post in split.bulk.posts:
            assert post.creation_date < cut
        for like in split.bulk.likes:
            assert like.creation_date < cut
        for membership in split.bulk.memberships:
            assert membership.joined_date < cut

    def test_updates_at_or_after_cut(self, split):
        for op in split.updates:
            assert op.due_time >= split.cut

    def test_bulk_network_is_consistent(self, split):
        report = validate_network(split.bulk)
        assert report.ok, report.violations[:10]

    def test_nothing_lost(self, network, split):
        total = (len(split.bulk.persons)
                 + split.update_counts()[UpdateKind.ADD_PERSON])
        assert total == len(network.persons)
        total_likes = (len(split.bulk.likes)
                       + split.update_counts()[UpdateKind.ADD_LIKE_POST]
                       + split.update_counts()[
                           UpdateKind.ADD_LIKE_COMMENT])
        assert total_likes == len(network.likes)

    def test_update_share_matches_growth_profile(self, network, split):
        """Updates cover the last 4 of 36 months.  Activity grows with
        network age (as in the real LDBC streams, where the SF10 update
        stream holds ~40% of all forum operations), so the share is far
        above the naive 1/9 but must stay below half."""
        fraction = len(split.updates) / max(
            len(network.persons) + len(network.knows)
            + len(network.forums) + len(network.memberships)
            + len(network.posts) + len(network.comments)
            + len(network.likes), 1)
        assert 0.05 < fraction < 0.55

    def test_updates_sorted_by_due_time(self, split):
        dues = [op.due_time for op in split.updates]
        assert dues == sorted(dues)

    def test_all_eight_kinds_present(self, split):
        counts = split.update_counts()
        for kind in UpdateKind:
            assert counts[kind] > 0, kind


class TestDependencyMetadata:
    def test_dep_strictly_before_due(self, split):
        for op in split.updates:
            if op.is_dependent:
                assert op.depends_on_time < op.due_time, op

    def test_global_dep_bounded_by_dep(self, split):
        for op in split.updates:
            assert op.global_depends_on_time <= op.depends_on_time

    def test_classification_matches_paper(self):
        assert UpdateKind.ADD_PERSON in DEPENDENCY_KINDS
        assert UpdateKind.ADD_PERSON not in DEPENDENT_KINDS
        assert UpdateKind.ADD_LIKE_POST not in DEPENDENCY_KINDS
        assert UpdateKind.ADD_LIKE_POST in DEPENDENT_KINDS
        assert UpdateKind.ADD_POST in DEPENDENCY_KINDS
        assert UpdateKind.ADD_POST in DEPENDENT_KINDS

    def test_forum_ops_carry_partition_key(self, split):
        for op in split.updates:
            if op.kind in (UpdateKind.ADD_POST, UpdateKind.ADD_COMMENT,
                           UpdateKind.ADD_FORUM,
                           UpdateKind.ADD_FORUM_MEMBERSHIP,
                           UpdateKind.ADD_LIKE_POST,
                           UpdateKind.ADD_LIKE_COMMENT):
                assert op.partition_key is not None
            else:
                assert op.partition_key is None

    def test_comment_dep_is_parent(self, network, split):
        posts = network.post_by_id()
        comments = network.comment_by_id()
        for op in split.updates:
            if op.kind is not UpdateKind.ADD_COMMENT:
                continue
            comment = op.payload
            parent = posts.get(comment.reply_of_id) \
                or comments[comment.reply_of_id]
            assert op.depends_on_time == parent.creation_date


class TestPartitioning:
    def test_forum_locality(self, split):
        """All tree ops of one forum land in one partition (the paper's
        sequential-mode prerequisite)."""
        partitions = partition_updates(split.updates, 4)
        owner: dict[int, int] = {}
        for index, partition in enumerate(partitions):
            for op in partition:
                if op.partition_key is None:
                    continue
                previous = owner.setdefault(op.partition_key, index)
                assert previous == index

    def test_partitions_preserve_due_order(self, split):
        for partition in partition_updates(split.updates, 5):
            dues = [op.due_time for op in partition]
            assert dues == sorted(dues)

    def test_all_ops_assigned_once(self, split):
        partitions = partition_updates(split.updates, 3)
        assert sum(len(p) for p in partitions) == len(split.updates)

    def test_zero_partitions_rejected(self, split):
        with pytest.raises(DatagenError):
            partition_updates(split.updates, 0)
