"""Tests for dataset + frequency statistics (curation inputs)."""

from __future__ import annotations

from repro.datagen.stats import (
    DatasetStatistics,
    FrequencyStatistics,
    two_hop_histogram,
)


class TestDatasetStatistics:
    def test_matches_network_counts(self, network):
        stats = DatasetStatistics.of(network)
        assert stats.persons == len(network.persons)
        assert stats.friendships == len(network.knows)
        assert stats.messages == len(network.posts) \
            + len(network.comments)
        assert stats.forums == len(network.forums)
        assert stats.nodes == network.num_nodes
        assert stats.edges == network.num_edges

    def test_table3_row_shape(self, network):
        row = DatasetStatistics.of(network).as_row()
        assert list(row) == ["Nodes", "Edges", "Persons", "Friends",
                             "Messages", "Forums"]

    def test_edges_exceed_nodes(self, network):
        stats = DatasetStatistics.of(network)
        assert stats.edges > stats.nodes


class TestFrequencyStatistics:
    def test_friend_counts_match_brute_force(self, network,
                                             frequency_stats):
        brute: dict[int, int] = {p.id: 0 for p in network.persons}
        for edge in network.knows:
            brute[edge.person1_id] += 1
            brute[edge.person2_id] += 1
        assert frequency_stats.friend_count == brute

    def test_two_hop_supersets_friends(self, frequency_stats):
        for person_id, friends in frequency_stats.friend_count.items():
            assert frequency_stats.two_hop_count[person_id] >= friends

    def test_message_counts_match_brute_force(self, network,
                                              frequency_stats):
        brute: dict[int, int] = {p.id: 0 for p in network.persons}
        for message in network.messages():
            brute[message.author_id] += 1
        assert frequency_stats.message_count == brute

    def test_friend_message_counts(self, network, frequency_stats):
        neighbors: dict[int, set[int]] = {p.id: set()
                                          for p in network.persons}
        for edge in network.knows:
            neighbors[edge.person1_id].add(edge.person2_id)
            neighbors[edge.person2_id].add(edge.person1_id)
        person = network.persons[0]
        expected = sum(frequency_stats.message_count[f]
                       for f in neighbors[person.id])
        assert frequency_stats.friend_message_count[person.id] \
            == expected

    def test_tag_message_counts_total(self, network, frequency_stats):
        total = sum(len(m.tag_ids) for m in network.messages())
        assert sum(frequency_stats.tag_message_count.values()) == total

    def test_forum_post_counts_total(self, network, frequency_stats):
        assert sum(frequency_stats.forum_post_count.values()) \
            == len(network.posts)


class TestTwoHopHistogram:
    def test_counts_all_persons(self, network, frequency_stats):
        histogram = two_hop_histogram(frequency_stats)
        assert sum(count for __, count in histogram) \
            == len(network.persons)

    def test_sorted_buckets(self, frequency_stats):
        histogram = two_hop_histogram(frequency_stats)
        buckets = [bucket for bucket, __ in histogram]
        assert buckets == sorted(buckets)

    def test_empty_stats(self):
        assert two_hop_histogram(FrequencyStatistics()) == []
