"""Tests for the 8 transactional updates."""

from __future__ import annotations

import pytest

from repro.datagen.update_stream import UpdateKind
from repro.errors import WorkloadError
from repro.queries.updates import execute_update, executor_for
from repro.store.graph import Direction
from repro.store.loader import EdgeLabel, VertexLabel


def _first_of(split, kind):
    return next(op for op in split.updates if op.kind is kind)


class TestExecutors:
    def test_every_kind_has_executor(self):
        for kind in UpdateKind:
            assert callable(executor_for(kind))

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            executor_for("nonsense")


class TestAddPerson(object):
    def test_person_visible_after_update(self, fresh_store, split):
        op = _first_of(split, UpdateKind.ADD_PERSON)
        execute_update(fresh_store, op)
        with fresh_store.transaction() as txn:
            props = txn.vertex(VertexLabel.PERSON, op.payload.id)
            assert props is not None
            assert props["first_name"] == op.payload.first_name

    def test_interest_edges_created(self, fresh_store, split):
        op = _first_of(split, UpdateKind.ADD_PERSON)
        execute_update(fresh_store, op)
        with fresh_store.transaction() as txn:
            interests = {t for t, __ in txn.neighbors(
                EdgeLabel.HAS_INTEREST, op.payload.id)}
            assert interests == set(op.payload.interests)

    def test_indexed_by_first_name(self, fresh_store, split):
        op = _first_of(split, UpdateKind.ADD_PERSON)
        execute_update(fresh_store, op)
        with fresh_store.transaction() as txn:
            assert op.payload.id in txn.lookup(
                VertexLabel.PERSON, "first_name",
                op.payload.first_name)


class TestWholeStream:
    def test_replaying_stream_reaches_full_network(self, network,
                                                   fresh_store, split):
        for op in split.updates:
            execute_update(fresh_store, op)
        with fresh_store.transaction() as txn:
            assert txn.count_vertices(VertexLabel.PERSON) \
                == len(network.persons)
            assert txn.count_vertices(VertexLabel.POST) \
                == len(network.posts)
            assert txn.count_vertices(VertexLabel.COMMENT) \
                == len(network.comments)
            assert txn.count_vertices(VertexLabel.FORUM) \
                == len(network.forums)

    def test_dml_data_indistinguishable_from_bulk(self, network,
                                                  fresh_store, split,
                                                  loaded_store):
        """A store built bulk+DML answers queries identically to a
        store with everything bulk-loaded."""
        from repro.queries.complex_reads import q9

        for op in split.updates:
            execute_update(fresh_store, op)
        params = q9.Q9Params(network.persons[0].id,
                             network.posts[-1].creation_date + 1)
        with fresh_store.transaction() as txn:
            via_dml = q9.run(txn, params)
        with loaded_store.transaction() as txn:
            via_bulk = q9.run(txn, params)
        assert via_dml == via_bulk


class TestOtherKinds:
    @pytest.mark.parametrize("kind,label", [
        (UpdateKind.ADD_POST, VertexLabel.POST),
        (UpdateKind.ADD_COMMENT, VertexLabel.COMMENT),
        (UpdateKind.ADD_FORUM, VertexLabel.FORUM),
    ])
    def test_vertex_creating_updates(self, fresh_store, split, kind,
                                     label):
        op = _first_of(split, kind)
        execute_update(fresh_store, op)
        with fresh_store.transaction() as txn:
            assert txn.vertex_exists(label, op.payload.id)

    def test_add_friendship_symmetric(self, fresh_store, split):
        op = _first_of(split, UpdateKind.ADD_FRIENDSHIP)
        execute_update(fresh_store, op)
        edge = op.payload
        with fresh_store.transaction() as txn:
            assert edge.person2_id in {
                o for o, __ in txn.neighbors(EdgeLabel.KNOWS,
                                             edge.person1_id)}
            assert edge.person1_id in {
                o for o, __ in txn.neighbors(EdgeLabel.KNOWS,
                                             edge.person2_id)}

    def test_add_like_visible_from_message(self, fresh_store, split):
        op = _first_of(split, UpdateKind.ADD_LIKE_POST)
        execute_update(fresh_store, op)
        like = op.payload
        with fresh_store.transaction() as txn:
            likers = {p for p, __ in txn.neighbors(
                EdgeLabel.LIKES, like.message_id, Direction.IN)}
            assert like.person_id in likers

    def test_add_membership_props(self, fresh_store, split):
        op = _first_of(split, UpdateKind.ADD_FORUM_MEMBERSHIP)
        execute_update(fresh_store, op)
        membership = op.payload
        with fresh_store.transaction() as txn:
            rows = dict(txn.neighbors(EdgeLabel.HAS_MEMBER,
                                      membership.forum_id))
            assert rows[membership.person_id]["joined_date"] \
                == membership.joined_date
