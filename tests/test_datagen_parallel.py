"""Worker-count invariance and resilience of process-parallel DATAGEN.

The contract under test (ISSUE 5 / DESIGN.md §4f): the generated network
is byte-identical for any ``parallel.jobs`` value, the pipeline degrades
to the serial path when no pool can be created, and worker spans are
stitched into the parent trace.
"""

from __future__ import annotations

import logging

import pytest

from repro import telemetry
from repro.datagen import DatagenConfig, ParallelConfig, generate
from repro.datagen import parallel as parallel_module
from repro.datagen.dictionaries import Dictionaries
from repro.datagen.friendships import FriendshipGenerator, speculate_block
from repro.datagen.parallel import FALLBACK_COUNTER, DatagenExecutor
from repro.datagen.persons import generate_persons
from repro.datagen.universe import build_universe
from repro.errors import DatagenError
from repro.store import load_network
from repro.validation import snapshot_digest, snapshot_store

#: Seed scale — matches the committed golden dataset (p80, s7).
PERSONS = 80
SEED = 7


def _digest(network) -> str:
    return snapshot_digest(snapshot_store(load_network(network)))


def _config(jobs: int, **overrides) -> DatagenConfig:
    parallel = ParallelConfig(jobs=jobs, fallback_serial=False) \
        if jobs > 1 else ParallelConfig()
    return DatagenConfig(num_persons=PERSONS, seed=SEED,
                         parallel=parallel, **overrides)


@pytest.fixture(scope="module")
def serial_network():
    return generate(_config(1))


@pytest.fixture(scope="module")
def serial_digest(serial_network):
    return _digest(serial_network)


@pytest.mark.parametrize("jobs", [2, 4])
def test_state_digest_invariant_across_jobs(jobs, serial_digest):
    """PR 3's sha256 state digest is identical for jobs in {1, 2, 4}."""
    network = generate(_config(jobs))
    assert _digest(network) == serial_digest


def test_parallel_network_equals_serial_entity_by_entity(serial_network):
    """Beyond the digest: every entity list matches the serial run."""
    network = generate(_config(2))
    for attribute in ("persons", "knows", "forums", "memberships",
                      "posts", "comments", "likes"):
        assert getattr(network, attribute) \
            == getattr(serial_network, attribute), attribute


def test_golden_check_with_parallel_regeneration():
    """``repro validate --check --jobs 2``: a parallel-regenerated
    network must replay the serially-recorded golden dataset clean."""
    from repro.validation import check_golden
    report = check_golden("tests/golden/snb-p80-s7.jsonl", "store", jobs=2)
    assert report.ok, report.mismatches


def test_fallback_serial_on_pool_failure(monkeypatch, caplog):
    """Pool creation failure → warning + counter + identical output."""

    def broken_pool(*args, **kwargs):
        raise OSError("no processes on this platform")

    monkeypatch.setattr(parallel_module, "ProcessPoolExecutor",
                        broken_pool)
    before = telemetry.counter(FALLBACK_COUNTER).value
    config = DatagenConfig(num_persons=40, seed=3,
                           parallel=ParallelConfig(jobs=2))
    with caplog.at_level(logging.WARNING,
                         logger="repro.datagen.parallel"):
        network = generate(config)
    assert telemetry.counter(FALLBACK_COUNTER).value == before + 1
    assert any("falling back to serial" in record.message
               for record in caplog.records)
    serial = generate(DatagenConfig(num_persons=40, seed=3))
    assert network.knows == serial.knows
    assert network.posts == serial.posts


def test_pool_failure_raises_when_fallback_disabled(monkeypatch):
    def broken_pool(*args, **kwargs):
        raise OSError("no processes on this platform")

    monkeypatch.setattr(parallel_module, "ProcessPoolExecutor",
                        broken_pool)
    config = DatagenConfig(
        num_persons=40, seed=3,
        parallel=ParallelConfig(jobs=2, fallback_serial=False))
    with pytest.raises(DatagenError, match="cannot start datagen"):
        generate(config)


def test_worker_spans_stitched_into_parent_trace():
    """--trace with --jobs: worker spans land on per-pid tracks."""
    tracer = telemetry.enable()
    try:
        generate(DatagenConfig(
            num_persons=40, seed=3,
            parallel=ParallelConfig(jobs=2, fallback_serial=False)))
    finally:
        telemetry.disable()
    worker_spans = [span for span in tracer.finished_spans()
                    if span.thread_name.startswith("datagen-worker-")]
    assert worker_spans
    names = {span.name for span in worker_spans}
    assert "datagen.worker.init" in names
    assert "datagen.activity.block" in names
    assert "datagen.persons.block" in names
    # Stage spans from the parent are still present alongside.
    all_names = {span.name for span in tracer.finished_spans()}
    assert {"datagen.persons", "datagen.friendships",
            "datagen.activity"} <= all_names


def test_partition_shapes():
    executor = DatagenExecutor(DatagenConfig(
        num_persons=100,
        parallel=ParallelConfig(jobs=2, tasks_per_worker=2,
                                min_chunk=16)), pool=None)
    assert executor.partition(0) == []
    # Fewer items than min_chunk: a single block.
    assert executor.partition(10) == [(0, 10)]
    blocks = executor.partition(100)
    # jobs * tasks_per_worker = 4 tasks of ceil(100/4) = 25.
    assert blocks == [(0, 25), (25, 50), (50, 75), (75, 100)]
    # Contiguous full coverage for awkward sizes.
    blocks = executor.partition(97)
    assert blocks[0][0] == 0 and blocks[-1][1] == 97
    assert all(a[1] == b[0] for a, b in zip(blocks, blocks[1:]))


class _InlineExecutor:
    """Runs friendship blocks in-process with a forced tiny block size,
    so speculation conflicts (and the re-sweep path) actually occur."""

    def __init__(self, config: DatagenConfig, block: int) -> None:
        self.config = config
        self.jobs = 2
        self._block = block

    def partition(self, n: int):
        return [(start, min(start + self._block, n))
                for start in range(0, n, self._block)]

    def run_tasks(self, stage, payloads, span_name=None):
        assert stage == "friendship_block"
        return [speculate_block(self.config, payload)
                for payload in payloads]


def test_speculative_friendship_pass_is_exact():
    """Tiny blocks force cross-block conflicts; commit + re-sweep must
    still reproduce the serial edge list exactly."""
    config = DatagenConfig(num_persons=PERSONS, seed=SEED)
    dictionaries = Dictionaries(config.seed)
    universe = build_universe(dictionaries)
    persons = generate_persons(config, dictionaries, universe)

    serial = FriendshipGenerator(config, universe).generate(persons)
    generator = FriendshipGenerator(config, universe)
    speculative = generator.generate(persons,
                                     _InlineExecutor(config, block=8))
    assert speculative == serial
    # Every person in every pass either committed or was re-swept.
    assert generator.committed_speculations \
        + generator.reswept_speculations == 3 * len(persons)
    assert generator.committed_speculations > 0
    # With 8-person blocks inside a 200-person window, conflicts are
    # effectively certain at this scale; if this ever flakes the block
    # size should shrink, not the assertion.
    assert generator.reswept_speculations > 0
