"""Tests for the built-in dictionaries (the DBpedia substitute)."""

from __future__ import annotations

from repro.datagen.dictionaries import (
    BROWSER_WEIGHTS,
    BROWSERS,
    COUNTRIES,
    FIRST_NAMES,
    LAST_NAMES,
    TAG_CLASSES,
    Dictionaries,
    total_city_count,
    total_tag_count,
)


class TestStaticData:
    def test_paper_table2_germany_names(self):
        # The paper's Table 2 top-10 for Germany, in order.
        expected = ("Karl", "Hans", "Wolfgang", "Fritz", "Rudolf",
                    "Walter", "Franz", "Paul", "Otto", "Wilhelm")
        assert FIRST_NAMES["germanic"]["male"][:10] == expected

    def test_paper_table2_china_names(self):
        expected = ("Yang", "Chen", "Wei", "Lei", "Jun", "Jie", "Li",
                    "Hao", "Lin", "Peng")
        assert FIRST_NAMES["chinese"]["male"][:10] == expected

    def test_every_culture_has_both_genders(self):
        for culture, by_gender in FIRST_NAMES.items():
            assert len(by_gender["male"]) >= 10, culture
            assert len(by_gender["female"]) >= 10, culture

    def test_every_culture_has_last_names(self):
        assert set(LAST_NAMES) == set(FIRST_NAMES)

    def test_country_cultures_exist(self):
        for country in COUNTRIES:
            assert country.culture in FIRST_NAMES

    def test_countries_have_cities_universities_companies(self):
        for country in COUNTRIES:
            assert country.cities, country.name
            assert country.universities, country.name
            assert country.companies, country.name
            assert country.languages, country.name
            assert country.weight > 0

    def test_population_weights_skewed(self):
        weights = sorted((c.weight for c in COUNTRIES), reverse=True)
        assert weights[0] >= 5 * weights[-1]

    def test_browser_weights_sum_to_one(self):
        assert abs(sum(BROWSER_WEIGHTS) - 1.0) < 1e-9
        assert len(BROWSER_WEIGHTS) == len(BROWSERS)

    def test_tag_class_hierarchy_rooted(self):
        names = {spec.name for spec in TAG_CLASSES}
        for spec in TAG_CLASSES:
            if spec.parent is not None:
                assert spec.parent in names

    def test_dictionary_sizes(self):
        assert total_city_count() >= 50
        assert total_tag_count() >= 100


class TestCorrelatedOrdering:
    def test_permutation_deterministic(self):
        a = Dictionaries(seed=1)
        b = Dictionaries(seed=1)
        values = tuple("abcdefgh")
        assert a.permuted(values, "x") == b.permuted(values, "x")

    def test_permutation_differs_per_key(self):
        dictionaries = Dictionaries(seed=1)
        values = tuple(str(i) for i in range(30))
        assert dictionaries.permuted(values, "Germany") \
            != dictionaries.permuted(values, "China")

    def test_permutation_is_permutation(self):
        dictionaries = Dictionaries(seed=1)
        values = tuple(str(i) for i in range(30))
        assert sorted(dictionaries.permuted(values, "k")) == sorted(values)

    def test_local_names_lead(self):
        """Paper §2.1: the local culture's names rank first; foreign
        names form the rare tail."""
        dictionaries = Dictionaries(seed=0)
        names = dictionaries.first_names_for("Germany", "male")
        assert names[:10] == FIRST_NAMES["germanic"]["male"][:10]
        # Foreign names present but after the local block.
        assert "Yang" in names
        assert names.index("Yang") >= len(FIRST_NAMES["germanic"]["male"])

    def test_same_shape_different_order(self):
        """The dictionaries have equal size for every country — only the
        order changes (the paper's correlation mechanism)."""
        dictionaries = Dictionaries(seed=0)
        germany = dictionaries.first_names_for("Germany", "female")
        china = dictionaries.first_names_for("China", "female")
        assert len(germany) == len(china)
        assert sorted(germany) == sorted(china)
        assert germany != china

    def test_tag_ranking_per_country(self):
        dictionaries = Dictionaries(seed=0)
        germany = dictionaries.tags_ranked_for_country("Germany")
        china = dictionaries.tags_ranked_for_country("China")
        assert sorted(germany) == sorted(china)
        assert germany != china

    def test_words_for_tag_deterministic_subset(self):
        dictionaries = Dictionaries(seed=0)
        words = dictionaries.words_for_tag("Elvis Presley")
        assert words == dictionaries.words_for_tag("Elvis Presley")
        assert len(words) == 40
        assert words != dictionaries.words_for_tag("Databases")

    def test_pick_country_weighted(self):
        from repro.rng import RandomStream

        dictionaries = Dictionaries(seed=0)
        stream = RandomStream(5)
        picks = [dictionaries.pick_country(stream).name
                 for __ in range(3000)]
        assert picks.count("China") > picks.count("Sweden")
