"""Tests for parameter curation (PC tables, greedy selection, buckets)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curation.buckets import (
    bucket_key,
    bucket_midpoint,
    bucket_timestamps,
    stable_buckets,
)
from repro.curation.curator import ParameterCurator
from repro.curation.greedy import greedy_select, uniform_select
from repro.curation.pc_table import (
    ParameterCountTable,
    log_spread,
    pc_table_own_messages,
    pc_table_q2,
    pc_table_two_hop,
)
from repro.errors import CurationError


class TestPcTables:
    def test_q2_table_columns(self, frequency_stats):
        table = pc_table_q2(frequency_stats)
        assert table.num_columns == 2
        assert len(table.rows) == len(frequency_stats.friend_count)

    def test_q2_counts_match_stats(self, frequency_stats):
        table = pc_table_q2(frequency_stats)
        for person_id, (friends, messages) in table.rows[:20]:
            assert friends == frequency_stats.friend_count[person_id]
            assert messages \
                == frequency_stats.friend_message_count[person_id]

    def test_two_hop_table_columns(self, frequency_stats):
        table = pc_table_two_hop(frequency_stats)
        assert table.num_columns == 3

    def test_own_messages_table(self, frequency_stats):
        table = pc_table_own_messages(frequency_stats)
        assert table.num_columns == 1

    def test_mismatched_row_rejected(self):
        with pytest.raises(CurationError):
            ParameterCountTable(("a", "b"), [(1, (5,))])

    def test_column_variance(self):
        table = ParameterCountTable(
            ("c",), [(1, (10,)), (2, (10,)), (3, (40,))])
        assert table.column_variance(0) == pytest.approx(200.0)

    def test_total_cout(self):
        table = ParameterCountTable(("a", "b"), [(1, (3, 4))])
        assert table.total_cout(1) == 7
        with pytest.raises(CurationError):
            table.total_cout(2)

    def test_log_spread(self):
        table = ParameterCountTable(
            ("c",), [(1, (10,)), (2, (1000,)), (3, (10,))])
        assert log_spread(table, [1, 3]) == pytest.approx(0.0)
        assert log_spread(table, [1, 2]) == pytest.approx(2.0)


class TestGreedySelection:
    def test_selects_k_distinct(self, frequency_stats):
        table = pc_table_two_hop(frequency_stats)
        selection = greedy_select(table, 10)
        assert len(selection.values) == 10
        assert len(set(selection.values)) == 10

    def test_values_from_domain(self, frequency_stats):
        table = pc_table_two_hop(frequency_stats)
        domain = {value for value, __ in table.rows}
        selection = greedy_select(table, 10)
        assert set(selection.values) <= domain

    def test_beats_uniform_on_spread(self, frequency_stats):
        """P1: curated parameters have (much) lower C_out spread than a
        uniform sample — the Fig. 5 contrast."""
        table = pc_table_two_hop(frequency_stats)
        curated = greedy_select(table, 10).values
        spreads = []
        for seed in range(5):
            uniform = uniform_select(table, 10, seed)
            spreads.append(log_spread(table, uniform))
        mean_uniform = sum(spreads) / len(spreads)
        assert log_spread(table, curated) < mean_uniform

    def test_stability_across_disjoint_runs(self, frequency_stats):
        """P2: repeated selections land in the same C_out region."""
        table = pc_table_two_hop(frequency_stats)
        first = greedy_select(table, 5)
        second = greedy_select(table, 5)
        assert first.values == second.values  # deterministic

    def test_window_trace_reported(self, frequency_stats):
        table = pc_table_two_hop(frequency_stats)
        selection = greedy_select(table, 5)
        assert selection.window_trace
        variances = [v for __, __, v in selection.window_trace]
        assert variances == sorted(variances)

    def test_small_domain_returns_all(self):
        table = ParameterCountTable(("c",), [(1, (5,)), (2, (6,))])
        selection = greedy_select(table, 10)
        assert sorted(selection.values) == [1, 2]

    def test_k_zero_rejected(self, frequency_stats):
        with pytest.raises(CurationError):
            greedy_select(pc_table_q2(frequency_stats), 0)

    def test_uniform_select_deterministic_per_seed(self,
                                                   frequency_stats):
        table = pc_table_q2(frequency_stats)
        assert uniform_select(table, 5, 1) == uniform_select(table, 5, 1)
        assert uniform_select(table, 5, 1) != uniform_select(table, 5, 2)

    @given(st.lists(st.tuples(st.integers(0, 10_000),
                              st.integers(0, 100),
                              st.integers(0, 100)),
                    min_size=1, max_size=80, unique_by=lambda r: r[0]),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=60)
    def test_selection_always_valid(self, raw_rows, k):
        table = ParameterCountTable(
            ("a", "b"), [(value, (a, b)) for value, a, b in raw_rows])
        selection = greedy_select(table, k)
        assert len(selection.values) == min(k, len(raw_rows))
        assert len(set(selection.values)) == len(selection.values)
        domain = {value for value, __ in table.rows}
        assert set(selection.values) <= domain


class TestBuckets:
    def test_bucket_key(self):
        assert bucket_key(250, bucket_millis=100) == 2
        assert bucket_key(250, bucket_millis=100, origin=200) == 0

    def test_bucket_timestamps(self):
        counts = bucket_timestamps([5, 15, 15, 25], bucket_millis=10)
        assert counts == {0: 1, 1: 2, 2: 1}

    def test_midpoint_round_trip(self):
        mid = bucket_midpoint(3, bucket_millis=100)
        assert bucket_key(mid, bucket_millis=100) == 3

    def test_stable_buckets_prefer_median(self):
        counts = {0: 1, 1: 100, 2: 100, 3: 100, 4: 10_000}
        assert set(stable_buckets(counts, 3)) == {1, 2, 3}

    def test_stable_buckets_empty(self):
        assert stable_buckets({}, 3) == []


class TestCurator:
    def test_params_for_all_queries(self, curated_params):
        for query_id in range(1, 15):
            bindings = curated_params.params_for(query_id)
            assert len(bindings) == 4

    def test_param_types(self, curated_params):
        from repro.queries.registry import COMPLEX_QUERIES

        for query_id in range(1, 15):
            expected = COMPLEX_QUERIES[query_id].params_type
            for binding in curated_params.params_for(query_id):
                assert isinstance(binding, expected)

    def test_missing_query_raises(self, curated_params):
        with pytest.raises(CurationError):
            curated_params.params_for(99)

    def test_uniform_baseline_differs(self, network, frequency_stats):
        curator = ParameterCurator(network, frequency_stats, seed=3)
        curated = curator.curate(8)
        uniform = curator.curate(8, uniform=True)
        assert [p.person_id for p in curated.by_query[5]] \
            != [p.person_id for p in uniform.by_query[5]]

    def test_q13_pairs_distinct_endpoints(self, curated_params):
        for params in curated_params.by_query[13]:
            assert params.person_x_id != params.person_y_id

    def test_q3_countries_differ_from_each_other(self, curated_params):
        for params in curated_params.by_query[3]:
            assert params.country_x_id != params.country_y_id
