"""Tests for SocialNetwork container helpers and schema entities."""

from __future__ import annotations

import pytest

from repro.schema.entities import RELATION_NAMES, Knows, PlaceType


class TestSchemaInventory:
    def test_twenty_relations(self):
        """The paper: 11 entities connected by 20 relations."""
        assert len(RELATION_NAMES) == 20
        assert len(set(RELATION_NAMES)) == 20

    def test_knows_other(self):
        edge = Knows(1, 2, 100)
        assert edge.other(1) == 2
        assert edge.other(2) == 1
        with pytest.raises(ValueError):
            edge.other(3)


class TestDatasetMaps:
    def test_person_by_id(self, network):
        by_id = network.person_by_id()
        assert len(by_id) == len(network.persons)
        sample = network.persons[5]
        assert by_id[sample.id] is sample

    def test_all_lookup_maps(self, network):
        assert len(network.forum_by_id()) == len(network.forums)
        assert len(network.post_by_id()) == len(network.posts)
        assert len(network.comment_by_id()) == len(network.comments)
        assert len(network.tag_by_id()) == len(network.tags)
        assert len(network.place_by_id()) == len(network.places)
        assert len(network.organisation_by_id()) \
            == len(network.organisations)

    def test_friendships_of_symmetric(self, network):
        adjacency = network.friendships_of()
        for edge in network.knows[:200]:
            assert edge in adjacency[edge.person1_id]
            assert edge in adjacency[edge.person2_id]

    def test_messages_iterator(self, network):
        messages = list(network.messages())
        assert len(messages) == len(network.posts) \
            + len(network.comments)

    def test_photo_flag(self, network):
        photos = [p for p in network.posts if p.is_photo]
        texts = [p for p in network.posts if not p.is_photo]
        assert photos and texts
        for photo in photos:
            assert photo.image_file is not None

    def test_place_types(self, network):
        types = {p.type for p in network.places}
        assert types == {PlaceType.CITY, PlaceType.COUNTRY,
                         PlaceType.CONTINENT}

    def test_num_nodes_consistent(self, network):
        summary = network.summary()
        assert summary["nodes"] == (
            summary["persons"] + summary["forums"] + summary["posts"]
            + summary["comments"] + summary["tags"]
            + summary["tag_classes"] + summary["places"]
            + summary["organisations"])

    def test_edges_include_all_relation_volumes(self, network):
        summary = network.summary()
        floor = (summary["knows"] + summary["memberships"]
                 + summary["likes"] + summary["posts"]
                 + summary["comments"])
        assert summary["edges"] > floor
