"""The chaos soak (repro.validation.chaos): convergence under faults."""

from __future__ import annotations

import pytest

from repro.driver import DegradePolicy, ExecutionMode, RetryPolicy
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.validation import chaos_canary, clean_run_digest, run_chaos

#: Fast soak mix: plenty of aborts, a little latency, no real sleeps.
SOAK_PLAN = FaultPlan.uniform(abort=0.08, latency=0.04,
                              latency_seconds=0.0)
FAST_POLICY = RetryPolicy(max_retries=8, base_backoff=0.0,
                          max_backoff=0.0)


class TestChaosSoak:
    @pytest.mark.parametrize("sut_name", ["store", "engine"])
    def test_converges_under_transient_faults(self, small_split, sut_name):
        report = run_chaos(small_split, sut_name, SOAK_PLAN, seed=3,
                           policy=FAST_POLICY, num_partitions=4)
        assert report.failure is None
        assert report.digests_match
        assert report.injected["abort"] > 0
        assert report.driver is not None
        assert report.driver.retries >= report.injected["abort"]
        assert report.driver.dependency_timeouts == 0
        assert report.ok

    def test_converges_in_windowed_mode(self, small_split):
        report = run_chaos(small_split, "store", SOAK_PLAN, seed=3,
                           policy=FAST_POLICY, num_partitions=2,
                           mode=ExecutionMode.WINDOWED,
                           window_millis=60 * 60 * 1000)
        assert report.ok, report.failure

    def test_store_conflicts_join_the_mix(self, small_split):
        report = run_chaos(small_split, "store", SOAK_PLAN, seed=3,
                           policy=FAST_POLICY, num_partitions=1,
                           conflict_rate=0.05)
        assert report.ok, report.failure
        assert report.injected_conflicts > 0

    def test_conflict_injection_requires_store_sut(self, small_split):
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            run_chaos(small_split, "engine", SOAK_PLAN,
                      conflict_rate=0.1)

    def test_identical_seed_and_plan_reproduce_counts(self, small_split):
        def soak():
            r = run_chaos(small_split, "store", SOAK_PLAN, seed=7,
                          policy=FAST_POLICY, num_partitions=4)
            assert r.ok, r.failure
            return (r.injected, r.driver.retries,
                    r.driver.retries_by_class, r.driver.skipped)

        assert soak() == soak()

    def test_fatal_fault_surfaces_under_fail_fast(self, small_split):
        plan = FaultPlan().with_fault(5, FaultSpec(FaultKind.FATAL))
        report = run_chaos(small_split, "store", plan, seed=0,
                           policy=FAST_POLICY, num_partitions=2,
                           dependency_wait_timeout=10.0)
        assert report.failure is not None
        assert "InjectedFatalError" in report.failure
        # Never retried: the fatal injection fired on exactly one attempt.
        assert report.injected["fatal"] == 1
        assert not report.ok

    def test_degrade_rides_out_fatal_faults(self, small_split):
        plan = FaultPlan().with_fault(5, FaultSpec(FaultKind.FATAL)) \
                          .with_fault(9, FaultSpec(FaultKind.FATAL))
        policy = RetryPolicy(max_retries=2, base_backoff=0.0,
                             max_backoff=0.0,
                             on_exhaustion=DegradePolicy.DEGRADE)
        report = run_chaos(small_split, "store", plan, seed=0,
                           policy=policy, num_partitions=2,
                           dependency_wait_timeout=10.0)
        assert report.failure is None
        assert report.driver.skipped == 2
        assert sum(report.driver.skipped_by_class.values()) == 2
        assert report.driver.dependency_timeouts == 0
        # Skipped updates were never applied, so the digest must differ:
        # degradation trades completeness for forward progress.
        assert not report.digests_match

    def test_clean_digest_is_deterministic(self, small_split):
        assert clean_run_digest(small_split, "store") \
            == clean_run_digest(small_split, "store")


class TestChaosCanary:
    def test_unprotected_run_fails(self, small_split):
        plan = FaultPlan.uniform(abort=0.10)
        caught, report = chaos_canary(small_split, "store", plan,
                                      seed=0)
        assert caught
        assert report.injected_total > 0
        assert report.failure is not None or not report.digests_match

    def test_empty_plan_is_not_caught(self, small_split):
        caught, report = chaos_canary(small_split, "store",
                                      FaultPlan.uniform(), seed=0)
        assert not caught
        assert report.injected_total == 0


class TestRender:
    def test_render_mentions_verdict_and_digest(self, small_split):
        report = run_chaos(small_split, "store", SOAK_PLAN, seed=3,
                           policy=FAST_POLICY, num_partitions=2)
        from repro.validation import render_chaos

        text = render_chaos(report)
        assert "chaos soak [store]" in text
        assert "MATCH" in text
        assert "OK — chaos run converged" in text
