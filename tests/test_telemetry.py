"""Unit tests for the telemetry subsystem (spans, metrics, exporters)."""

from __future__ import annotations

import gc
import json
import threading

import pytest

from repro import telemetry
from repro.driver import metrics as driver_metrics
from repro.engine.operators import Filter, Limit, Scan
from repro.engine.rows import Schema, Table
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Tracer,
    chrome_trace_events,
    percentile,
    render_metrics,
    render_span_summary,
    render_wait_breakdown,
    wait_time_breakdown,
    write_chrome_trace,
    write_spans_jsonl,
)


@pytest.fixture()
def traced():
    """Telemetry enabled for one test, always disabled afterwards."""
    tracer = telemetry.enable(fresh_registry=True)
    try:
        yield tracer
    finally:
        telemetry.disable()


class TestSpans:
    def test_nesting_sets_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        spans = tracer.finished_spans()
        assert [span.name for span in spans] == ["inner", "outer"]

    def test_attributes_and_duration(self):
        tracer = Tracer()
        with tracer.span("work", phase="x") as span:
            span.set("tuples", 7)
        (finished,) = tracer.finished_spans()
        assert finished.attributes == {"phase": "x", "tuples": 7}
        assert finished.duration_seconds >= 0.0

    def test_threads_have_independent_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name):
                seen[name] = tracer.current_span().name

        with tracer.span("main-root"):
            threads = [threading.Thread(target=worker, args=(f"t{i}",))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for i in range(3):
            assert seen[f"t{i}"] == f"t{i}"
        # Worker spans must not be parented to the main thread's span.
        for span in tracer.finished_spans():
            if span.name.startswith("t"):
                assert span.parent_id is None

    def test_out_of_order_end_is_tolerated(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        inner = tracer.start_span("inner")
        tracer.end_span(outer)  # generator-teardown ordering
        tracer.end_span(inner)
        assert tracer.current_span() is None
        assert len(tracer.finished_spans()) == 2
        assert tracer.finished_spans()[1].parent_id == outer.span_id

    def test_add_span_parents_to_current(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            pre_timed = tracer.add_span("stage", 1.0, 2.5, kind="datagen")
        assert pre_timed.parent_id == parent.span_id
        assert pre_timed.duration_seconds == pytest.approx(1.5)


class TestGlobalFacade:
    def test_disabled_by_default(self):
        assert telemetry.active is False
        assert telemetry.get_tracer() is None
        # span() degrades to a no-op context manager.
        with telemetry.span("ignored") as span:
            assert span is None
        assert telemetry.current_span() is None
        assert telemetry.add_span("ignored", 0.0, 1.0) is None

    def test_enable_disable_round_trip(self):
        tracer = telemetry.enable()
        try:
            assert telemetry.active is True
            assert telemetry.get_tracer() is tracer
            with telemetry.span("visible"):
                pass
        finally:
            returned = telemetry.disable()
        assert returned is tracer
        assert telemetry.active is False
        assert [span.name for span in returned.finished_spans()] \
            == ["visible"]

    def test_fresh_registry_resets_counters(self):
        telemetry.enable(fresh_registry=True)
        try:
            telemetry.counter("x").inc()
            assert telemetry.get_registry().counter("x").value == 1
        finally:
            telemetry.disable()
        telemetry.enable(fresh_registry=True)
        try:
            assert telemetry.get_registry().counter("x").value == 0
        finally:
            telemetry.disable()


class TestMetrics:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_histogram_snapshot(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        assert snapshot.count == 100
        assert snapshot.min == 1.0
        assert snapshot.max == 100.0
        assert snapshot.mean == pytest.approx(50.5)
        assert snapshot.p50 == 51.0  # nearest-rank
        assert snapshot.p99 == 100.0

    def test_empty_histogram_snapshot_is_none(self):
        assert Histogram("h").snapshot() is None

    def test_registry_kinds_are_sticky(self):
        registry = MetricRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")
        assert registry.counter("a") is registry.counter("a")

    def test_registry_snapshot(self):
        registry = MetricRegistry()
        registry.counter("ops").inc(3)
        registry.gauge("ratio").set(0.5)
        registry.histogram("lat").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["ops"] == 3
        assert snapshot["ratio"] == 0.5
        assert snapshot["lat"].count == 1


class TestPercentile:
    """Edge cases of the single shared nearest-rank implementation."""

    def test_driver_metrics_reexports_same_function(self):
        assert driver_metrics.percentile is percentile

    def test_median(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_single_sample_any_fraction(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([7.0], 1.0) == 7.0

    def test_fraction_one_clamps_to_max(self):
        assert percentile([1.0, 2.0, 3.0], 1.0) == 3.0

    def test_fraction_zero_is_min(self):
        assert percentile([9.0, 1.0, 5.0], 0.0) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_unsorted_input(self):
        values = [float(v) for v in range(100, 0, -1)]
        assert percentile(values, 0.99) == 100.0


class TestExporters:
    def _tracer_with_spans(self):
        tracer = Tracer()
        with tracer.span("scheduler.partition.0", mode="parallel"):
            with tracer.span("op.Q9"):
                with tracer.span("engine.hashjoin") as span:
                    span.set("tuples_out", 42)
            with tracer.span("scheduler.wait.gc", dep_time=10):
                pass
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._tracer_with_spans()
        path = tmp_path / "spans.jsonl"
        written = write_spans_jsonl(tracer, path)
        lines = path.read_text().splitlines()
        assert written == len(lines) == 4
        records = [json.loads(line) for line in lines]
        by_name = {record["name"]: record for record in records}
        assert by_name["engine.hashjoin"]["attributes"]["tuples_out"] \
            == 42
        assert by_name["op.Q9"]["parent_id"] \
            == by_name["scheduler.partition.0"]["span_id"]

    def test_chrome_trace_document(self, tmp_path):
        tracer = self._tracer_with_spans()
        path = tmp_path / "trace.json"
        written = write_chrome_trace(tracer, path)
        document = json.loads(path.read_text())
        metadata = [event for event in document["traceEvents"]
                    if event["ph"] == "M"]
        events = [event for event in document["traceEvents"]
                  if event["ph"] != "M"]
        assert written == len(events) + len(metadata)
        assert len(events) == 4
        # One thread_name metadata event labels the single track.
        assert [m["args"]["name"] for m in metadata] == ["MainThread"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert {"name", "cat", "pid", "tid", "args"} <= set(event)
        by_name = {event["name"]: event for event in events}
        assert by_name["engine.hashjoin"]["args"]["tuples_out"] == 42
        assert by_name["op.Q9"]["args"]["parent_id"] \
            == by_name["scheduler.partition.0"]["args"]["span_id"]
        assert by_name["engine.hashjoin"]["cat"] == "engine"

    def test_chrome_events_sorted_by_time(self):
        events = [event for event
                  in chrome_trace_events(self._tracer_with_spans())
                  if event["ph"] != "M"]
        times = [event["ts"] for event in events]
        assert times == sorted(times)

    def test_span_summary_table(self):
        table = render_span_summary(self._tracer_with_spans())
        assert "span" in table and "p99_ms" in table
        assert "engine.hashjoin" in table
        assert "op.Q9" in table

    def test_wait_time_breakdown(self):
        tracer = self._tracer_with_spans()
        breakdown = wait_time_breakdown(tracer)
        entry = breakdown["scheduler.partition.0"]
        assert entry["total"] >= entry["gc_wait"] + entry["execute"]
        assert entry["gc_wait"] > 0.0
        assert entry["execute"] > 0.0
        assert "gc_wait_s" in render_wait_breakdown(tracer)

    def test_render_metrics(self):
        registry = MetricRegistry()
        registry.counter("store.wal.torn_records").inc(2)
        registry.histogram("driver.gc_wait_seconds").observe(0.25)
        table = render_metrics(registry)
        assert "store.wal.torn_records" in table
        assert "driver.gc_wait_seconds" in table


def _person_table() -> Table:
    table = Table("person", Schema(("id", "name")), primary_key="id")
    table.bulk_load([(i, f"p{i}") for i in range(20)])
    return table


class TestOperatorTracing:
    def test_traced_iteration_records_tuples_out(self, traced):
        scan = Scan(_person_table())
        plan = Filter(scan, lambda row: row[0] % 2 == 0)
        rows = plan.execute()
        assert len(rows) == 10
        spans = {span.name: span for span in traced.finished_spans()}
        assert spans["engine.filter"].attributes["tuples_out"] == 10
        assert spans["engine.scan(person)"].attributes["tuples_out"] == 20
        assert spans["engine.scan(person)"].parent_id \
            == spans["engine.filter"].span_id

    def test_abandoned_child_iterator_still_closes_span(self, traced):
        plan = Limit(Scan(_person_table()), 3)
        assert len(plan.execute()) == 3
        del plan
        gc.collect()  # close the abandoned scan generator
        spans = traced.finished_spans()
        names = [span.name for span in spans]
        assert "engine.limit(3)" in names
        assert "engine.scan(person)" in names
        for span in spans:
            assert span.end is not None
        # The tracer's stack must be clean for the next plan.
        assert traced.current_span() is None

    def test_untraced_iteration_identical(self):
        scan = Scan(_person_table())
        assert telemetry.active is False
        assert len(scan.execute()) == 20
        assert scan.tuples_out == 20
