"""Tests for DATAGEN configuration and the scale-factor law."""

from __future__ import annotations

import pytest

from repro.datagen.config import (
    DatagenConfig,
    persons_for_scale_factor,
    scale_factor_for_persons,
)
from repro.errors import DatagenError


class TestScaleFactorLaw:
    def test_table3_fit_sf30(self):
        """Paper Table 3: SF30 → 0.18M persons (±15%)."""
        persons = persons_for_scale_factor(30)
        assert abs(persons - 180_000) / 180_000 < 0.15

    def test_table3_fit_sf100(self):
        persons = persons_for_scale_factor(100)
        assert abs(persons - 500_000) / 500_000 < 0.15

    def test_table3_fit_sf300(self):
        persons = persons_for_scale_factor(300)
        assert abs(persons - 1_250_000) / 1_250_000 < 0.15

    def test_table3_fit_sf1000(self):
        persons = persons_for_scale_factor(1000)
        assert abs(persons - 3_600_000) / 3_600_000 < 0.15

    def test_sublinear(self):
        """Persons grow sublinearly with SF (messages/person grows)."""
        ratio = (persons_for_scale_factor(100)
                 / persons_for_scale_factor(10))
        assert ratio < 10

    def test_inverse(self):
        sf = scale_factor_for_persons(persons_for_scale_factor(10))
        assert abs(sf - 10) < 0.1

    def test_invalid_inputs(self):
        with pytest.raises(DatagenError):
            persons_for_scale_factor(0)
        with pytest.raises(DatagenError):
            scale_factor_for_persons(0)


class TestDatagenConfig:
    def test_defaults_valid(self):
        DatagenConfig()

    def test_for_scale_factor(self):
        config = DatagenConfig.for_scale_factor(0.01, seed=3)
        assert config.num_persons == persons_for_scale_factor(0.01)
        assert config.seed == 3

    def test_average_degree_formula(self):
        """The paper's n^(0.512 - 0.028 log10 n) law."""
        config = DatagenConfig(num_persons=700_000_000)
        assert 170 <= config.average_degree_target() <= 230

    def test_rejects_too_few_persons(self):
        with pytest.raises(DatagenError):
            DatagenConfig(num_persons=1)

    def test_rejects_bad_workers(self):
        with pytest.raises(DatagenError):
            DatagenConfig(num_workers=0)

    def test_rejects_bad_shares(self):
        with pytest.raises(DatagenError):
            DatagenConfig(dimension_shares=(0.5, 0.5, 0.5))

    def test_rejects_bad_geometric(self):
        with pytest.raises(DatagenError):
            DatagenConfig(window_geometric_p=1.0)

    def test_rejects_tiny_window(self):
        with pytest.raises(DatagenError):
            DatagenConfig(friendship_window=1)

    def test_rejects_nonpositive_tsafe(self):
        with pytest.raises(DatagenError):
            DatagenConfig(t_safe_millis=0)
