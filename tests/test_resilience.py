"""The resilience policy primitives (repro.driver.resilience)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.driver.resilience import (
    AbandonedAttemptError,
    CircuitBreaker,
    CircuitOpenError,
    DegradePolicy,
    RetryPolicy,
    attempt_abandoned,
    call_with_watchdog,
    default_is_transient,
    raise_if_abandoned,
)
from repro.errors import (
    DriverError,
    FatalSUTError,
    OperationTimeoutError,
    TransientError,
    WriteConflictError,
)
from repro.faults import InjectedFatalError, InjectedTransientError
from repro.rng import RandomStream


class TestClassification:
    def test_write_conflict_is_transient(self):
        assert default_is_transient(WriteConflictError("deadlock victim"))

    def test_injected_transient_is_transient(self):
        assert default_is_transient(InjectedTransientError("x"))

    def test_os_level_shapes_are_transient(self):
        assert default_is_transient(ConnectionError("reset"))
        assert default_is_transient(TimeoutError("slow"))

    def test_watchdog_timeout_is_transient(self):
        assert default_is_transient(OperationTimeoutError("x"))

    def test_fatal_is_never_transient(self):
        assert not default_is_transient(FatalSUTError("corrupt"))
        assert not default_is_transient(InjectedFatalError("x"))

    def test_fatal_marker_beats_transient_marker(self):
        class Both(FatalSUTError, TransientError):
            pass

        assert not default_is_transient(Both("ambiguous"))

    def test_ordinary_exceptions_are_fatal(self):
        assert not default_is_transient(ValueError("bug"))
        assert not default_is_transient(KeyError("missing"))

    def test_policy_classify_override(self):
        policy = RetryPolicy(classify=lambda exc: False)
        assert not policy.is_transient(WriteConflictError("x"))
        policy = RetryPolicy()
        assert policy.is_transient(WriteConflictError("x"))


class TestBackoff:
    def test_bounds(self):
        policy = RetryPolicy(base_backoff=0.01, max_backoff=0.5)
        stream = RandomStream.for_key(0, "test-backoff")
        previous = policy.base_backoff
        for __ in range(200):
            sleep = policy.next_backoff(previous, stream)
            assert policy.base_backoff <= sleep <= policy.max_backoff
            previous = sleep

    def test_decorrelated_jitter_grows_from_previous(self):
        policy = RetryPolicy(base_backoff=0.01, max_backoff=100.0)
        stream = RandomStream.for_key(1, "test-backoff")
        sleeps = [policy.next_backoff(10.0, stream) for __ in range(100)]
        # Uniform over [0.01, 30]: spread should be wide, mean ~15.
        assert max(sleeps) > 20.0
        assert min(sleeps) < 10.0

    def test_seeded_reproducibility(self):
        policy = RetryPolicy(base_backoff=0.001, max_backoff=1.0)

        def draw() -> list[float]:
            stream = RandomStream.for_key(9, "retry-backoff", 0)
            out, prev = [], policy.base_backoff
            for __ in range(20):
                prev = policy.next_backoff(prev, stream)
                out.append(prev)
            return out

        assert draw() == draw()


class TestWatchdog:
    def test_result_passes_through(self):
        assert call_with_watchdog(lambda: 42, timeout=1.0) == 42

    def test_exception_reraised_on_caller_thread(self):
        def boom():
            raise WriteConflictError("inner")

        with pytest.raises(WriteConflictError):
            call_with_watchdog(boom, timeout=1.0)

    def test_expiry_raises_timeout(self):
        start = time.monotonic()
        with pytest.raises(OperationTimeoutError):
            call_with_watchdog(lambda: time.sleep(5.0), timeout=0.05)
        assert time.monotonic() - start < 1.0  # abandoned, not joined


class TestAbandonment:
    """The cancel flag connectors consult before side-effecting steps."""

    def test_false_outside_a_supervised_attempt(self):
        assert not attempt_abandoned()
        raise_if_abandoned()  # and therefore a no-op

    def test_false_during_a_live_attempt(self):
        assert call_with_watchdog(attempt_abandoned, timeout=1.0) is False

    def test_observable_from_inside_after_expiry(self):
        observed: list[bool] = []
        release = threading.Event()

        def stalled():
            release.wait(2.0)
            observed.append(attempt_abandoned())
            raise_if_abandoned()  # must raise now, discarded below

        with pytest.raises(OperationTimeoutError):
            call_with_watchdog(stalled, timeout=0.05)
        release.set()  # wake the abandoned helper
        deadline = time.monotonic() + 2.0
        while not observed and time.monotonic() < deadline:
            time.sleep(0.01)
        assert observed == [True]

    def test_abandoned_error_is_transient(self):
        # Were it ever to escape to a retry loop, it must be retryable.
        assert default_is_transient(AbandonedAttemptError("x"))
        assert issubclass(AbandonedAttemptError, TransientError)


class TestCircuitBreaker:
    def test_trips_once_past_budget(self):
        breaker = CircuitBreaker(partition=0, budget=3)
        assert [breaker.record_skip() for __ in range(5)] == \
            [False, False, False, True, False]
        assert breaker.tripped
        assert breaker.skips == 5

    def test_open_error_is_driver_error_not_transient(self):
        assert issubclass(CircuitOpenError, DriverError)
        assert not default_is_transient(CircuitOpenError("open"))


class TestPolicyDefaults:
    def test_frozen(self):
        policy = RetryPolicy()
        with pytest.raises(Exception):
            policy.max_retries = 5  # type: ignore[misc]

    def test_default_is_fail_fast_single_attempt(self):
        policy = RetryPolicy()
        assert policy.max_retries == 0
        assert policy.on_exhaustion is DegradePolicy.FAIL_FAST
        assert policy.attempt_timeout is None
