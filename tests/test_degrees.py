"""Tests for the friendship-degree model (paper §2.3, Fig. 2b)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.degrees import (
    FACEBOOK_MAX_DEGREE,
    PERCENTILE_TABLE,
    average_degree_for,
    build_percentile_table,
    degree_histogram,
    facebook_average_degree,
    target_degree,
)


class TestPercentileTable:
    def test_hundred_percentiles(self):
        assert len(PERCENTILE_TABLE) == 100

    def test_monotone_non_decreasing(self):
        maxima = [hi for __, hi in PERCENTILE_TABLE]
        assert maxima == sorted(maxima)

    def test_bands_well_formed(self):
        for lo, hi in PERCENTILE_TABLE:
            assert 1 <= lo <= hi <= FACEBOOK_MAX_DEGREE

    def test_top_percentile_hits_cap(self):
        assert PERCENTILE_TABLE[-1][1] == FACEBOOK_MAX_DEGREE

    def test_calibration_median(self):
        """Published Facebook median degree ≈ 100."""
        lo, hi = PERCENTILE_TABLE[50]
        assert 40 <= lo <= 160

    def test_calibration_mean(self):
        """Published Facebook mean degree ≈ 190."""
        assert 100 <= facebook_average_degree() <= 320

    def test_build_is_deterministic(self):
        assert build_percentile_table() == PERCENTILE_TABLE


class TestScalingLaw:
    def test_facebook_size_gives_about_200(self):
        """Paper: at 700M persons the average degree is around 200."""
        assert 170 <= average_degree_for(700_000_000) <= 230

    def test_smaller_network_smaller_degree(self):
        assert average_degree_for(1_000) < average_degree_for(1_000_000)

    def test_small_scale_reasonable(self):
        degree = average_degree_for(10_000)
        assert 5 < degree < 100


class TestTargetDegree:
    def test_deterministic_per_person(self):
        assert target_degree(5, 1000, seed=1) \
            == target_degree(5, 1000, seed=1)

    def test_varies_across_persons(self):
        degrees = {target_degree(i, 1000, seed=1) for i in range(50)}
        assert len(degrees) > 5

    def test_bounded_by_population(self):
        for serial in range(100):
            assert 1 <= target_degree(serial, 50, seed=2) <= 49

    def test_mean_tracks_scaling_law(self):
        n = 2000
        degrees = [target_degree(i, n, seed=3) for i in range(n)]
        mean = sum(degrees) / n
        target = average_degree_for(n)
        # Heavy-tailed, so allow a generous band around the target.
        assert target / 3 <= mean <= target * 3

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=100_000), st.integers())
    @settings(max_examples=100)
    def test_always_valid(self, serial, n, seed):
        degree = target_degree(serial, n, seed)
        assert 1 <= degree <= n - 1


class TestHistogram:
    def test_buckets(self):
        histogram = degree_histogram([1, 1, 2, 5, 5, 5], bucket=1)
        assert histogram == {1: 2, 2: 1, 5: 3}

    def test_bucketed(self):
        histogram = degree_histogram([0, 4, 5, 9, 10], bucket=5)
        assert histogram == {0: 2, 5: 2, 10: 1}

    def test_empty(self):
        assert degree_histogram([]) == {}
