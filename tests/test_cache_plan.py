"""Plan cache: config parsing, counters, and optimizer integration."""

from __future__ import annotations

import pytest

from repro.cache import CacheConfig, CacheStats, PlanCache
from repro.engine import snb_queries
from repro.telemetry.metrics import MetricRegistry


# -- CacheConfig -----------------------------------------------------------

def test_from_spec_all_and_none():
    assert CacheConfig.from_spec("all") == CacheConfig.enabled()
    assert CacheConfig.from_spec("on") == CacheConfig.enabled()
    for spec in ("none", "off", "", "  "):
        assert CacheConfig.from_spec(spec) == CacheConfig.none()
    assert not CacheConfig.none().any_enabled
    assert CacheConfig.enabled().any_enabled


def test_from_spec_component_list():
    config = CacheConfig.from_spec("plan,adjacency")
    assert config.plan and config.adjacency and not config.memo
    assert CacheConfig.from_spec("memo").describe() == "memo"
    assert CacheConfig.enabled().describe() == "plan+adjacency+memo"
    assert CacheConfig.none().describe() == "none"


def test_from_spec_rejects_unknown():
    with pytest.raises(ValueError, match="bogus"):
        CacheConfig.from_spec("plan,bogus")


# -- CacheStats ------------------------------------------------------------

def test_stats_hit_rate_and_rows():
    stats = CacheStats("demo", hits=6, misses=2, extensions=2)
    assert stats.requests == 10
    assert stats.hit_rate == pytest.approx(0.8)
    assert CacheStats("empty").hit_rate == 0.0
    row = stats.as_row()
    assert row["cache"] == "demo" and row["hit_rate"] == 0.8


def test_stats_publish_is_delta_idempotent():
    stats = CacheStats("demo", hits=5, misses=1)
    registry = MetricRegistry()
    stats.publish(registry)
    stats.publish(registry)  # no double counting
    snapshot = registry.snapshot()
    assert snapshot["cache.demo.hits"] == 5
    assert snapshot["cache.demo.misses"] == 1
    stats.hits += 3
    stats.publish(registry)
    snapshot = registry.snapshot()
    assert snapshot["cache.demo.hits"] == 8
    assert snapshot["cache.demo.hit_rate"] == pytest.approx(8 / 9)


def test_stats_publish_fresh_registry_gets_totals():
    stats = CacheStats("demo", hits=4)
    first, second = MetricRegistry(), MetricRegistry()
    stats.publish(first)
    stats.publish(second)  # swapped registry still sees full totals
    assert second.snapshot()["cache.demo.hits"] == 4


# -- PlanCache unit behaviour ---------------------------------------------

def test_plan_cache_get_put_counts():
    cache = PlanCache()
    assert cache.get(9, 1) is None
    cache.put(9, 1, [("inl",), ("hash",)])
    assert cache.get(9, 1) == (("inl",), ("hash",))
    assert cache.get(9, 2) is None  # new stats epoch → re-plan
    assert cache.stats.hits == 1 and cache.stats.misses == 2
    assert len(cache) == 1


def test_plan_cache_eviction_and_invalidate():
    cache = PlanCache(max_entries=2)
    cache.put(1, 1, ["a"])
    cache.put(2, 1, ["b"])
    cache.put(3, 1, ["c"])  # over capacity: wholesale reset
    assert cache.stats.evictions == 1
    assert len(cache) == 1
    cache.invalidate()
    assert len(cache) == 0
    assert cache.stats.invalidations == 1


# -- optimizer integration -------------------------------------------------

@pytest.fixture()
def q9_binding(curated_params):
    return curated_params.by_query[9][0]


def test_plan_served_from_cache_on_second_run(fresh_catalog, q9_binding):
    fresh_catalog.plan_cache = PlanCache()
    first = snb_queries.q9_pipeline(fresh_catalog, q9_binding)
    assert not first.from_cache
    second = snb_queries.q9_pipeline(fresh_catalog, q9_binding)
    assert second.from_cache
    assert [d.algorithm for d in second.decisions] \
        == [d.algorithm for d in first.decisions]
    assert second.execute() == first.execute()
    assert fresh_catalog.plan_cache.stats.hits == 1


def test_refresh_stats_forces_replan(fresh_catalog, q9_binding):
    fresh_catalog.plan_cache = PlanCache()
    snb_queries.q9_pipeline(fresh_catalog, q9_binding)
    assert fresh_catalog.version == 1
    assert fresh_catalog.refresh_stats() == 2
    replanned = snb_queries.q9_pipeline(fresh_catalog, q9_binding)
    assert not replanned.from_cache  # old epoch's plan not served
    assert snb_queries.q9_pipeline(fresh_catalog, q9_binding).from_cache


def test_forced_pipelines_bypass_cache(fresh_catalog, q9_binding):
    fresh_catalog.plan_cache = PlanCache()
    snb_queries.q9_pipeline(fresh_catalog, q9_binding)  # seeds the cache
    forced = snb_queries.q9_pipeline(fresh_catalog, q9_binding,
                                     force={0: "hash", 1: "hash"})
    assert not forced.from_cache
    assert [d.algorithm for d in forced.decisions] == ["hash", "hash"]
    # ... and the forced run did not poison the cached decisions.
    cached = snb_queries.q9_pipeline(fresh_catalog, q9_binding)
    assert cached.from_cache
    assert len(fresh_catalog.plan_cache) == 1


def test_catalog_without_cache_plans_every_time(fresh_catalog, q9_binding):
    assert fresh_catalog.plan_cache is None
    first = snb_queries.q9_pipeline(fresh_catalog, q9_binding)
    second = snb_queries.q9_pipeline(fresh_catalog, q9_binding)
    assert not first.from_cache and not second.from_cache
