"""Tests for the query mix, random walk and calibration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.rng import RandomStream
from repro.workload import (
    QueryMix,
    RandomWalkConfig,
    ReadOperation,
    TABLE4_FREQUENCIES,
    build_mixed_stream,
    calibrate_frequencies,
    expected_walk_length,
    extract_entities,
    run_walk,
    scale_frequencies,
    solve_walk_probability,
)


class TestTable4:
    def test_paper_values(self):
        """Table 4 verbatim."""
        assert TABLE4_FREQUENCIES == {
            1: 132, 2: 240, 3: 550, 4: 161, 5: 534, 6: 1615, 7: 144,
            8: 13, 9: 1425, 10: 217, 11: 133, 12: 238, 13: 57, 14: 144,
        }

    def test_q8_most_frequent(self):
        """The cheapest query (Q8) runs most often, the heaviest (Q6,
        Q9) least often — the equal-CPU-share calibration."""
        assert min(TABLE4_FREQUENCIES.values()) \
            == TABLE4_FREQUENCIES[8]
        assert TABLE4_FREQUENCIES[6] == max(TABLE4_FREQUENCIES.values())


class TestQueryMix:
    def test_due_queries_at_multiples(self):
        mix = QueryMix({1: 10, 2: 25})
        assert mix.due_queries(10) == [1]
        assert mix.due_queries(25) == [2]
        assert mix.due_queries(50) == [1, 2]
        assert mix.due_queries(7) == []
        assert mix.due_queries(0) == []

    def test_executions_in(self):
        mix = QueryMix({1: 10, 2: 25})
        assert mix.executions_in(100) == {1: 10, 2: 4}

    def test_reads_per_update(self):
        mix = QueryMix({1: 10, 2: 20})
        assert mix.reads_per_update() == pytest.approx(0.15)

    def test_invalid_frequency(self):
        with pytest.raises(WorkloadError):
            QueryMix({1: 0})


class TestMixedStream:
    def test_read_counts_match_frequencies(self, split, curated_params):
        mix = QueryMix()
        stream = build_mixed_stream(split.updates, curated_params, mix)
        reads = [op for op in stream
                 if isinstance(op, ReadOperation)]
        expected = mix.executions_in(len(split.updates))
        for query_id, count in expected.items():
            got = sum(1 for op in reads if op.query_id == query_id)
            assert got == count

    def test_stream_sorted_by_due_time(self, split, curated_params):
        stream = build_mixed_stream(split.updates, curated_params)
        dues = [op.due_time for op in stream]
        assert dues == sorted(dues)

    def test_reads_cycle_parameter_bindings(self, split,
                                            curated_params):
        stream = build_mixed_stream(split.updates, curated_params)
        q8_params = [op.params for op in stream
                     if isinstance(op, ReadOperation)
                     and op.query_id == 8]
        bindings = curated_params.by_query[8]
        for index, params in enumerate(q8_params[:12]):
            assert params == bindings[index % len(bindings)]

    def test_reads_are_not_dependencies(self, split, curated_params):
        stream = build_mixed_stream(split.updates, curated_params)
        for op in stream:
            if isinstance(op, ReadOperation):
                assert not op.is_dependency
                assert not op.is_dependent
                assert op.op_class == f"Q{op.query_id}"


class TestRandomWalk:
    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            RandomWalkConfig(probability=1.5)
        with pytest.raises(WorkloadError):
            RandomWalkConfig(delta=0.0)

    def test_extract_entities(self):
        from repro.queries.complex_reads.q2 import Q2Result

        row = Q2Result(person_id=11, first_name="A", last_name="B",
                       message_id=22, content="", creation_date=0,
                       is_post=True)
        entities = extract_entities([row])
        assert ("person", 11) in entities
        assert ("message", 22) in entities

    def test_extract_handles_none_and_scalars(self):
        assert extract_entities(None) == []
        assert extract_entities([None]) == []
        assert extract_entities(42) == []

    def test_walk_terminates_and_counts(self):
        executed = []

        def execute_short(query_id, entity):
            executed.append((query_id, entity))
            return None

        count = run_walk(execute_short, [("person", 1)],
                         RandomWalkConfig(probability=1.0, delta=0.25),
                         RandomStream(3))
        assert count == len(executed)
        assert count <= 4  # P drops to 0 after 4 steps

    def test_walk_zero_probability(self):
        count = run_walk(lambda q, e: None, [("person", 1)],
                         RandomWalkConfig(probability=0.0, delta=0.1),
                         RandomStream(1))
        assert count == 0

    def test_walk_uses_compatible_queries(self):
        seen = []

        def execute_short(query_id, entity):
            seen.append((query_id, entity[0]))
            return None

        run_walk(execute_short,
                 [("person", 1), ("message", 2)],
                 RandomWalkConfig(probability=1.0, delta=0.05),
                 RandomStream(5))
        for query_id, kind in seen:
            if kind == "person":
                assert query_id in (1, 2, 3)
            else:
                assert query_id in (4, 5, 6, 7)


class TestCalibration:
    def test_expected_length_math(self):
        # P=1.0, Δ=0.5: step survives with prob 1.0, then 1.0*0.5.
        assert expected_walk_length(1.0, 0.5) == pytest.approx(1.5)

    def test_expected_length_monotone_in_p(self):
        lengths = [expected_walk_length(p, 0.2)
                   for p in (0.2, 0.5, 0.8, 1.0)]
        assert lengths == sorted(lengths)

    def test_expected_length_matches_simulation(self):
        config = RandomWalkConfig(probability=0.8, delta=0.2)
        stream = RandomStream(7)
        total = 0
        trials = 4000
        for __ in range(trials):
            total += run_walk(lambda q, e: None, [("person", 1)],
                              config, stream)
        simulated = total / trials
        predicted = expected_walk_length(0.8, 0.2)
        assert abs(simulated - predicted) < 0.1

    def test_solver_inverts_expected_length(self):
        for target in (0.5, 1.0, 2.0):
            p = solve_walk_probability(target, 0.1)
            assert expected_walk_length(p, 0.1) \
                == pytest.approx(target, abs=0.02)

    def test_solver_clamps_at_one(self):
        assert solve_walk_probability(100.0, 0.2) == 1.0

    def test_calibrated_shares(self):
        """Calibrated frequencies realize the 10/50/40 split."""
        complex_means = {qid: 0.010 * qid for qid in range(1, 15)}
        update_mean = 0.001
        short_mean = 0.0005
        result = calibrate_frequencies(complex_means, update_mean,
                                       short_mean)
        total_per_update = update_mean / 0.10
        complex_time = sum(complex_means[qid] / freq for qid, freq
                           in result.frequencies.items())
        assert complex_time == pytest.approx(0.5 * total_per_update,
                                             rel=0.25)
        short_time = result.short_reads_per_update * short_mean
        assert short_time == pytest.approx(0.4 * total_per_update,
                                           rel=0.05)

    def test_heavier_queries_less_frequent(self):
        complex_means = {1: 0.001, 2: 0.100}
        result = calibrate_frequencies(complex_means, 0.001, 0.0005)
        assert result.frequencies[2] > result.frequencies[1]

    def test_invalid_means_rejected(self):
        with pytest.raises(WorkloadError):
            calibrate_frequencies({1: 0.01}, 0.0, 0.001)
        with pytest.raises(WorkloadError):
            calibrate_frequencies({1: 0.0}, 0.001, 0.001)

    def test_scale_frequencies_growth(self):
        """Frequencies grow with D^hops as the dataset scales up."""
        scaled = scale_frequencies(TABLE4_FREQUENCIES,
                                   old_persons=10_000,
                                   new_persons=1_000_000,
                                   old_degree=20.0, new_degree=40.0)
        # 1-hop queries grow 2×, 2-hop 4×, 3-hop 8×.
        assert scaled[2] == pytest.approx(TABLE4_FREQUENCIES[2] * 2,
                                          abs=1)
        assert scaled[9] == pytest.approx(TABLE4_FREQUENCIES[9] * 4,
                                          abs=2)
        assert scaled[13] == pytest.approx(TABLE4_FREQUENCIES[13] * 8,
                                           abs=4)

    @given(st.floats(min_value=0.05, max_value=1.0),
           st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=80)
    def test_expected_length_bounded(self, probability, delta):
        length = expected_walk_length(probability, delta)
        assert 0 <= length <= probability / delta + 1
