"""End-to-end telemetry: driver runs produce loadable, nested traces.

The acceptance path of the subsystem: a driver run with tracing enabled
emits a valid Chrome trace-event JSON whose spans nest
``scheduler.partition.* → op.* → connector.execute → query.* →
engine.*``, and the scheduler's T_GC waits and the store's commits are
visible in the same trace.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.core.connector import InteractiveConnector
from repro.core.sut import EngineSUT, StoreSUT
from repro.driver import DriverConfig, StoreConnector, WorkloadDriver
from repro.driver.modes import ExecutionMode
from repro.store import load_network
from repro.workload.operations import ReadOperation


@pytest.fixture()
def traced():
    tracer = telemetry.enable(fresh_registry=True)
    try:
        yield tracer
    finally:
        telemetry.disable()


def _read_stream(curated_params, query_ids=(9, 2, 13), count=2):
    ops = []
    due = 1_000_000
    for query_id in query_ids:
        for params in curated_params.by_query[query_id][:count]:
            ops.append(ReadOperation(query_id=query_id, params=params,
                                     due_time=due, walk_seed=due))
            due += 1_000
    return ops


def _parents(events):
    events = [event for event in events if event["ph"] != "M"]
    by_id = {event["args"]["span_id"]: event for event in events}

    def chain(event):
        names = [event["name"]]
        current = event
        while current["args"]["parent_id"] is not None:
            current = by_id[current["args"]["parent_id"]]
            names.append(current["name"])
        return names

    return chain


class TestDriverTraceHierarchy:
    def test_chrome_trace_nests_scheduler_to_engine(
            self, loaded_catalog, curated_params, traced, tmp_path):
        """The acceptance criterion: load the trace back, assert the
        scheduler → connector → query → engine-operator hierarchy."""
        connector = InteractiveConnector(EngineSUT(loaded_catalog),
                                         seed=11)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=2, mode=ExecutionMode.PARALLEL))
        driver.run(_read_stream(curated_params))

        path = tmp_path / "trace.json"
        telemetry.write_chrome_trace(traced, path)
        document = json.loads(path.read_text())
        events = [event for event in document["traceEvents"]
                  if event["ph"] != "M"]
        assert document["displayTimeUnit"] == "ms"
        assert all(event["ph"] == "X" for event in events)

        chain = _parents(events)
        engine_events = [event for event in events
                         if event["name"].startswith("engine.")]
        assert engine_events, "no engine-operator spans in the trace"
        # Every engine-operator span sits under the full driver stack.
        for event in engine_events:
            names = chain(event)
            assert names[-1].startswith("scheduler.partition."), names
            kinds = [name.split(".", 1)[0] for name in names]
            for required in ("query", "connector", "op", "scheduler"):
                assert required in kinds, names
            # connector wraps query, op wraps connector, in that order.
            assert kinds.index("query") < kinds.index("connector") \
                < kinds.index("op") < kinds.index("scheduler")

    def test_engine_spans_carry_tuples_out(self, loaded_catalog,
                                           curated_params, traced):
        connector = InteractiveConnector(EngineSUT(loaded_catalog),
                                         seed=11)
        driver = WorkloadDriver(connector, DriverConfig(num_partitions=1))
        driver.run(_read_stream(curated_params, query_ids=(9,)))
        engine_spans = [span for span in traced.finished_spans()
                        if span.name.startswith("engine.")]
        assert engine_spans
        for span in engine_spans:
            assert "tuples_out" in span.attributes
            assert span.attributes["tuples_out"] >= 0

    def test_short_reads_traced_inside_connector(
            self, loaded_store, curated_params, traced):
        connector = InteractiveConnector(StoreSUT(loaded_store), seed=11)
        driver = WorkloadDriver(connector, DriverConfig(num_partitions=1))
        driver.run(_read_stream(curated_params, query_ids=(9, 2)))
        if connector.short_reads_executed == 0:
            pytest.skip("walk produced no short reads for these seeds")
        short = [span for span in traced.finished_spans()
                 if span.name.startswith("query.S")]
        assert len(short) == connector.short_reads_executed


class TestUpdateRunTraced:
    def test_store_commits_nest_under_ops(self, split, traced):
        store = load_network(split.bulk)
        driver = WorkloadDriver(StoreConnector(store), DriverConfig(
            num_partitions=2, mode=ExecutionMode.PARALLEL))
        driver.run(split.updates[:200])
        spans = traced.finished_spans()
        by_id = {span.span_id: span for span in spans}
        commits = [span for span in spans if span.name == "store.commit"]
        assert commits
        for span in commits:
            parent = by_id[span.parent_id]
            assert parent.name.startswith("op.ADD_")
            assert span.attributes["inserts"] + span.attributes["edges"] \
                > 0

    def test_driver_metrics_bridged_to_registry(self, split, traced):
        store = load_network(split.bulk)
        driver = WorkloadDriver(StoreConnector(store), DriverConfig(
            num_partitions=2, mode=ExecutionMode.PARALLEL))
        report = driver.run(split.updates[:200])
        registry = telemetry.get_registry()
        snapshot = registry.snapshot()
        assert snapshot["driver.operations"] == 200
        assert snapshot["driver.throughput_ops"] == pytest.approx(
            report.metrics.throughput)
        name = next(iter(report.metrics.per_class))
        stats = report.metrics.per_class[name]
        assert snapshot[f"driver.latency_ms.{name}.p99"] == pytest.approx(
            stats.p99_ms)

    def test_gc_waits_recorded(self, split, traced):
        store = load_network(split.bulk)
        driver = WorkloadDriver(StoreConnector(store), DriverConfig(
            num_partitions=4, mode=ExecutionMode.PARALLEL))
        driver.run(split.updates[:500])
        waits = [span for span in traced.finished_spans()
                 if span.name == "scheduler.wait.gc"]
        histogram = telemetry.get_registry().histogram(
            telemetry.GC_WAIT_HISTOGRAM)
        assert len(waits) == histogram.count
        breakdown = telemetry.wait_time_breakdown(traced)
        assert len(breakdown) == 4
        for entry in breakdown.values():
            assert entry["total"] >= 0.0


class TestDatagenTrace:
    def test_pipeline_stages_become_spans(self, traced):
        from repro.datagen import DatagenConfig, generate

        generate(DatagenConfig(num_persons=30, seed=5))
        names = {span.name for span in traced.finished_spans()
                 if span.name.startswith("datagen.")}
        assert {"datagen.universe", "datagen.persons",
                "datagen.friendships", "datagen.activity"} <= names


class TestCliTrace:
    def test_benchmark_trace_flag_writes_chrome_json(self, tmp_path,
                                                     capsys):
        from repro.cli import main

        path = tmp_path / "run.json"
        code = main(["benchmark", "--persons", "100", "--partitions",
                     "2", "--sut", "engine", "--trace", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace written" in out
        assert "scheduler wait-time breakdown" in out
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        chain = _parents(events)
        engine_events = [event for event in events
                         if event["name"].startswith("engine.")]
        assert engine_events
        names = chain(engine_events[0])
        assert names[-1].startswith("scheduler.partition.")
        assert telemetry.active is False  # session closed cleanly

    def test_generate_trace_flag_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "datagen.jsonl"
        code = main(["generate", "--persons", "40", "--seed", "3",
                     "--trace", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "JSON-lines" in out
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert {"datagen.persons", "datagen.friendships"} \
            <= {record["name"] for record in records}
