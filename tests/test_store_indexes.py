"""Tests for secondary indexes (hash + ordered) and bulk loading."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFoundError
from repro.store.graph import GraphStore, IsolationLevel
from repro.store.indexes import HashIndex, OrderedIndex


class TestHashIndexUnit:
    def test_insert_lookup(self):
        index = HashIndex()
        index.insert("Ada", 1, ts=1)
        index.insert("Ada", 2, ts=2)
        assert index.lookup("Ada", snapshot=2) == [1, 2]

    def test_snapshot_filtering(self):
        index = HashIndex()
        index.insert("Ada", 1, ts=1)
        index.insert("Ada", 2, ts=5)
        assert index.lookup("Ada", snapshot=3) == [1]

    def test_missing_key(self):
        assert HashIndex().lookup("nobody", snapshot=10) == []

    def test_len(self):
        index = HashIndex()
        index.insert("a", 1, 1)
        index.insert("b", 2, 1)
        index.insert("a", 3, 1)
        assert len(index) == 3


class TestOrderedIndexUnit:
    def test_range_inclusive(self):
        index = OrderedIndex()
        for value in (10, 20, 30, 40):
            index.insert(value, value * 100, ts=1)
        result = list(index.range(20, 30, snapshot=1))
        assert result == [(20, 2000), (30, 3000)]

    def test_open_range(self):
        index = OrderedIndex()
        for value in (10, 20, 30):
            index.insert(value, value, ts=1)
        assert len(list(index.range(snapshot=1))) == 3
        assert len(list(index.range(low=20, snapshot=1))) == 2
        assert len(list(index.range(high=20, snapshot=1))) == 2

    def test_reverse(self):
        index = OrderedIndex()
        for value in (1, 2, 3):
            index.insert(value, value, ts=1)
        keys = [key for key, __ in index.range(snapshot=1, reverse=True)]
        assert keys == [3, 2, 1]

    def test_snapshot_filtering(self):
        index = OrderedIndex()
        index.insert(10, 1, ts=1)
        index.insert(20, 2, ts=9)
        assert list(index.range(snapshot=5)) == [(10, 1)]

    def test_extend_sorted(self):
        index = OrderedIndex()
        index.extend_sorted([(1, 10, 1), (2, 20, 1), (3, 30, 1)])
        index.insert(2, 25, 2)
        keys = [key for key, __ in index.range(snapshot=5)]
        assert keys == [1, 2, 2, 3]

    def test_extend_sorted_rejects_out_of_order(self):
        index = OrderedIndex()
        index.extend_sorted([(5, 1, 1)])
        with pytest.raises(ValueError):
            index.extend_sorted([(3, 2, 1)])

    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    max_size=60))
    @settings(max_examples=60)
    def test_range_matches_filter(self, values):
        index = OrderedIndex()
        for i, value in enumerate(values):
            index.insert(value, i, ts=1)
        low, high = -20, 20
        got = sorted(v for v, __ in index.range(low, high, snapshot=1))
        expected = sorted(v for v in values if low <= v <= high)
        assert got == expected


class TestStoreIndexes:
    def test_hash_lookup_via_transaction(self):
        store = GraphStore()
        store.create_hash_index("person", "name")
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {"name": "Ada"})
            txn.insert_vertex("person", 2, {"name": "Bob"})
            txn.insert_vertex("person", 3, {"name": "Ada"})
        with store.transaction() as txn:
            assert sorted(txn.lookup("person", "name", "Ada")) == [1, 3]

    def test_lookup_sees_own_writes(self):
        store = GraphStore()
        store.create_hash_index("person", "name")
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {"name": "Ada"})
            assert txn.lookup("person", "name", "Ada") == [1]

    def test_lookup_without_index_raises(self):
        store = GraphStore()
        with store.transaction() as txn:
            with pytest.raises(NotFoundError):
                txn.lookup("person", "name", "Ada")

    def test_index_respects_snapshot(self):
        store = GraphStore()
        store.create_hash_index("person", "name")
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {"name": "Ada"})
        reader = store.transaction(IsolationLevel.SNAPSHOT)
        with store.transaction() as writer:
            writer.insert_vertex("person", 2, {"name": "Ada"})
        assert reader.lookup("person", "name", "Ada") == [1]
        reader.commit()

    def test_range_scan_via_transaction(self):
        store = GraphStore()
        store.create_ordered_index("post", "date")
        with store.transaction() as txn:
            for i, date in enumerate((30, 10, 20)):
                txn.insert_vertex("post", i, {"date": date})
        with store.transaction() as txn:
            keys = [key for key, __ in
                    txn.scan_range("post", "date", 10, 20)]
            assert keys == [10, 20]

    def test_range_scan_without_index_raises(self):
        store = GraphStore()
        with store.transaction() as txn:
            with pytest.raises(NotFoundError):
                list(txn.scan_range("post", "date"))

    def test_bulk_load_populates_indexes(self):
        store = GraphStore()
        store.create_hash_index("person", "name")
        store.create_ordered_index("person", "age")
        store.bulk_insert_vertices("person", [
            (1, {"name": "Ada", "age": 36}),
            (2, {"name": "Bob", "age": 30}),
        ])
        with store.transaction() as txn:
            assert txn.lookup("person", "name", "Bob") == [2]
            ages = [key for key, __ in txn.scan_range("person", "age")]
            assert ages == [30, 36]
