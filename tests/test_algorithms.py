"""Tests for the SNB-Algorithms preview, cross-validated with networkx."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms import (
    average_clustering,
    bfs_levels,
    community_sizes,
    graph500_bfs_sample,
    knows_graph,
    label_propagation,
    local_clustering,
    pagerank,
)
from repro.errors import ReproError


@pytest.fixture(scope="module")
def adjacency(network):
    return knows_graph(network)


@pytest.fixture(scope="module")
def nx_graph(network):
    graph = nx.Graph()
    graph.add_nodes_from(p.id for p in network.persons)
    graph.add_edges_from((e.person1_id, e.person2_id)
                         for e in network.knows)
    return graph


class TestGraphView:
    def test_all_persons_present(self, network, adjacency):
        assert set(adjacency) == {p.id for p in network.persons}

    def test_symmetric(self, adjacency):
        for node, friends in adjacency.items():
            for friend in friends:
                assert node in adjacency[friend]

    def test_edge_count(self, network, adjacency):
        half_edges = sum(len(friends) for friends in adjacency.values())
        assert half_edges == 2 * len(network.knows)


class TestPageRank:
    def test_sums_to_one(self, adjacency):
        scores = pagerank(adjacency)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_matches_networkx(self, adjacency, nx_graph):
        ours = pagerank(adjacency, damping=0.85, tolerance=1e-10)
        reference = nx.pagerank(nx_graph, alpha=0.85, tol=1e-10)
        for node in ours:
            assert ours[node] == pytest.approx(reference[node],
                                               rel=0.02, abs=1e-5)

    def test_hub_ranks_higher_than_leaf(self, adjacency):
        scores = pagerank(adjacency)
        degrees = {node: len(friends)
                   for node, friends in adjacency.items()}
        hub = max(degrees, key=degrees.get)
        leaf = min(degrees, key=degrees.get)
        assert scores[hub] > scores[leaf]

    def test_empty_graph(self):
        assert pagerank({}) == {}

    def test_invalid_damping(self, adjacency):
        with pytest.raises(ReproError):
            pagerank(adjacency, damping=1.5)

    def test_dangling_nodes_handled(self):
        scores = pagerank({1: {2}, 2: {1}, 3: set()})
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)
        assert scores[3] > 0


class TestBfs:
    def test_matches_networkx(self, adjacency, nx_graph, network):
        source = network.persons[0].id
        ours = bfs_levels(adjacency, source)
        reference = nx.single_source_shortest_path_length(nx_graph,
                                                          source)
        assert ours == dict(reference)

    def test_graph500_sample(self, adjacency):
        results = graph500_bfs_sample(adjacency, num_roots=5, seed=1)
        assert len(results) == 5
        for root, reached, eccentricity in results:
            assert root in adjacency
            assert 1 <= reached <= len(adjacency)
            assert eccentricity >= 0

    def test_graph500_deterministic(self, adjacency):
        assert graph500_bfs_sample(adjacency, 3, seed=9) \
            == graph500_bfs_sample(adjacency, 3, seed=9)


class TestLabelPropagation:
    def test_labels_cover_all_nodes(self, adjacency):
        labels = label_propagation(adjacency, seed=4)
        assert set(labels) == set(adjacency)

    def test_isolated_nodes_keep_own_label(self):
        labels = label_propagation({1: set(), 2: {3}, 3: {2}})
        assert labels[1] == 1

    def test_two_cliques_two_communities(self):
        clique_a = {1: {2, 3}, 2: {1, 3}, 3: {1, 2}}
        clique_b = {4: {5, 6}, 5: {4, 6}, 6: {4, 5}}
        adjacency = {**clique_a, **clique_b}
        # One weak bridge.
        adjacency[3] = adjacency[3] | {4}
        adjacency[4] = adjacency[4] | {3}
        labels = label_propagation(adjacency, seed=1)
        assert labels[1] == labels[2] == labels[3] or \
            labels[1] == labels[2]
        assert labels[5] == labels[6]

    def test_community_sizes_sorted(self, adjacency):
        sizes = community_sizes(label_propagation(adjacency, seed=2))
        counts = list(sizes.values())
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == len(adjacency)

    def test_finds_nontrivial_communities(self, adjacency):
        """The correlated generator produces community structure: label
        propagation must find communities larger than singletons."""
        sizes = community_sizes(label_propagation(adjacency, seed=3))
        assert max(sizes.values()) >= 5


class TestClustering:
    def test_matches_networkx(self, adjacency, nx_graph, network):
        for person in network.persons[:40]:
            ours = local_clustering(adjacency, person.id)
            reference = nx.clustering(nx_graph, person.id)
            assert ours == pytest.approx(reference)

    def test_average_matches_networkx(self, adjacency, nx_graph):
        assert average_clustering(adjacency) \
            == pytest.approx(nx.average_clustering(nx_graph))

    def test_triangle(self):
        triangle = {1: {2, 3}, 2: {1, 3}, 3: {1, 2}}
        assert local_clustering(triangle, 1) == 1.0

    def test_star_is_zero(self):
        star = {0: {1, 2, 3}, 1: {0}, 2: {0}, 3: {0}}
        assert local_clustering(star, 0) == 0.0

    def test_homophily_beats_random_graph(self, network, adjacency,
                                          nx_graph):
        """DATAGEN's correlated friendships cluster far more than a
        degree-matched Erdős–Rényi graph (the paper's realism claim
        [13])."""
        n = nx_graph.number_of_nodes()
        m = nx_graph.number_of_edges()
        random_graph = nx.gnm_random_graph(n, m, seed=1)
        ours = average_clustering(adjacency)
        random_clustering = nx.average_clustering(random_graph)
        assert ours > 2 * max(random_clustering, 1e-6)
