"""Tests for the volcano operators."""

from __future__ import annotations

import pytest

from repro.engine.operators import (
    Distinct,
    Filter,
    GroupAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexRangeScan,
    KeyLookup,
    Limit,
    Project,
    Scan,
    Sort,
    TopK,
    TransitiveExpand,
    Union,
    collect_cardinalities,
)
from repro.engine.rows import Schema, Table


def _people():
    table = Table("person", Schema(("id", "name", "age")),
                  primary_key="id")
    table.create_hash_index("name")
    table.create_ordered_index("age")
    table.bulk_load([(1, "Ada", 36), (2, "Bob", 30), (3, "Ada", 50),
                     (4, "Eve", 28)])
    return table


def _edges():
    table = Table("knows", Schema(("person1_id", "person2_id")))
    table.create_hash_index("person1_id")
    pairs = [(1, 2), (2, 1), (2, 3), (3, 2), (3, 4), (4, 3)]
    table.bulk_load(pairs)
    return table


class TestScans:
    def test_scan_all(self):
        assert len(Scan(_people()).execute()) == 4

    def test_scan_with_predicate(self):
        rows = Scan(_people(), lambda r: r[2] > 30).execute()
        assert {row[0] for row in rows} == {1, 3}

    def test_range_scan(self):
        rows = IndexRangeScan(_people(), 28, 36).execute()
        assert [row[2] for row in rows] == [28, 30, 36]

    def test_range_scan_reverse(self):
        rows = IndexRangeScan(_people(), reverse=True).execute()
        assert [row[2] for row in rows] == [50, 36, 30, 28]

    def test_key_lookup_pk(self):
        rows = KeyLookup(_people(), [2, 99, 1]).execute()
        assert [row[0] for row in rows] == [2, 1]

    def test_key_lookup_hash(self):
        rows = KeyLookup(_people(), ["Ada"], column="name").execute()
        assert {row[0] for row in rows} == {1, 3}

    def test_tuple_counter(self):
        scan = Scan(_people())
        scan.execute()
        assert scan.tuples_out == 4
        scan.reset_counters()
        assert scan.tuples_out == 0


class TestJoins:
    def test_inl_join_pk(self):
        edges = Scan(_edges(), lambda r: r[0] == 1)
        join = IndexNestedLoopJoin(edges, _people(), "person2_id")
        rows = join.execute()
        assert len(rows) == 1
        assert rows[0][:2] == (1, 2)
        assert rows[0][2:] == (2, "Bob", 30)

    def test_inl_join_hash_column(self):
        people = KeyLookup(_people(), [2])
        join = IndexNestedLoopJoin(people, _edges(), "id",
                                   inner_column="person1_id")
        rows = join.execute()
        assert {row[4] for row in rows} == {1, 3}

    def test_hash_join_matches_inl(self):
        people = KeyLookup(_people(), [2])
        inl = IndexNestedLoopJoin(people, _edges(), "id",
                                  inner_column="person1_id")
        inl_rows = sorted(inl.execute())
        people2 = KeyLookup(_people(), [2])
        hash_join = HashJoin(Scan(_edges()), people2, "person1_id",
                             "id", prefix="inner_")
        hash_rows = sorted(hash_join.execute())
        assert inl_rows == hash_rows
        assert inl.schema.columns == hash_join.schema.columns

    def test_hash_join_empty_probe(self):
        join = HashJoin(Scan(_edges()),
                        Scan(_people(), lambda r: False),
                        "person1_id", "id")
        assert join.execute() == []


class TestShaping:
    def test_filter(self):
        op = Filter(Scan(_people()), lambda r: r[1] == "Ada")
        assert len(op.execute()) == 2

    def test_project(self):
        op = Project(Scan(_people()), ["name", "id"])
        assert op.schema.columns == ("name", "id")
        assert op.execute()[0] == ("Ada", 1)

    def test_project_rename(self):
        op = Project(Scan(_people()), ["id"], ["person"])
        assert op.schema.columns == ("person",)

    def test_sort(self):
        op = Sort(Scan(_people()), key=lambda r: r[2])
        assert [row[2] for row in op.execute()] == [28, 30, 36, 50]

    def test_sort_descending(self):
        op = Sort(Scan(_people()), key=lambda r: r[2], descending=True)
        assert [row[2] for row in op.execute()] == [50, 36, 30, 28]

    def test_topk_matches_sort_limit(self):
        top = TopK(Scan(_people()), key=lambda r: r[2], k=2)
        assert [row[2] for row in top.execute()] == [28, 30]

    def test_topk_descending(self):
        top = TopK(Scan(_people()), key=lambda r: (r[2],), k=2,
                   descending=True)
        assert [row[2] for row in top.execute()] == [50, 36]

    def test_limit(self):
        assert len(Limit(Scan(_people()), 2).execute()) == 2
        assert len(Limit(Scan(_people()), 99).execute()) == 4

    def test_distinct(self):
        op = Distinct(Project(Scan(_people()), ["name"]))
        assert sorted(op.execute()) == [("Ada",), ("Bob",), ("Eve",)]

    def test_union(self):
        a = Scan(_people(), lambda r: r[2] < 31)
        b = Scan(_people(), lambda r: r[2] > 40)
        assert len(Union([a, b]).execute()) == 3

    def test_union_empty_rejected(self):
        import pytest

        with pytest.raises(Exception):
            Union([])


class TestAggregate:
    def test_count_by_group(self):
        op = GroupAggregate(Scan(_people()), ["name"],
                            {"n": ("count", None)})
        result = dict(op.execute())
        assert result == {"Ada": 2, "Bob": 1, "Eve": 1}

    def test_sum_min_max(self):
        op = GroupAggregate(Scan(_people()), ["name"],
                            {"total": ("sum", "age"),
                             "young": ("min", "age"),
                             "old": ("max", "age")})
        rows = {row[0]: row[1:] for row in op.execute()}
        assert rows["Ada"] == (86, 36, 50)

    def test_unknown_aggregate(self):
        op = GroupAggregate(Scan(_people()), ["name"],
                            {"x": ("median", "age")})
        with pytest.raises(Exception):
            op.execute()


class TestTransitiveExpand:
    def test_bfs_distances(self):
        expand = TransitiveExpand(_edges(), 1, max_depth=3)
        got = dict(expand)
        assert got == {2: 1, 3: 2, 4: 3}

    def test_depth_bound(self):
        expand = TransitiveExpand(_edges(), 1, max_depth=1)
        assert dict(expand) == {2: 1}

    def test_source_excluded(self):
        expand = TransitiveExpand(_edges(), 2, max_depth=5)
        assert 2 not in dict(expand)


class TestCardinalityCollection:
    def test_collects_whole_tree(self):
        scan = Scan(_people())
        filtered = Filter(scan, lambda r: r[2] > 30, label="older")
        filtered.execute()
        cards = collect_cardinalities(filtered)
        assert cards["older"] == 2
        assert cards["scan(person)"] == 4
