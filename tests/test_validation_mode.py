"""Tests for the cross-SUT validation mode."""

from __future__ import annotations

from repro.core import cross_validate, render_validation
from repro.core.validation import Mismatch, ValidationReport


class TestCrossValidate:
    def test_systems_agree(self, network, curated_params):
        report = cross_validate(network, curated_params)
        assert report.ok, render_validation(report)
        assert report.queries_checked == 21  # 14 complex + 7 short
        assert report.executions > 50

    def test_render_ok(self, network, curated_params):
        report = cross_validate(network, curated_params)
        text = render_validation(report)
        assert "OK — systems agree" in text
        assert "21 query templates" in text

    def test_render_mismatches(self):
        report = ValidationReport(queries_checked=1, executions=1)
        report.mismatches.append(Mismatch(
            query="Q9", params="p", store_rows=3, engine_rows=4,
            detail="complex read results differ"))
        text = render_validation(report)
        assert "MISMATCHES" in text
        assert "Q9" in text
        assert not report.ok

    def test_render_includes_first_differing_row(self):
        from repro.validation.canonical import diff_results

        left = [{"person_id": 1, "name": "Ada"}]
        right = [{"person_id": 1, "name": "Bob"}]
        report = ValidationReport(queries_checked=1, executions=1)
        report.mismatches.append(Mismatch(
            query="Q1", params="p", store_rows=1, engine_rows=1,
            detail="complex read results differ",
            diff=diff_results(left, right)))
        text = render_validation(report)
        assert "Ada" in text and "Bob" in text
        assert "row 0" in text

    def test_render_counts_hidden_mismatches(self):
        report = ValidationReport(queries_checked=1, executions=30)
        for i in range(25):
            report.mismatches.append(Mismatch(
                query=f"Q{1 + i % 14}", params=i, store_rows=1,
                engine_rows=2, detail="complex read results differ"))
        text = render_validation(report)
        assert "(+5 more mismatches)" in text

    def test_cli_crosscheck(self, capsys):
        from repro.cli import main

        code = main(["crosscheck", "--persons", "70", "--seed", "2",
                     "-k", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "systems agree" in out
