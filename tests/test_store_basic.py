"""Tests for basic graph-store operations."""

from __future__ import annotations

import pytest

from repro.errors import (
    DuplicateError,
    NotFoundError,
    TransactionStateError,
)
from repro.store.graph import Direction, GraphStore


@pytest.fixture()
def store():
    return GraphStore()


class TestVertices:
    def test_insert_and_read(self, store):
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {"name": "Ada"})
        with store.transaction() as txn:
            assert txn.vertex("person", 1) == {"name": "Ada"}

    def test_read_own_writes(self, store):
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {"name": "Ada"})
            assert txn.vertex("person", 1) == {"name": "Ada"}

    def test_missing_vertex_is_none(self, store):
        with store.transaction() as txn:
            assert txn.vertex("person", 404) is None

    def test_require_vertex_raises(self, store):
        with store.transaction() as txn:
            with pytest.raises(NotFoundError):
                txn.require_vertex("person", 404)

    def test_duplicate_insert_rejected_at_commit(self, store):
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {})
        with pytest.raises(DuplicateError):
            with store.transaction() as txn:
                txn.insert_vertex("person", 1, {})

    def test_duplicate_insert_within_txn_rejected(self, store):
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {})
            with pytest.raises(DuplicateError):
                txn.insert_vertex("person", 1, {})
            txn.abort()

    def test_update_merges_properties(self, store):
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {"name": "Ada", "age": 30})
        with store.transaction() as txn:
            txn.update_vertex("person", 1, age=31)
        with store.transaction() as txn:
            assert txn.vertex("person", 1) == {"name": "Ada", "age": 31}

    def test_update_missing_vertex_fails_at_commit(self, store):
        with pytest.raises(NotFoundError):
            with store.transaction() as txn:
                txn.update_vertex("person", 404, age=1)

    def test_update_then_read_in_txn(self, store):
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {"age": 30})
        with store.transaction() as txn:
            txn.update_vertex("person", 1, age=31)
            assert txn.vertex("person", 1)["age"] == 31

    def test_count_vertices(self, store):
        with store.transaction() as txn:
            for vid in range(5):
                txn.insert_vertex("person", vid, {})
        with store.transaction() as txn:
            assert txn.count_vertices("person") == 5
            assert txn.count_vertices("forum") == 0


class TestEdges:
    def test_directed_edge_both_directions_visible(self, store):
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {})
            txn.insert_vertex("person", 2, {})
            txn.insert_edge("knows", 1, 2, {"since": 5})
        with store.transaction() as txn:
            out = list(txn.neighbors("knows", 1, Direction.OUT))
            into = list(txn.neighbors("knows", 2, Direction.IN))
            assert out == [(2, {"since": 5})]
            assert into == [(1, {"since": 5})]

    def test_undirected_edge(self, store):
        with store.transaction() as txn:
            txn.insert_undirected_edge("knows", 1, 2)
        with store.transaction() as txn:
            assert txn.degree("knows", 1) == 1
            assert txn.degree("knows", 2) == 1

    def test_own_edges_visible_in_txn(self, store):
        with store.transaction() as txn:
            txn.insert_edge("likes", 1, 2)
            assert list(txn.neighbors("likes", 1)) == [(2, None)]
            assert list(txn.neighbors("likes", 2,
                                      Direction.IN)) == [(1, None)]

    def test_degree_counts(self, store):
        with store.transaction() as txn:
            for other in range(2, 7):
                txn.insert_edge("knows", 1, other)
        with store.transaction() as txn:
            assert txn.degree("knows", 1) == 5
            assert txn.degree("knows", 1, Direction.IN) == 0


class TestTransactionLifecycle:
    def test_abort_discards(self, store):
        txn = store.transaction()
        txn.insert_vertex("person", 1, {})
        txn.abort()
        with store.transaction() as reader:
            assert reader.vertex("person", 1) is None

    def test_exception_aborts(self, store):
        with pytest.raises(RuntimeError):
            with store.transaction() as txn:
                txn.insert_vertex("person", 1, {})
                raise RuntimeError("boom")
        with store.transaction() as reader:
            assert reader.vertex("person", 1) is None

    def test_use_after_commit_rejected(self, store):
        txn = store.transaction()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.vertex("person", 1)
        with pytest.raises(TransactionStateError):
            txn.insert_vertex("person", 1, {})

    def test_empty_commit_is_zero(self, store):
        txn = store.transaction()
        assert txn.commit() == 0

    def test_commit_counter(self, store):
        before = store.commit_count
        with store.transaction() as txn:
            txn.insert_vertex("person", 1, {})
        assert store.commit_count == before + 1

    def test_abort_counter(self, store):
        txn = store.transaction()
        txn.insert_vertex("person", 1, {})
        txn.abort()
        assert store.abort_count == 1
