"""Unit tests for the validation subsystem's canonical forms and
state snapshots."""

from __future__ import annotations

from dataclasses import dataclass

from repro.validation import (
    SECTIONS,
    canonical_json,
    canonicalize,
    diff_results,
    diff_snapshots,
    digest,
    snapshot_catalog,
    snapshot_digest,
    snapshot_store,
)


@dataclass(frozen=True)
class _Row:
    person_id: int
    name: str
    tags: tuple


class TestCanonicalize:
    def test_dataclass_to_dict(self):
        row = _Row(7, "Ada", ("a", "b"))
        assert canonicalize(row) == {
            "person_id": 7, "name": "Ada", "tags": ["a", "b"]}

    def test_none_and_scalars_pass_through(self):
        assert canonicalize(None) is None
        assert canonicalize(3) == 3

    def test_list_of_dataclasses(self):
        rows = [_Row(1, "x", ()), _Row(2, "y", (1,))]
        assert canonicalize(rows) == [
            {"person_id": 1, "name": "x", "tags": []},
            {"person_id": 2, "name": "y", "tags": [1]}]

    def test_canonical_json_is_key_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_digest_is_stable_and_content_sensitive(self):
        assert digest([1, 2]) == digest([1, 2])
        assert digest([1, 2]) != digest([2, 1])
        assert digest([1, 2]).startswith("sha256:")


class TestDiffResults:
    def test_equal_results(self):
        diff = diff_results([_Row(1, "x", ())], [_Row(1, "x", ())])
        assert diff.equal

    def test_differing_column_is_named(self):
        diff = diff_results([_Row(1, "x", ())], [_Row(1, "y", ())])
        assert not diff.equal
        assert diff.column_diffs[0].column == "name"
        assert diff.column_diffs[0].left == "x"
        assert diff.column_diffs[0].right == "y"

    def test_missing_row(self):
        diff = diff_results([_Row(1, "x", ())], [])
        assert diff.left_rows == 1 and diff.right_rows == 0
        assert diff.column_diffs[0].column == "<missing>"

    def test_scalar_results(self):
        diff = diff_results(None, _Row(1, "x", ()))
        assert diff.left_rows == 0 and diff.right_rows == 1

    def test_overflow_is_counted_not_dropped(self):
        left = [_Row(i, "a", ()) for i in range(10)]
        right = [_Row(i, "b", ()) for i in range(10)]
        diff = diff_results(left, right, max_diffs=3)
        assert len(diff.column_diffs) == 3
        assert diff.truncated == 7
        assert "(+9 more differing cells)" in diff.describe()


class TestSnapshots:
    def test_store_and_catalog_snapshots_agree(self, loaded_store,
                                               loaded_catalog):
        """The bulk-loaded network projects onto the same canonical
        state from both SUTs — the foundation of the state oracle."""
        left = snapshot_store(loaded_store)
        right = snapshot_catalog(loaded_catalog)
        diffs = diff_snapshots(left, right)
        assert not diffs, "\n".join(d.describe() for d in diffs)
        assert snapshot_digest(left) == snapshot_digest(right)

    def test_snapshot_covers_all_sections(self, loaded_store):
        snap = snapshot_store(loaded_store)
        assert set(snap) == set(SECTIONS)
        assert all(snap[s] for s in ("person", "knows", "message",
                                     "likes", "forum"))

    def test_diff_detects_one_sided_row(self, loaded_store,
                                        loaded_catalog, network):
        left = snapshot_store(loaded_store)
        right = snapshot_catalog(loaded_catalog)
        # Inject a like that only the catalog saw.
        right["likes"] = right["likes"] + [[999999, 1, 0, True]]
        diffs = diff_snapshots(left, right)
        assert len(diffs) == 1
        assert diffs[0].section == "likes"
        assert diffs[0].only_right and not diffs[0].only_left
        assert "999999" in diffs[0].describe("store", "engine")

    def test_diff_truncates_with_count(self, loaded_store,
                                       loaded_catalog):
        left = snapshot_store(loaded_store)
        right = snapshot_catalog(loaded_catalog)
        right["likes"] = right["likes"] + [
            [1000000 + i, 1, 0, True] for i in range(10)]
        diffs = diff_snapshots(left, right, max_rows=3)
        assert diffs[0].truncated == 7
        assert "more differing rows" in diffs[0].describe()
