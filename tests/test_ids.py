"""Tests for entity id spaces."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.ids import (
    EntityKind,
    IdAllocator,
    is_kind,
    kind_of,
    make_id,
    serial_of,
)


class TestIdComposition:
    def test_roundtrip(self):
        entity_id = make_id(EntityKind.POST, 12345)
        assert kind_of(entity_id) is EntityKind.POST
        assert serial_of(entity_id) == 12345

    def test_kinds_disjoint(self):
        person = make_id(EntityKind.PERSON, 7)
        post = make_id(EntityKind.POST, 7)
        assert person != post

    def test_is_kind(self):
        comment = make_id(EntityKind.COMMENT, 3)
        assert is_kind(comment, EntityKind.COMMENT)
        assert not is_kind(comment, EntityKind.POST)

    def test_serial_order_preserved(self):
        # Footnote 3 of the paper: ids must be order-preserving within a
        # kind so time-ordered serial assignment makes ids time-ordered.
        ids = [make_id(EntityKind.POST, serial) for serial in range(100)]
        assert ids == sorted(ids)

    def test_negative_serial_rejected(self):
        with pytest.raises(SchemaError):
            make_id(EntityKind.PERSON, -1)

    def test_oversized_serial_rejected(self):
        with pytest.raises(SchemaError):
            make_id(EntityKind.PERSON, 1 << 56)

    def test_unknown_kind_tag_rejected(self):
        with pytest.raises(SchemaError):
            kind_of(0)  # kind tag 0 is unassigned

    @given(st.sampled_from(list(EntityKind)),
           st.integers(min_value=0, max_value=(1 << 56) - 1))
    @settings(max_examples=200)
    def test_roundtrip_property(self, kind, serial):
        entity_id = make_id(kind, serial)
        assert kind_of(entity_id) is kind
        assert serial_of(entity_id) == serial


class TestIdAllocator:
    def test_sequential(self):
        allocator = IdAllocator(EntityKind.FORUM)
        first = allocator.allocate()
        second = allocator.allocate()
        assert serial_of(first) == 0
        assert serial_of(second) == 1
        assert allocator.allocated == 2

    def test_start_offset(self):
        allocator = IdAllocator(EntityKind.FORUM, start=100)
        assert serial_of(allocator.allocate()) == 100

    def test_monotone(self):
        allocator = IdAllocator(EntityKind.TAG)
        ids = [allocator.allocate() for __ in range(50)]
        assert ids == sorted(ids)
