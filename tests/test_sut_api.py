"""The unified ``execute(op)`` SUT API, EntityRef, and op_class_name."""

from __future__ import annotations

import pytest

from repro.core import (
    ComplexRead,
    EngineSUT,
    OperationResult,
    ShortRead,
    StoreSUT,
    Update,
    as_operation,
)
from repro.datagen.update_stream import UpdateOperation
from repro.workload.operations import (
    EntityRef,
    ReadOperation,
    op_class_name,
)


# -- EntityRef -------------------------------------------------------------

def test_entity_ref_tuple_compatibility():
    ref = EntityRef.person(11)
    assert ref == ("person", 11)
    assert ("person", 11) == ref
    assert ref != ("person", 12)
    assert hash(ref) == hash(("person", 11))
    kind, entity_id = ref
    assert (kind, entity_id) == ("person", 11)
    assert ref[0] == "person" and ref[1] == 11
    assert ref in {("person", 11)} and ("person", 11) in {ref}


def test_entity_ref_of_and_kinds():
    assert EntityRef.of(("message", 3)) == EntityRef.message(3)
    ref = EntityRef.person(1)
    assert EntityRef.of(ref) is ref
    assert ref.is_person and not EntityRef.message(1).is_person
    assert EntityRef.person(1) != EntityRef.message(1)


# -- op_class_name ---------------------------------------------------------

def test_op_class_name_across_shapes(split):
    read = ReadOperation(query_id=9, params=None, due_time=0)
    assert op_class_name(read) == "Q9"
    update = split.updates[0]
    assert isinstance(update, UpdateOperation)
    assert op_class_name(update) == update.kind.name
    assert op_class_name(ComplexRead(2, None)) == "Q2"
    assert op_class_name(ShortRead(4, EntityRef.message(1))) == "S4"
    assert op_class_name(Update(update)) == update.kind.name


def test_driver_and_workload_share_the_helper():
    from repro.driver import scheduler

    assert scheduler._op_class_name is op_class_name


# -- as_operation coercion -------------------------------------------------

def test_as_operation_coerces_legacy_shapes(split):
    read = ReadOperation(query_id=2, params="binding", due_time=5,
                         walk_seed=9)
    op = as_operation(read)
    assert op == ComplexRead(2, "binding", walk_seed=9)
    update = as_operation(split.updates[0])
    assert update == Update(split.updates[0])
    assert as_operation(op) is op
    with pytest.raises(TypeError):
        as_operation("not an operation")


# -- execute on both SUTs --------------------------------------------------

@pytest.fixture(params=["store", "engine"])
def sut(request, loaded_store, loaded_catalog):
    if request.param == "store":
        return StoreSUT(loaded_store)
    return EngineSUT(loaded_catalog)


def test_execute_reads(sut, curated_params, network):
    binding = curated_params.by_query[2][0]
    result = sut.execute(ComplexRead(2, binding))
    assert isinstance(result, OperationResult)
    assert result.op_class == "Q2"

    ref = EntityRef.person(network.persons[0].id)
    short = sut.execute(ShortRead(3, ref))
    assert short.op_class == "S3"


def test_deprecated_run_shims_are_gone(sut):
    """PR-2's ``run_*`` deprecation shims were removed: ``execute``
    over the typed operation union is the only SUT entry point."""
    for shim in ("run_complex", "run_short", "run_update"):
        assert not hasattr(sut, shim)


def test_execute_update(split):
    from repro.store import load_network

    update = split.updates[0]
    direct = StoreSUT(load_network(split.bulk))
    result = direct.execute(Update(update))
    assert result.op_class == update.kind.name
    assert result.value is None


def test_execute_accepts_legacy_driver_shapes(sut, curated_params):
    """Connector-style dispatch: raw stream items coerce transparently."""
    binding = curated_params.by_query[2][0]
    legacy = ReadOperation(query_id=2, params=binding, due_time=0)
    assert sut.execute(legacy).value \
        == sut.execute(ComplexRead(2, binding)).value
