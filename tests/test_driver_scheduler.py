"""Tests for the workload scheduler: dependency safety in all modes."""

from __future__ import annotations

import pytest

from repro.driver import (
    DriverConfig,
    ExecutionMode,
    RecordingConnector,
    SleepingConnector,
    StoreConnector,
    WorkloadDriver,
)
from repro.errors import DriverError
from repro.store import load_network
from repro.store.loader import VertexLabel


def _run_with_recorder(split, mode, partitions, window_millis=None):
    connector = RecordingConnector()
    driver = WorkloadDriver(connector, DriverConfig(
        num_partitions=partitions, mode=mode,
        window_millis=window_millis, dependency_wait_timeout=30))
    connector.gds = driver.gds
    report = driver.run(split.updates)
    return connector, report


class TestDependencyCorrectness:
    @pytest.mark.parametrize("partitions", [1, 3, 8])
    def test_parallel_mode_never_violates(self, split, partitions):
        connector, report = _run_with_recorder(
            split, ExecutionMode.PARALLEL, partitions)
        assert report.dependency_timeouts == 0
        violations = [op for op, gct in connector.records
                      if op.is_dependent and op.depends_on_time > gct]
        assert violations == []
        assert len(connector.records) == len(split.updates)

    def test_sequential_mode_person_deps_hold(self, split):
        connector, report = _run_with_recorder(
            split, ExecutionMode.SEQUENTIAL, 4)
        assert report.dependency_timeouts == 0
        violations = [op for op, gct in connector.records
                      if op.is_dependent
                      and op.global_depends_on_time > gct]
        assert violations == []

    def test_sequential_mode_forum_causal_order(self, split):
        """Within a forum, operations execute in due-time order."""
        connector, __ = _run_with_recorder(
            split, ExecutionMode.SEQUENTIAL, 4)
        last_per_forum: dict[int, int] = {}
        for op, __gct in connector.records:
            if op.partition_key is None:
                continue
            previous = last_per_forum.get(op.partition_key, 0)
            assert op.due_time >= previous
            last_per_forum[op.partition_key] = op.due_time

    def test_windowed_mode_person_deps_hold(self, split,
                                            datagen_config):
        connector, report = _run_with_recorder(
            split, ExecutionMode.WINDOWED, 4,
            window_millis=datagen_config.t_safe_millis)
        assert report.dependency_timeouts == 0
        violations = [op for op, gct in connector.records
                      if op.is_dependent
                      and op.global_depends_on_time > gct]
        assert violations == []
        assert len(connector.records) == len(split.updates)

    def test_windowed_requires_window_size(self, split):
        driver = WorkloadDriver(RecordingConnector(), DriverConfig(
            mode=ExecutionMode.WINDOWED))
        with pytest.raises(DriverError):
            driver.run(split.updates)


class TestStateConvergence:
    @pytest.mark.parametrize("mode,partitions", [
        (ExecutionMode.PARALLEL, 1),
        (ExecutionMode.PARALLEL, 6),
        (ExecutionMode.SEQUENTIAL, 4),
    ])
    def test_final_store_state_identical(self, network, split, mode,
                                         partitions):
        store = load_network(split.bulk)
        driver = WorkloadDriver(StoreConnector(store), DriverConfig(
            num_partitions=partitions, mode=mode))
        driver.run(split.updates)
        with store.transaction() as txn:
            assert txn.count_vertices(VertexLabel.PERSON) \
                == len(network.persons)
            assert txn.count_vertices(VertexLabel.POST) \
                == len(network.posts)
            assert txn.count_vertices(VertexLabel.COMMENT) \
                == len(network.comments)

    def test_windowed_final_state(self, network, split,
                                  datagen_config):
        store = load_network(split.bulk)
        driver = WorkloadDriver(StoreConnector(store), DriverConfig(
            num_partitions=4, mode=ExecutionMode.WINDOWED,
            window_millis=datagen_config.t_safe_millis))
        driver.run(split.updates)
        with store.transaction() as txn:
            assert txn.count_vertices(VertexLabel.POST) \
                == len(network.posts)


class TestReporting:
    def test_report_counts(self, split):
        connector, report = _run_with_recorder(
            split, ExecutionMode.PARALLEL, 4)
        assert report.metrics.operations == len(split.updates)
        assert sum(report.per_partition_counts) == len(split.updates)
        assert report.ops_per_second > 0

    def test_latency_classes_recorded(self, split):
        __, report = _run_with_recorder(split, ExecutionMode.PARALLEL,
                                        4)
        classes = set(report.metrics.per_class)
        assert "ADD_POST" in classes
        assert "ADD_PERSON" in classes

    def test_connector_error_propagates(self, split):
        class Exploding:
            def execute(self, operation):
                raise RuntimeError("connector failure")

        driver = WorkloadDriver(Exploding(), DriverConfig(
            num_partitions=2))
        with pytest.raises(RuntimeError):
            driver.run(split.updates)

    def test_sleeping_connector_counts(self, split):
        connector = SleepingConnector(0.0)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=2))
        driver.run(split.updates[:200])
        assert connector.executed == 200


class TestAcceleration:
    def test_throttled_run_takes_expected_time(self, split):
        """At a finite acceleration the run spans roughly
        (simulated span / acceleration)."""
        import time

        ops = split.updates[:120]
        span_ms = ops[-1].due_time - ops[0].due_time
        acceleration = span_ms / 1000.0  # target ≈ 1 s of real time
        driver = WorkloadDriver(SleepingConnector(0.0), DriverConfig(
            num_partitions=2, acceleration=acceleration))
        started = time.monotonic()
        report = driver.run(ops)
        elapsed = time.monotonic() - started
        # Generous band: the suite may run under load, and the last
        # operation's deadline only lower-bounds the wall time.
        assert 0.5 <= elapsed <= 15.0
        assert report.metrics.late_fraction < 0.9


class TestDependencyWaitTimeout:
    """The wedge detector: a dependent op whose T_DEP never arrives."""

    def _wedging_ops(self):
        from repro.datagen.update_stream import UpdateKind, UpdateOperation

        # One dependent op waiting on a T_DEP no partition will ever
        # complete (nothing with that due time exists in the stream).
        return [
            UpdateOperation(UpdateKind.ADD_PERSON, due_time=1_000,
                            depends_on_time=0, payload=None),
            UpdateOperation(UpdateKind.ADD_LIKE_POST, due_time=2_000,
                            depends_on_time=10_000_000, payload=None),
        ]

    def test_timeout_raises_naming_stuck_partition(self):
        driver = WorkloadDriver(SleepingConnector(0.0), DriverConfig(
            num_partitions=1, mode=ExecutionMode.PARALLEL,
            dependency_wait_timeout=0.2))
        with pytest.raises(DriverError) as excinfo:
            driver.run(self._wedging_ops())
        message = str(excinfo.value)
        assert "partition 0" in message
        assert "T_GC stuck below 10000000" in message
        assert "ADD_LIKE_POST" in message

    def test_timeout_counted(self):
        driver = WorkloadDriver(SleepingConnector(0.0), DriverConfig(
            num_partitions=1, mode=ExecutionMode.PARALLEL,
            dependency_wait_timeout=0.2))
        with pytest.raises(DriverError):
            driver.run(self._wedging_ops())
        assert driver._timeouts == 1

    def test_timeout_span_and_counter_when_traced(self):
        from repro import telemetry

        driver = WorkloadDriver(SleepingConnector(0.0), DriverConfig(
            num_partitions=1, mode=ExecutionMode.PARALLEL,
            dependency_wait_timeout=0.2))
        tracer = telemetry.enable(fresh_registry=True)
        try:
            with pytest.raises(DriverError):
                driver.run(self._wedging_ops())
        finally:
            telemetry.disable()
        waits = [span for span in tracer.finished_spans()
                 if span.name == "scheduler.wait.gc"]
        assert len(waits) == 1
        assert waits[0].attributes["timed_out"] is True
        assert telemetry.get_registry().counter(
            telemetry.GC_TIMEOUT_COUNTER).value == 1

    def test_windowed_timeout_names_partition(self, datagen_config):
        from repro.datagen.update_stream import UpdateKind, UpdateOperation

        ops = [UpdateOperation(
            UpdateKind.ADD_COMMENT, due_time=2_000,
            depends_on_time=10_000_000, payload=None, partition_key=7,
            global_depends_on_time=10_000_000)]
        driver = WorkloadDriver(SleepingConnector(0.0), DriverConfig(
            num_partitions=1, mode=ExecutionMode.WINDOWED,
            window_millis=1_000, dependency_wait_timeout=0.2))
        with pytest.raises(DriverError) as excinfo:
            driver.run(ops)
        assert "partition 0" in str(excinfo.value)
