"""Smoke tests: every shipped example must stay runnable."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout,
        env={**os.environ, "PYTHONPATH": str(EXAMPLES.parent / "src")})
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "generated:" in out
        assert "integrity violations: 0" in out
        assert "Q13" in out

    def test_datagen_export(self, tmp_path):
        out = _run("datagen_export.py", "80", str(tmp_path / "export"))
        assert "integrity: clean" in out
        assert "update stream" in out
        assert (tmp_path / "export" / "bulk" / "person.csv").exists()

    def test_social_analytics(self):
        out = _run("social_analytics.py")
        assert "trending new topics" in out
        assert "friend recommendations" in out
        assert "experts by reply volume" in out

    def test_trace_run(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        out = _run("trace_run.py", str(path))
        assert "spans ->" in out
        assert "telemetry span summary" in out
        document = json.loads(path.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert any(name.startswith("scheduler.partition.")
                   for name in names)
        assert any(name.startswith("engine.") for name in names)

    def test_choke_point_explain(self):
        out = _run("choke_point_explain.py")
        assert "join decisions:" in out
        assert "INL, INL (intended)" in out

    @pytest.mark.skipif(
        os.environ.get("REPRO_RUN_SLOW_EXAMPLES") != "1",
        reason="benchmark_run takes minutes; set "
               "REPRO_RUN_SLOW_EXAMPLES=1 to include it")
    def test_benchmark_run(self):
        out = _run("benchmark_run.py", timeout=900)
        assert "sustained acceleration factor" in out
