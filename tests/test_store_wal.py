"""Tests for write-ahead logging and recovery (the D in ACID)."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreError
from repro.queries import COMPLEX_QUERIES
from repro.queries.updates import execute_update
from repro.store import load_network
from repro.store.loader import VertexLabel
from repro.store.wal import (
    WriteAheadLog,
    attach_wal,
    read_log,
    recover_store,
)


@pytest.fixture()
def walled_store(split, tmp_path):
    store = load_network(split.bulk)
    wal = WriteAheadLog(tmp_path / "commits.wal")
    attach_wal(store, wal)
    return store, wal, tmp_path / "commits.wal"


class TestLogging:
    def test_commits_logged(self, walled_store, split):
        store, wal, path = walled_store
        for op in split.updates[:50]:
            execute_update(store, op)
        wal.close()
        assert wal.commits_logged == 50
        assert len(read_log(path)) == 50

    def test_aborts_not_logged(self, walled_store):
        store, wal, path = walled_store
        txn = store.transaction()
        txn.insert_vertex("v", 1, {"x": 1})
        txn.abort()
        wal.close()
        assert read_log(path) == []

    def test_empty_commit_not_logged(self, walled_store):
        store, wal, path = walled_store
        store.transaction().commit()
        wal.close()
        assert read_log(path) == []

    def test_double_attach_rejected(self, walled_store):
        store, wal, __ = walled_store
        with pytest.raises(StoreError):
            attach_wal(store, wal)


class TestRecovery:
    def test_full_stream_recovery(self, network, split, tmp_path):
        path = tmp_path / "commits.wal"
        store = load_network(split.bulk)
        with WriteAheadLog(path) as wal:
            attach_wal(store, wal)
            for op in split.updates:
                execute_update(store, op)
        recovered = recover_store(split.bulk, path)
        with recovered.transaction() as txn:
            assert txn.count_vertices(VertexLabel.PERSON) \
                == len(network.persons)
            assert txn.count_vertices(VertexLabel.POST) \
                == len(network.posts)
            assert txn.count_vertices(VertexLabel.COMMENT) \
                == len(network.comments)

    def test_recovered_store_answers_queries_identically(
            self, network, split, curated_params, tmp_path):
        path = tmp_path / "commits.wal"
        store = load_network(split.bulk)
        with WriteAheadLog(path) as wal:
            attach_wal(store, wal)
            for op in split.updates:
                execute_update(store, op)
        recovered = recover_store(split.bulk, path)
        for query_id in (2, 7, 9):
            for params in curated_params.by_query[query_id][:2]:
                with store.transaction() as txn:
                    original = COMPLEX_QUERIES[query_id].run(txn,
                                                             params)
                with recovered.transaction() as txn:
                    replayed = COMPLEX_QUERIES[query_id].run(txn,
                                                             params)
                assert original == replayed

    def test_tuple_round_trip(self, tmp_path):
        """Tuple-valued properties survive the JSON round trip."""
        path = tmp_path / "commits.wal"
        from repro.schema.dataset import SocialNetwork

        empty = SocialNetwork()
        store = load_network(empty)
        with WriteAheadLog(path) as wal:
            attach_wal(store, wal)
            with store.transaction() as txn:
                txn.insert_vertex("person", 1,
                                  {"languages": ("de", "en"),
                                   "age": 30})
        recovered = recover_store(empty, path)
        with recovered.transaction() as txn:
            props = txn.vertex("person", 1)
        assert props == {"languages": ("de", "en"), "age": 30}

    def test_torn_tail_tolerated(self, split, tmp_path):
        """A crash mid-write leaves a torn last line; recovery keeps
        everything before it."""
        path = tmp_path / "commits.wal"
        store = load_network(split.bulk)
        with WriteAheadLog(path) as wal:
            attach_wal(store, wal)
            for op in split.updates[:20]:
                execute_update(store, op)
        # Simulate the crash: truncate the last record mid-line.
        content = path.read_text().splitlines()
        content[-1] = content[-1][: len(content[-1]) // 2]
        path.write_text("\n".join(content))
        records = read_log(path)
        assert len(records) == 19
        recovered = recover_store(split.bulk, path)
        assert recovered.commit_count == 19

    def test_log_records_are_json_lines(self, walled_store, split):
        store, wal, path = walled_store
        execute_update(store, split.updates[0])
        wal.close()
        line = path.read_text().splitlines()[0]
        record = json.loads(line)
        assert set(record) == {"ts", "inserts", "updates", "edges"}
