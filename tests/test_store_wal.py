"""Tests for write-ahead logging and recovery (the D in ACID)."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreError
from repro.queries import COMPLEX_QUERIES
from repro.queries.updates import execute_update
from repro.store import load_network
from repro.store.loader import VertexLabel
from repro.store.wal import (
    WriteAheadLog,
    attach_wal,
    read_log,
    recover_store,
)


@pytest.fixture()
def walled_store(split, tmp_path):
    store = load_network(split.bulk)
    wal = WriteAheadLog(tmp_path / "commits.wal")
    attach_wal(store, wal)
    return store, wal, tmp_path / "commits.wal"


class TestLogging:
    def test_commits_logged(self, walled_store, split):
        store, wal, path = walled_store
        for op in split.updates[:50]:
            execute_update(store, op)
        wal.close()
        assert wal.commits_logged == 50
        assert len(read_log(path)) == 50

    def test_aborts_not_logged(self, walled_store):
        store, wal, path = walled_store
        txn = store.transaction()
        txn.insert_vertex("v", 1, {"x": 1})
        txn.abort()
        wal.close()
        assert read_log(path) == []

    def test_empty_commit_not_logged(self, walled_store):
        store, wal, path = walled_store
        store.transaction().commit()
        wal.close()
        assert read_log(path) == []

    def test_double_attach_rejected(self, walled_store):
        store, wal, __ = walled_store
        with pytest.raises(StoreError):
            attach_wal(store, wal)


class TestRecovery:
    def test_full_stream_recovery(self, network, split, tmp_path):
        path = tmp_path / "commits.wal"
        store = load_network(split.bulk)
        with WriteAheadLog(path) as wal:
            attach_wal(store, wal)
            for op in split.updates:
                execute_update(store, op)
        recovered = recover_store(split.bulk, path)
        with recovered.transaction() as txn:
            assert txn.count_vertices(VertexLabel.PERSON) \
                == len(network.persons)
            assert txn.count_vertices(VertexLabel.POST) \
                == len(network.posts)
            assert txn.count_vertices(VertexLabel.COMMENT) \
                == len(network.comments)

    def test_recovered_store_answers_queries_identically(
            self, network, split, curated_params, tmp_path):
        path = tmp_path / "commits.wal"
        store = load_network(split.bulk)
        with WriteAheadLog(path) as wal:
            attach_wal(store, wal)
            for op in split.updates:
                execute_update(store, op)
        recovered = recover_store(split.bulk, path)
        for query_id in (2, 7, 9):
            for params in curated_params.by_query[query_id][:2]:
                with store.transaction() as txn:
                    original = COMPLEX_QUERIES[query_id].run(txn,
                                                             params)
                with recovered.transaction() as txn:
                    replayed = COMPLEX_QUERIES[query_id].run(txn,
                                                             params)
                assert original == replayed

    def test_tuple_round_trip(self, tmp_path):
        """Tuple-valued properties survive the JSON round trip."""
        path = tmp_path / "commits.wal"
        from repro.schema.dataset import SocialNetwork

        empty = SocialNetwork()
        store = load_network(empty)
        with WriteAheadLog(path) as wal:
            attach_wal(store, wal)
            with store.transaction() as txn:
                txn.insert_vertex("person", 1,
                                  {"languages": ("de", "en"),
                                   "age": 30})
        recovered = recover_store(empty, path)
        with recovered.transaction() as txn:
            props = txn.vertex("person", 1)
        assert props == {"languages": ("de", "en"), "age": 30}

    def test_torn_tail_tolerated(self, split, tmp_path):
        """A crash mid-write leaves a torn last line; recovery keeps
        everything before it."""
        path = tmp_path / "commits.wal"
        store = load_network(split.bulk)
        with WriteAheadLog(path) as wal:
            attach_wal(store, wal)
            for op in split.updates[:20]:
                execute_update(store, op)
        # Simulate the crash: truncate the last record mid-line.
        content = path.read_text().splitlines()
        content[-1] = content[-1][: len(content[-1]) // 2]
        path.write_text("\n".join(content))
        with pytest.warns(UserWarning, match="torn trailing WAL record"):
            records = read_log(path)
        assert len(records) == 19
        with pytest.warns(UserWarning):
            recovered = recover_store(split.bulk, path)
        assert recovered.commit_count == 19


class TestTornRecords:
    """Robustness against crashes mid-append (truncated final line)."""

    def _write_wal(self, split, path, count=20):
        store = load_network(split.bulk)
        with WriteAheadLog(path) as wal:
            attach_wal(store, wal)
            for op in split.updates[:count]:
                execute_update(store, op)

    def test_truncated_mid_record_recovers_with_warning_counter(
            self, split, tmp_path):
        from repro import telemetry
        from repro.store.wal import TORN_RECORD_COUNTER

        path = tmp_path / "commits.wal"
        self._write_wal(split, path)
        # Crash mid-append: the file ends inside the final record, with
        # no trailing newline.
        raw = path.read_bytes()
        cut = raw.rstrip(b"\n").rfind(b"\n")
        path.write_bytes(raw[: cut + 1 + (len(raw) - cut) // 3])
        before = telemetry.counter(TORN_RECORD_COUNTER).value
        with pytest.warns(UserWarning, match="crash mid-append"):
            recovered = recover_store(split.bulk, path)
        assert recovered.commit_count == 19
        assert telemetry.counter(TORN_RECORD_COUNTER).value == before + 1

    def test_parseable_but_partial_final_record_is_torn(
            self, split, tmp_path):
        """Truncation that still parses as JSON but lost fields."""
        path = tmp_path / "commits.wal"
        self._write_wal(split, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ts":99}\n')
        with pytest.warns(UserWarning, match="torn trailing"):
            records = read_log(path)
        assert len(records) == 20

    def test_mid_file_corruption_raises(self, split, tmp_path):
        """Garbage before the final record is not a clean crash and
        must not silently drop the committed records after it."""
        path = tmp_path / "commits.wal"
        self._write_wal(split, path)
        lines = path.read_text().splitlines()
        lines[5] = lines[5][:10]  # corrupt a middle record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreError, match="line 6"):
            read_log(path)

    def test_trailing_blank_lines_ignored(self, split, tmp_path):
        path = tmp_path / "commits.wal"
        self._write_wal(split, path, count=5)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(read_log(path)) == 5

    def test_log_records_are_json_lines(self, walled_store, split):
        store, wal, path = walled_store
        execute_update(store, split.updates[0])
        wal.close()
        line = path.read_text().splitlines()[0]
        record = json.loads(line)
        assert set(record) == {"ts", "inserts", "updates", "edges"}
