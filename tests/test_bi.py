"""Tests for the SNB-BI draft queries (brute-force cross-checks)."""

from __future__ import annotations

from collections import Counter, defaultdict

import pytest

from repro.bi import (
    bi1_posting_summary,
    bi2_tag_evolution,
    bi3_popular_topics_by_country,
    bi4_influential_posters,
)
from repro.sim_time import MILLIS_PER_MONTH, date_from_millis


class TestBi1:
    def test_totals_match_network(self, network, loaded_catalog):
        rows = bi1_posting_summary(loaded_catalog)
        total = sum(row.message_count for row in rows)
        assert total == len(network.posts) + len(network.comments)

    def test_groups_match_brute_force(self, network, loaded_catalog):
        expected = Counter()
        for message in network.messages():
            year = date_from_millis(message.creation_date).year
            is_post = hasattr(message, "forum_id")
            expected[(year, is_post)] += 1
        rows = bi1_posting_summary(loaded_catalog)
        got = {(row.year, row.is_post): row.message_count
               for row in rows}
        assert got == dict(expected)

    def test_average_length_consistent(self, loaded_catalog):
        for row in bi1_posting_summary(loaded_catalog):
            assert row.average_length == pytest.approx(
                row.total_length / row.message_count)

    def test_sorted_by_year(self, loaded_catalog):
        rows = bi1_posting_summary(loaded_catalog)
        years = [row.year for row in rows]
        assert years == sorted(years)


class TestBi2:
    def test_counts_match_brute_force(self, network, loaded_catalog):
        start = min(m.creation_date for m in network.messages())
        rows = bi2_tag_evolution(loaded_catalog, start, limit=100)
        tag_names = {t.id: t.name for t in network.tags}
        expected = defaultdict(lambda: [0, 0])
        for message in network.messages():
            offset = message.creation_date - start
            if 0 <= offset < MILLIS_PER_MONTH:
                slot = 0
            elif MILLIS_PER_MONTH <= offset < 2 * MILLIS_PER_MONTH:
                slot = 1
            else:
                continue
            for tag_id in message.tag_ids:
                expected[tag_names[tag_id]][slot] += 1
        got = {row.tag_name: [row.count_window_a, row.count_window_b]
               for row in rows}
        for name, counts in got.items():
            assert expected[name] == counts

    def test_sorted_by_absolute_delta(self, network, loaded_catalog):
        start = min(m.creation_date for m in network.messages())
        rows = bi2_tag_evolution(loaded_catalog, start)
        deltas = [abs(row.delta) for row in rows]
        assert deltas == sorted(deltas, reverse=True)


class TestBi3:
    def test_counts_match_brute_force(self, network, loaded_catalog):
        place_names = {p.id: p.name for p in network.places}
        tag_names = {t.id: t.name for t in network.tags}
        expected = Counter()
        for message in network.messages():
            for tag_id in message.tag_ids:
                expected[(place_names[message.country_id],
                          tag_names[tag_id])] += 1
        rows = bi3_popular_topics_by_country(loaded_catalog)
        for row in rows:
            assert expected[(row.country_name, row.tag_name)] \
                == row.message_count

    def test_top_per_country_cap(self, loaded_catalog):
        rows = bi3_popular_topics_by_country(loaded_catalog,
                                             top_per_country=2)
        per_country = Counter(row.country_name for row in rows)
        assert max(per_country.values()) <= 2

    def test_top_tags_really_top(self, loaded_catalog):
        rows = bi3_popular_topics_by_country(loaded_catalog,
                                             top_per_country=1)
        all_rows = bi3_popular_topics_by_country(loaded_catalog,
                                                 top_per_country=10**6)
        best = {}
        for row in all_rows:
            current = best.get(row.country_name)
            if current is None or row.message_count > current:
                best[row.country_name] = row.message_count
        for row in rows:
            assert row.message_count == best[row.country_name]


class TestBi4:
    def test_friend_predicate_enforced(self, loaded_catalog):
        rows = bi4_influential_posters(loaded_catalog, min_friends=5)
        for row in rows:
            assert row.friend_count >= 5

    def test_counts_match_brute_force(self, network, loaded_catalog):
        messages = Counter(m.author_id for m in network.messages())
        friends = Counter()
        for edge in network.knows:
            friends[edge.person1_id] += 1
            friends[edge.person2_id] += 1
        rows = bi4_influential_posters(loaded_catalog, min_friends=3,
                                       limit=10)
        for row in rows:
            assert messages[row.person_id] == row.message_count
            assert friends[row.person_id] == row.friend_count

    def test_sorted_by_message_count(self, loaded_catalog):
        rows = bi4_influential_posters(loaded_catalog, min_friends=1)
        counts = [row.message_count for row in rows]
        assert counts == sorted(counts, reverse=True)

    def test_high_threshold_filters_everyone(self, loaded_catalog):
        rows = bi4_influential_posters(loaded_catalog,
                                       min_friends=10 ** 6)
        assert rows == []
