"""Tests for engine schemas, tables and indexes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateError, EngineError, NotFoundError
from repro.engine.rows import Schema, Table


class TestSchema:
    def test_positions(self):
        schema = Schema(("a", "b", "c"))
        assert schema.position("b") == 1
        assert "c" in schema
        assert "z" not in schema
        assert len(schema) == 3

    def test_unknown_column_raises(self):
        with pytest.raises(EngineError):
            Schema(("a",)).position("b")

    def test_duplicate_rejected(self):
        with pytest.raises(EngineError):
            Schema(("a", "a"))

    def test_concat_disjoint(self):
        merged = Schema(("a",)).concat(Schema(("b",)))
        assert merged.columns == ("a", "b")

    def test_concat_collision_prefixed(self):
        merged = Schema(("a", "b")).concat(Schema(("b", "c")),
                                           prefix="r_")
        assert merged.columns == ("a", "b", "r_b", "c")

    def test_concat_repeated_self_join(self):
        knows = Schema(("p1", "p2", "date"))
        once = knows.concat(knows, prefix="inner_")
        twice = once.concat(knows, prefix="inner_")
        assert len(set(twice.columns)) == len(twice.columns)


def _person_table():
    table = Table("person", Schema(("id", "name", "age")),
                  primary_key="id")
    table.create_hash_index("name")
    table.create_ordered_index("age")
    table.bulk_load([(1, "Ada", 36), (2, "Bob", 30), (3, "Ada", 50)])
    return table


class TestTable:
    def test_pk_lookup(self):
        table = _person_table()
        assert table.by_pk(2) == (2, "Bob", 30)
        assert table.get_pk(99) is None
        with pytest.raises(NotFoundError):
            table.by_pk(99)

    def test_duplicate_pk_rejected(self):
        table = _person_table()
        with pytest.raises(DuplicateError):
            table.insert((1, "Eve", 20))

    def test_arity_check(self):
        table = _person_table()
        with pytest.raises(EngineError):
            table.insert((4, "Eve"))

    def test_hash_probe(self):
        table = _person_table()
        assert {row[0] for row in table.probe("name", "Ada")} == {1, 3}
        assert table.probe("name", "Zed") == []

    def test_probe_without_index_raises(self):
        table = _person_table()
        with pytest.raises(EngineError):
            table.probe("age", 30)

    def test_range_scan(self):
        table = _person_table()
        ids = [row[0] for row in table.range_scan(30, 40)]
        assert ids == [2, 1]

    def test_range_scan_reverse(self):
        table = _person_table()
        ages = [row[2] for row in table.range_scan(reverse=True)]
        assert ages == [50, 36, 30]

    def test_insert_maintains_indexes(self):
        table = _person_table()
        table.insert((4, "Ada", 40))
        assert len(table.probe("name", "Ada")) == 3
        ages = [row[2] for row in table.range_scan()]
        assert ages == sorted(ages)

    def test_second_ordered_index_rejected(self):
        table = _person_table()
        with pytest.raises(EngineError):
            table.create_ordered_index("id")

    def test_statistics(self):
        table = _person_table()
        assert table.row_count == 3
        assert table.distinct_count("name") == 2
        assert table.average_fanout("name") == pytest.approx(1.5)
        assert table.distinct_count("id") == 3

    def test_hash_index_created_after_load(self):
        table = Table("t", Schema(("k", "v")))
        table.bulk_load([(1, "x"), (1, "y")])
        table.create_hash_index("k")
        assert len(table.probe("k", 1)) == 2

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 5)),
                    max_size=60))
    @settings(max_examples=50)
    def test_range_scan_sorted_property(self, rows):
        table = Table("t", Schema(("id", "key")))
        table.create_ordered_index("key")
        for i, (a, key) in enumerate(rows):
            table.insert((i, key))
        keys = [row[1] for row in table.range_scan()]
        assert keys == sorted(keys)
