"""Tests for the SNB bulk loader and storage accounting."""

from __future__ import annotations

from repro.store import load_network, storage_report
from repro.store.graph import Direction
from repro.store.loader import EdgeLabel, VertexLabel


class TestLoader:
    def test_vertex_counts(self, network, loaded_store):
        with loaded_store.transaction() as txn:
            assert txn.count_vertices(VertexLabel.PERSON) \
                == len(network.persons)
            assert txn.count_vertices(VertexLabel.FORUM) \
                == len(network.forums)
            assert txn.count_vertices(VertexLabel.POST) \
                == len(network.posts)
            assert txn.count_vertices(VertexLabel.COMMENT) \
                == len(network.comments)
            assert txn.count_vertices(VertexLabel.TAG) \
                == len(network.tags)

    def test_knows_symmetric(self, network, loaded_store):
        with loaded_store.transaction() as txn:
            for edge in network.knows[:100]:
                out = {o for o, __ in txn.neighbors(EdgeLabel.KNOWS,
                                                    edge.person1_id)}
                back = {o for o, __ in txn.neighbors(EdgeLabel.KNOWS,
                                                     edge.person2_id)}
                assert edge.person2_id in out
                assert edge.person1_id in back

    def test_creator_adjacency(self, network, loaded_store):
        post = network.posts[0]
        with loaded_store.transaction() as txn:
            authored = {m for m, __ in txn.neighbors(
                EdgeLabel.HAS_CREATOR, post.author_id, Direction.IN)}
            assert post.id in authored

    def test_container_adjacency(self, network, loaded_store):
        post = network.posts[0]
        with loaded_store.transaction() as txn:
            posts = {p for p, __ in txn.neighbors(
                EdgeLabel.CONTAINER_OF, post.forum_id)}
            assert post.id in posts

    def test_membership_props(self, network, loaded_store):
        membership = network.memberships[0]
        with loaded_store.transaction() as txn:
            rows = dict(txn.neighbors(EdgeLabel.HAS_MEMBER,
                                      membership.forum_id))
            assert rows[membership.person_id]["joined_date"] \
                == membership.joined_date

    def test_first_name_index_usable(self, network, loaded_store):
        person = network.persons[0]
        with loaded_store.transaction() as txn:
            ids = txn.lookup(VertexLabel.PERSON, "first_name",
                             person.first_name)
            assert person.id in ids

    def test_message_date_index_ordered(self, network, loaded_store):
        with loaded_store.transaction() as txn:
            dates = [key for key, __ in
                     txn.scan_range(VertexLabel.POST, "creation_date")]
            assert dates == sorted(dates)
            assert len(dates) == len(network.posts)


class TestAccounting:
    def test_report_covers_tables(self, loaded_store):
        report = storage_report(loaded_store)
        names = {table.name for table in report.tables}
        assert VertexLabel.PERSON in names
        assert VertexLabel.POST in names
        assert EdgeLabel.KNOWS in names

    def test_sizes_positive(self, loaded_store):
        report = storage_report(loaded_store)
        for table in report.tables:
            assert table.bytes > 0
            assert table.entries >= 0
        assert report.total_bytes > 1_000_000

    def test_largest_tables(self, loaded_store):
        report = storage_report(loaded_store)
        largest = report.largest(3)
        assert len(largest) == 3
        assert largest[0].bytes >= largest[1].bytes >= largest[2].bytes

    def test_largest_by_kind(self, loaded_store):
        report = storage_report(loaded_store)
        indexes = report.largest(2, kind="index")
        assert all(table.kind == "index" for table in indexes)

    def test_post_among_largest(self, loaded_store):
        """Paper Table 8: the post table is the largest."""
        report = storage_report(loaded_store)
        top_names = {t.name for t in report.largest(4, kind="vertices")}
        assert VertexLabel.POST in top_names
