"""Evidence tests for windowed execution's defining behaviors."""

from __future__ import annotations

import threading

import pytest

from repro.driver import (
    DegradePolicy,
    DriverConfig,
    ExecutionMode,
    RecordingConnector,
    RetryPolicy,
    WorkloadDriver,
)


@pytest.fixture()
def recorded(split, datagen_config):
    connector = RecordingConnector()
    driver = WorkloadDriver(connector, DriverConfig(
        num_partitions=1, mode=ExecutionMode.WINDOWED,
        window_millis=datagen_config.t_safe_millis, seed=5))
    connector.gds = driver.gds
    driver.run(split.updates)
    return [op for op, __ in connector.records]


class TestOutOfOrderFreedom:
    def test_windowed_reorders_within_windows(self, recorded, split):
        """The paper: 'No guaranty is made regarding exactly when, or
        in what order, an operation will execute within its Window' —
        the shuffle must actually reorder something."""
        dues = [op.due_time for op in recorded]
        assert dues != sorted(dues)

    def test_reordering_bounded_by_window(self, recorded, split,
                                          datagen_config):
        """Out-of-order freedom never exceeds the window span."""
        window = datagen_config.t_safe_millis
        max_seen = 0
        for op in recorded:
            if op.due_time + window < max_seen:
                raise AssertionError(
                    f"operation displaced beyond the window: "
                    f"{op.due_time} after {max_seen}")
            max_seen = max(max_seen, op.due_time)

    def test_dependencies_never_reordered(self, recorded):
        """Dependencies ops 'are never executed in this manner': their
        relative order must stay by due time."""
        dependency_dues = [op.due_time for op in recorded
                           if op.is_dependency
                           and op.partition_key is None]
        assert dependency_dues == sorted(dependency_dues)

    def test_everything_executed_once(self, recorded, split):
        assert len(recorded) == len(split.updates)
        assert {id(op) for op in recorded} \
            == {id(op) for op in split.updates}


class TestWindowSizing:
    def test_smaller_windows_less_reordering(self, split,
                                             datagen_config):
        def displacement(window_millis):
            connector = RecordingConnector()
            driver = WorkloadDriver(connector, DriverConfig(
                num_partitions=1, mode=ExecutionMode.WINDOWED,
                window_millis=window_millis, seed=5))
            connector.gds = driver.gds
            driver.run(split.updates)
            dues = [op.due_time for op, __ in connector.records]
            return sum(1 for a, b in zip(dues, dues[1:]) if a > b)

        small = displacement(datagen_config.t_safe_millis // 10)
        large = displacement(datagen_config.t_safe_millis)
        assert small <= large


class FailingRecorder:
    """Records successful executions; fails targeted ops N times."""

    def __init__(self, operations, bad_indices, fail_times=1,
                 exc_factory=lambda: ConnectionError("down")):
        self._budget = {id(operations[i]): fail_times
                        for i in bad_indices}
        self._exc_factory = exc_factory
        self._lock = threading.Lock()
        self.executed: list = []

    def execute(self, operation) -> None:
        with self._lock:
            remaining = self._budget.get(id(operation), 0)
            if remaining > 0:
                self._budget[id(operation)] = remaining - 1
                raise self._exc_factory()
            self.executed.append(operation)


class TestWindowedFailures:
    """WINDOWED-mode edge cases under failure (regression coverage)."""

    def _config(self, datagen_config, **kwargs):
        return DriverConfig(
            num_partitions=2, mode=ExecutionMode.WINDOWED,
            window_millis=datagen_config.t_safe_millis, seed=5,
            dependency_wait_timeout=15, **kwargs)

    def test_fault_inside_flush_leaves_no_half_window(
            self, small_split, datagen_config):
        """A transient fault mid-flush must not drop or double-execute
        the rest of that window once the retried op succeeds."""
        ops = small_split.updates
        bad = [len(ops) // 3, len(ops) // 2]
        connector = FailingRecorder(ops, bad, fail_times=2)
        driver = WorkloadDriver(connector, self._config(
            datagen_config,
            resilience=RetryPolicy(max_retries=4, base_backoff=0.0,
                                   max_backoff=0.0)))
        report = driver.run(ops)
        assert report.retries == 2 * len(bad)
        executed = [id(op) for op in connector.executed]
        assert len(executed) == len(ops)          # nothing dropped
        assert len(set(executed)) == len(ops)     # nothing re-executed
        assert report.metrics.operations == len(ops)

    def test_degraded_op_inside_flush_window_still_counted(
            self, small_split, datagen_config):
        """Skipping one op of a window must not orphan its siblings."""
        ops = small_split.updates
        bad = [len(ops) // 3]
        connector = FailingRecorder(ops, bad, fail_times=10 ** 6)
        driver = WorkloadDriver(connector, self._config(
            datagen_config,
            resilience=RetryPolicy(
                max_retries=1, base_backoff=0.0, max_backoff=0.0,
                on_exhaustion=DegradePolicy.DEGRADE)))
        report = driver.run(ops)
        assert report.skipped == 1
        assert len(connector.executed) == len(ops) - 1
        assert report.metrics.operations == len(ops) - 1

    def test_skipped_dependency_still_advances_tgc(
            self, small_split, datagen_config):
        """A skipped globally-tracked dependency op must still
        lds.complete(), or dependents in other partitions wedge."""
        ops = small_split.updates
        dep = next(i for i, op in enumerate(ops)
                   if op.is_dependency and op.partition_key is None)
        connector = FailingRecorder(ops, [dep], fail_times=10 ** 6)
        driver = WorkloadDriver(connector, self._config(
            datagen_config,
            resilience=RetryPolicy(
                max_retries=1, base_backoff=0.0, max_backoff=0.0,
                on_exhaustion=DegradePolicy.DEGRADE)))
        report = driver.run(ops)
        assert report.skipped == 1
        assert report.dependency_timeouts == 0
        assert len(connector.executed) == len(ops) - 1

    def test_fail_fast_mid_window_surfaces_original_error(
            self, small_split, datagen_config):
        ops = small_split.updates
        connector = FailingRecorder(
            ops, [len(ops) // 2], fail_times=10 ** 6,
            exc_factory=lambda: ValueError("hard bug"))
        driver = WorkloadDriver(connector,
                                self._config(datagen_config))
        with pytest.raises(ValueError):
            driver.run(ops)
