"""Evidence tests for windowed execution's defining behaviors."""

from __future__ import annotations

import pytest

from repro.driver import (
    DriverConfig,
    ExecutionMode,
    RecordingConnector,
    WorkloadDriver,
)


@pytest.fixture()
def recorded(split, datagen_config):
    connector = RecordingConnector()
    driver = WorkloadDriver(connector, DriverConfig(
        num_partitions=1, mode=ExecutionMode.WINDOWED,
        window_millis=datagen_config.t_safe_millis, seed=5))
    connector.gds = driver.gds
    driver.run(split.updates)
    return [op for op, __ in connector.records]


class TestOutOfOrderFreedom:
    def test_windowed_reorders_within_windows(self, recorded, split):
        """The paper: 'No guaranty is made regarding exactly when, or
        in what order, an operation will execute within its Window' —
        the shuffle must actually reorder something."""
        dues = [op.due_time for op in recorded]
        assert dues != sorted(dues)

    def test_reordering_bounded_by_window(self, recorded, split,
                                          datagen_config):
        """Out-of-order freedom never exceeds the window span."""
        window = datagen_config.t_safe_millis
        max_seen = 0
        for op in recorded:
            if op.due_time + window < max_seen:
                raise AssertionError(
                    f"operation displaced beyond the window: "
                    f"{op.due_time} after {max_seen}")
            max_seen = max(max_seen, op.due_time)

    def test_dependencies_never_reordered(self, recorded):
        """Dependencies ops 'are never executed in this manner': their
        relative order must stay by due time."""
        dependency_dues = [op.due_time for op in recorded
                           if op.is_dependency
                           and op.partition_key is None]
        assert dependency_dues == sorted(dependency_dues)

    def test_everything_executed_once(self, recorded, split):
        assert len(recorded) == len(split.updates)
        assert {id(op) for op in recorded} \
            == {id(op) for op in split.updates}


class TestWindowSizing:
    def test_smaller_windows_less_reordering(self, split,
                                             datagen_config):
        def displacement(window_millis):
            connector = RecordingConnector()
            driver = WorkloadDriver(connector, DriverConfig(
                num_partitions=1, mode=ExecutionMode.WINDOWED,
                window_millis=window_millis, seed=5))
            connector.gds = driver.gds
            driver.run(split.updates)
            dues = [op.due_time for op, __ in connector.records]
            return sum(1 for a, b in zip(dues, dues[1:]) if a > b)

        small = displacement(datagen_config.t_safe_millis // 10)
        large = displacement(datagen_config.t_safe_millis)
        assert small <= large
