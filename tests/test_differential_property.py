"""Property tests for the state oracle: random update/checkpoint
interleavings and partitioned replays all converge to the same
canonical state on both SUTs."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.operation import Update
from repro.core.sut import EngineSUT, StoreSUT
from repro.datagen import DatagenConfig, generate
from repro.datagen.update_stream import partition_updates
from repro.validation import (
    diff_snapshots,
    snapshot_catalog,
    snapshot_digest,
    snapshot_store,
)

#: Updates replayed per property example (speed/coverage trade-off).
PREFIX = 300


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(boundaries=st.lists(st.integers(min_value=0, max_value=PREFIX),
                           max_size=5, unique=True).map(sorted))
def test_random_checkpoint_interleavings_agree(small_split, boundaries):
    """Wherever checkpoints land in the update stream, both SUTs hold
    the same canonical state at every one of them."""
    store = StoreSUT.for_network(small_split.bulk)
    engine = EngineSUT.for_network(small_split.bulk)
    cursor = 0
    for boundary in list(boundaries) + [PREFIX]:
        for op in small_split.updates[cursor:boundary]:
            store.execute(Update(op))
            engine.execute(Update(op))
        cursor = max(cursor, boundary)
        left = snapshot_store(store.store)
        right = snapshot_catalog(engine.catalog)
        assert snapshot_digest(left) == snapshot_digest(right), \
            "\n".join(d.describe("store", "engine")
                      for d in diff_snapshots(left, right))


@pytest.mark.parametrize("num_partitions", [1, 2, 3, 5])
def test_partitioned_replay_converges(small_split, num_partitions):
    """Replaying the partitioned stream round-robin (a different total
    order per partition count, preserving per-partition order like the
    driver does) reaches the same final state as stream order — the
    insert-only workload commutes across partitions."""
    reference = StoreSUT.for_network(small_split.bulk)
    prefix = small_split.updates[:PREFIX]
    for op in prefix:
        reference.execute(Update(op))
    expected = snapshot_digest(snapshot_store(reference.store))

    partitions = [list(p)
                  for p in partition_updates(prefix, num_partitions)]
    store = StoreSUT.for_network(small_split.bulk)
    engine = EngineSUT.for_network(small_split.bulk)
    cursors = [0] * len(partitions)
    remaining = len(prefix)
    while remaining:
        for index, partition in enumerate(partitions):
            if cursors[index] < len(partition):
                op = Update(partition[cursors[index]])
                store.execute(op)
                engine.execute(op)
                cursors[index] += 1
                remaining -= 1
    assert snapshot_digest(snapshot_store(store.store)) == expected
    assert snapshot_digest(snapshot_catalog(engine.catalog)) == expected


def test_seed_stability_of_state_digest():
    """The canonical state digest is a pure function of the datagen
    seed: same seed → same digest, different seed → different digest."""
    def digest_for(seed: int) -> str:
        network = generate(DatagenConfig(num_persons=30, seed=seed))
        return snapshot_digest(snapshot_store(
            StoreSUT.for_network(network).store))

    assert digest_for(5) == digest_for(5)
    assert digest_for(5) != digest_for(6)
