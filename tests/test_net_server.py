"""The wire server and remote connector: loopback behavior tests.

Every test starts a real :class:`ReproServer` on an ephemeral loopback
port and talks to it through :class:`RemoteConnector` — the codec,
framing, pipelining, worker pool, and error mapping are all exercised
end to end, just very small.
"""

from __future__ import annotations

import queue
import threading
import time

import pytest

from repro.core.connector import ConnectorProtocol
from repro.core.operation import (
    ComplexRead,
    OperationResult,
    ShortRead,
    Update,
)
from repro.core.sut import StoreSUT
from repro.errors import (
    FatalSUTError,
    OperationTimeoutError,
    TransientError,
)
from repro.net import (
    AdmissionRejectedError,
    RemoteConnector,
    RemoteFatalError,
    RemoteTransientError,
    ReproServer,
    ServerBusyError,
    ServerConfig,
)
from repro.workload.operations import EntityRef


class ScriptedSUT:
    """A SUT double: counts executions, fails or stalls on demand."""

    name = "scripted"

    def __init__(self) -> None:
        self.executed: list = []
        self.lock = threading.Lock()
        self.delay = 0.0
        self.raising: BaseException | None = None

    def execute(self, op) -> OperationResult:
        if self.delay:
            time.sleep(self.delay)
        if self.raising is not None:
            raise self.raising
        with self.lock:
            self.executed.append(op)
        return OperationResult(op.op_class, value=len(self.executed))


@pytest.fixture()
def server_client():
    """A started server over a ScriptedSUT plus a connected client."""
    opened = []

    def factory(sut=None, config=None, **client_kwargs):
        sut = sut or ScriptedSUT()
        server = ReproServer(sut, config or ServerConfig(workers=2))
        host, port = server.start()
        client = RemoteConnector(host, port, timeout=10.0,
                                 **client_kwargs)
        opened.append((server, client))
        return server, client, sut

    yield factory
    for server, client in opened:
        client.close()
        server.shutdown()


SHORT = ShortRead(1, EntityRef.person(7))


def test_execute_round_trip_and_ping(server_client):
    server, client, sut = server_client()
    result = client.execute(SHORT)
    assert isinstance(result, OperationResult)
    assert result.op_class == "S1" and result.value == 1
    assert sut.executed == [SHORT]
    info = client.ping()
    assert info["sut"] == "scripted"
    assert "scripted" in client.name


def test_connector_protocol_conformance(server_client):
    __, client, __ = server_client()
    assert isinstance(client, ConnectorProtocol)
    assert client.supports_reads and client.is_remote


def test_execute_batch_pipelines_in_order(server_client):
    __, client, sut = server_client()
    ops = [ShortRead(2, EntityRef.person(i)) for i in range(20)]
    results = client.execute_batch(ops)
    assert [r.op_class for r in results] == ["S2"] * 20
    # All executed exactly once, whatever order the pool chose.
    assert sorted(o.entity.id for o in sut.executed) == list(range(20))


def test_concurrent_callers_multiplex_one_pool(server_client):
    __, client, sut = server_client(pool_size=2)
    errors = []

    def hammer(worker: int) -> None:
        try:
            for i in range(10):
                client.execute(ShortRead(3, EntityRef.person(
                    worker * 100 + i)))
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,))
               for w in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(sut.executed) == 40


# -- error taxonomy mapping ------------------------------------------------

def test_transient_error_maps_to_remote_transient(server_client):
    from repro.driver.resilience import default_is_transient

    __, client, sut = server_client()
    sut.raising = TransientError("deadlock victim")
    with pytest.raises(RemoteTransientError, match="deadlock victim"):
        client.execute(SHORT)
    assert default_is_transient(RemoteTransientError("x"))


def test_fatal_and_unclassified_map_to_remote_fatal(server_client):
    from repro.driver.resilience import default_is_transient

    __, client, sut = server_client()
    sut.raising = FatalSUTError("corrupt page")
    with pytest.raises(RemoteFatalError, match="corrupt page"):
        client.execute(SHORT)
    sut.raising = ValueError("surprise")
    with pytest.raises(RemoteFatalError, match="surprise"):
        client.execute(SHORT)
    assert not default_is_transient(RemoteFatalError("x"))


def test_wire_timeout_maps_to_operation_timeout(server_client):
    __, client, sut = server_client()
    client.timeout = 0.15
    sut.delay = 1.0
    started = time.perf_counter()
    with pytest.raises(OperationTimeoutError):
        client.execute(SHORT)
    assert time.perf_counter() - started < 0.9
    # The late response is dropped, and the connection stays usable.
    sut.delay = 0.0
    client.timeout = 10.0
    assert client.execute(SHORT).op_class == "S1"
    # The timed-out attempt still completes server-side eventually
    # (reads carry no op_key; only updates get dedup protection).
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline and len(sut.executed) < 2:
        time.sleep(0.02)
    assert len(sut.executed) == 2


def test_connection_loss_maps_to_connection_error(server_client):
    server, client, __ = server_client(connect_timeout=0.5)
    assert client.execute(SHORT).value == 1
    server.shutdown()
    with pytest.raises(ConnectionError):
        for __ in range(3):  # first call may observe the close lazily
            client.execute(SHORT)
    # Wire loss is retryable under the resilience policy.
    from repro.driver.resilience import default_is_transient
    assert default_is_transient(ConnectionError("peer gone"))


# -- backpressure ----------------------------------------------------------

def test_backpressure_rejects_busy_with_retry_hint(server_client):
    server, client, sut = server_client(
        config=ServerConfig(workers=1, queue_size=1, retry_after=0.123))
    sut.delay = 0.3
    ops = [ShortRead(4, EntityRef.person(i)) for i in range(8)]
    with pytest.raises(ServerBusyError) as excinfo:
        client.execute_batch(ops)
    assert excinfo.value.retry_after == pytest.approx(0.123)
    assert server.stats()["rejected_busy"] >= 1
    # Busy is transient: the resilience policy will back off and retry.
    assert isinstance(excinfo.value, TransientError)


# -- admission control -----------------------------------------------------

def test_admission_rejects_expensive_complex_reads(loaded_store,
                                                   curated_params):
    sut = StoreSUT(loaded_store)
    server = ReproServer(sut, ServerConfig(max_estimated_rows=1.0))
    host, port = server.start()
    client = RemoteConnector(host, port, timeout=10.0)
    try:
        params = curated_params.by_query[9][0]
        with pytest.raises(AdmissionRejectedError) as excinfo:
            client.execute(ComplexRead(9, params))
        # Fatal, not transient: retrying cannot make the query cheaper.
        assert isinstance(excinfo.value, FatalSUTError)
        assert "estimated" in str(excinfo.value)
        # Point operations are always admitted.
        person = EntityRef.person(
            next(iter(loaded_store.transaction().vertices("person")))[0])
        assert client.execute(ShortRead(1, person)).op_class == "S1"
        stats = client.server_stats()
        assert stats["admission_rejected"] >= 1
        assert stats["admission_admitted"] >= 1
    finally:
        client.close()
        server.shutdown()


def test_admission_estimate_uses_degree_and_damping():
    from repro.engine.cardinality import DEDUP_DAMPING
    from repro.net.admission import AdmissionController

    controller = AdmissionController(10.0, max_estimated_rows=None)
    rows, derivation = controller.estimate_rows(3)
    assert rows == pytest.approx(10.0 * 10.0 * DEDUP_DAMPING
                                 * 10.0 * DEDUP_DAMPING)
    assert "degree=10.0" in derivation


# -- exactly-once updates --------------------------------------------------

def test_update_retry_is_deduplicated(server_client, split):
    server, client, sut = server_client()
    operation = split.updates[0]
    first = client.execute(Update(operation))
    # A retry of the same stream item (fresh Update wrapper, same
    # inner operation) must replay, not re-execute.
    second = client.execute(Update(operation))
    assert len(sut.executed) == 1
    assert first.value == second.value == 1
    assert server.stats()["deduped"] == 1
    # A different stream item executes normally.
    client.execute(Update(split.updates[1]))
    assert len(sut.executed) == 2


def test_distinct_clients_never_share_dedup_keys(server_client, split):
    server, __, sut = server_client()
    host, port = server.address
    a = RemoteConnector(host, port, timeout=10.0)
    b = RemoteConnector(host, port, timeout=10.0)
    try:
        operation = split.updates[0]
        a.execute(Update(operation))
        b.execute(Update(operation))
        # Different client ids → different op keys → both executed.
        assert len(sut.executed) == 2
    finally:
        a.close()
        b.close()


def test_transient_update_failure_is_not_replayed_to_retry(
        server_client, split):
    # A transient outcome (the store's write conflict under concurrent
    # workers) means the update never applied; caching it would replay
    # the error to every retry and silently lose the update.
    server, client, sut = server_client()
    operation = split.updates[0]
    sut.raising = TransientError("write conflict")
    with pytest.raises(RemoteTransientError, match="write conflict"):
        client.execute(Update(operation))
    sut.raising = None
    result = client.execute(Update(operation))
    assert result.value == 1
    assert len(sut.executed) == 1
    assert server.stats()["deduped"] == 0


def test_fatal_update_outcome_is_replayed_to_retry(server_client,
                                                   split):
    server, client, sut = server_client()
    operation = split.updates[0]
    sut.raising = FatalSUTError("corrupt page")
    with pytest.raises(RemoteFatalError, match="corrupt page"):
        client.execute(Update(operation))
    sut.raising = None
    # Fatal outcomes stay remembered: the replay, not a re-execution.
    with pytest.raises(RemoteFatalError, match="corrupt page"):
        client.execute(Update(operation))
    assert len(sut.executed) == 0
    assert server.stats()["deduped"] == 1


def test_concurrent_duplicates_recover_from_transient_failure(
        server_client, split):
    # Two racing attempts at one stream item while the SUT conflicts:
    # whichever lands second either re-executes or waits on the first
    # — both must hear the transient error, and a later retry must
    # still be able to apply the update.
    server, client, sut = server_client()
    sut.delay = 0.2
    sut.raising = TransientError("conflict")
    operation = split.updates[0]
    outcomes = []

    def attempt() -> None:
        try:
            client.execute(Update(operation))
            outcomes.append(None)  # pragma: no cover - must raise
        except BaseException as exc:
            outcomes.append(exc)

    threads = [threading.Thread(target=attempt) for __ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(isinstance(o, RemoteTransientError) for o in outcomes)
    sut.delay = 0.0
    sut.raising = None
    assert client.execute(Update(operation)).value == 1
    assert len(sut.executed) == 1


def test_reads_are_not_deduplicated(server_client):
    server, client, sut = server_client()
    client.execute(SHORT)
    client.execute(SHORT)
    assert len(sut.executed) == 2
    assert server.stats()["deduped"] == 0


class _StubConnection:
    """Records what the server sends, in lieu of a real socket."""

    def __init__(self) -> None:
        self.sent: list[dict] = []

    def send(self, message: dict) -> None:
        self.sent.append(message)


def test_queue_full_rejection_answers_duplicate_waiters(split):
    # A duplicate that registered between the dedup claim and the
    # (failed) enqueue must hear the busy rejection too, not block
    # for its whole request timeout.
    from repro.net import codec

    server = ReproServer(ScriptedSUT(), ServerConfig(queue_size=1))
    origin, waiter = _StubConnection(), _StubConnection()
    message = {"v": codec.PROTOCOL_VERSION, "id": 1, "kind": "execute",
               "op": codec.encode_operation(Update(split.updates[0])),
               "op_key": "tok"}

    class RacingQueue:
        def put_nowait(self, job) -> None:
            # The duplicate lands in the claim→enqueue window.
            server._dedup_claim("tok", waiter, 2)
            raise queue.Full

    server._queue = RacingQueue()
    server._handle_message(origin, message)
    assert [m["id"] for m in origin.sent] == [1]
    assert [m["id"] for m in waiter.sent] == [2]
    assert all(m["error"] == "busy"
               for m in origin.sent + waiter.sent)
    # The token is free again: a retry claims it from scratch.
    assert "tok" not in server._dedup


def test_dedup_abandon_leaves_completed_outcomes_alone(server_client,
                                                       split):
    server, client, sut = server_client()
    operation = split.updates[0]
    key_owner = _StubConnection()
    client.execute(Update(operation))
    (op_key,) = list(server._dedup)
    assert server._dedup_abandon(op_key) == []
    assert op_key in server._dedup  # done entries are kept for replay
    assert key_owner.sent == []


def test_shutdown_releases_workers_despite_backlogged_queue():
    sut = ScriptedSUT()
    sut.delay = 0.02
    server = ReproServer(sut, ServerConfig(workers=2, queue_size=2))
    server.start()
    stub = _StubConnection()
    for i in range(6):  # more jobs than queue slots
        server._queue.put((stub, i, SHORT, None))
    server.shutdown()
    workers = [t for t in server._threads
               if t.name.startswith("repro-net-worker")]
    for worker in workers:
        worker.join(5.0)
    assert not any(worker.is_alive() for worker in workers)
    server.shutdown()  # idempotent: a second call must not block


# -- client-side accounting ------------------------------------------------

def test_timeout_race_does_not_double_decrement_in_flight():
    # Simulate the reader delivering (entry popped, counter already
    # decremented) just after event.wait timed out but before wait()
    # reacquired the lock: only the popper may decrement.
    from repro.net.client import _Pending, _PooledConnection

    connection = _PooledConnection.__new__(_PooledConnection)
    connection.pending_lock = threading.Lock()
    connection.pending = {}
    connection.in_flight = 0
    connection.dead = None
    with pytest.raises(OperationTimeoutError):
        connection.wait(7, _Pending(), timeout=0.0)
    assert connection.in_flight == 0


def test_op_keys_are_stable_and_never_alias(split):
    client = RemoteConnector("127.0.0.1", 1)  # never dialed
    first, second = split.updates[0], split.updates[1]
    key = client._stable_op_key(first)
    assert client._stable_op_key(first) == key
    keys = {key, client._stable_op_key(second)}
    assert len(keys) == 2
    # Fresh short-lived items must never reuse a key, even though
    # CPython recycles ids of collected objects.
    for __ in range(50):
        keys.add(client._stable_op_key(object()))
    assert len(keys) == 52


# -- admin actions ---------------------------------------------------------

def test_digest_action_requires_configuration(server_client):
    __, client, __ = server_client()
    with pytest.raises(RemoteFatalError, match="digest"):
        client.digest()


def test_digest_action_returns_configured_digest():
    sut = ScriptedSUT()
    server = ReproServer(sut, ServerConfig(),
                         digest_fn=lambda: "sha256:abc")
    host, port = server.start()
    client = RemoteConnector(host, port, timeout=10.0)
    try:
        assert client.digest() == "sha256:abc"
    finally:
        client.close()
        server.shutdown()


def test_unknown_request_kinds_are_fatal(server_client):
    __, client, __ = server_client()
    with pytest.raises(RemoteFatalError, match="unknown request kind"):
        client._round_trip({"v": 1, "kind": "exec"})
    with pytest.raises(RemoteFatalError, match="unknown admin action"):
        client._admin("reboot")


# -- graceful drain (the SIGTERM path) -------------------------------------

def test_drain_completes_inflight_work(server_client):
    """A drain started while a request is executing must let it finish
    and deliver its response — the client sees a result, never a reset
    socket — before the server fully stops."""
    server, client, sut = server_client()
    sut.delay = 0.15
    outcome: dict = {}

    def call() -> None:
        try:
            outcome["result"] = client.execute(SHORT)
        except BaseException as exc:  # pragma: no cover - failure path
            outcome["error"] = exc

    thread = threading.Thread(target=call)
    thread.start()
    time.sleep(0.05)  # let the request reach a worker
    assert server.drain(timeout=5.0) is True
    thread.join(timeout=5.0)
    assert "error" not in outcome, outcome.get("error")
    assert outcome["result"].value == 1
    assert sut.executed == [SHORT]


def test_drain_refuses_new_connections(server_client):
    import socket

    server, client, __ = server_client()
    host, port = client.host, client.port
    assert server.drain(timeout=1.0) is True
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=1.0).close()


def test_drain_times_out_on_wedged_work(server_client):
    """Work that outlives the deadline: drain returns False (the CLI
    reports 'drain timed out') but still shuts the server down."""
    server, client, sut = server_client()
    sut.delay = 1.0
    thread = threading.Thread(
        target=lambda: _swallow(lambda: client.execute(SHORT)))
    thread.start()
    time.sleep(0.05)
    assert server.drain(timeout=0.05) is False
    thread.join(timeout=10.0)
    assert server._shutdown.is_set()


def test_drain_idempotent_on_idle_server(server_client):
    server, __, __ = server_client()
    assert server.drain(timeout=1.0) is True
    assert server.drain(timeout=1.0) is True  # post-shutdown: no hang


def test_drain_timeout_defaults_to_config():
    sut = ScriptedSUT()
    server = ReproServer(sut, ServerConfig(drain_timeout=0.2))
    server.start()
    started = time.monotonic()
    assert server.drain() is True  # idle: returns well before 0.2s
    assert time.monotonic() - started < 0.2 + 1.0


def _swallow(fn) -> None:
    try:
        fn()
    except BaseException:
        pass
