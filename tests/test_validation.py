"""Tests that the integrity validator catches injected violations."""

from __future__ import annotations

import copy
import dataclasses

from repro.schema import validate_network
from repro.schema.entities import Comment, Knows, Like, Person, Post


def _clone(network):
    clone = copy.copy(network)
    clone.persons = list(network.persons)
    clone.knows = list(network.knows)
    clone.posts = list(network.posts)
    clone.comments = list(network.comments)
    clone.likes = list(network.likes)
    clone.forums = list(network.forums)
    clone.memberships = list(network.memberships)
    return clone


class TestCleanNetwork:
    def test_generated_network_has_no_violations(self, network):
        report = validate_network(network)
        assert report.ok
        assert report.checked > 1000


class TestInjectedViolations:
    def test_duplicate_person(self, network):
        broken = _clone(network)
        broken.persons.append(broken.persons[0])
        report = validate_network(broken)
        assert any("duplicate person" in v for v in report.violations)

    def test_person_created_before_birth(self, network):
        broken = _clone(network)
        victim = broken.persons[0]
        broken.persons[0] = dataclasses.replace(
            victim, creation_date=victim.birthday - 1) \
            if dataclasses.is_dataclass(victim) else victim
        report = validate_network(broken)
        assert any("before birth" in v for v in report.violations)

    def test_unnormalized_knows(self, network):
        broken = _clone(network)
        edge = broken.knows[0]
        broken.knows[0] = Knows(edge.person2_id, edge.person1_id,
                                edge.creation_date)
        report = validate_network(broken)
        assert any("not normalized" in v for v in report.violations)

    def test_friendship_before_join(self, network):
        broken = _clone(network)
        edge = broken.knows[0]
        broken.knows[0] = Knows(edge.person1_id, edge.person2_id, 0)
        report = validate_network(broken)
        assert any("predates a member joining" in v
                   for v in report.violations)

    def test_post_with_missing_author(self, network):
        broken = _clone(network)
        post = broken.posts[0]
        broken.posts[0] = dataclasses.replace(post,
                                              author_id=999_999_999)
        report = validate_network(broken)
        assert any("author missing" in v for v in report.violations)

    def test_post_length_mismatch(self, network):
        broken = _clone(network)
        post = broken.posts[0]
        broken.posts[0] = dataclasses.replace(post,
                                              length=post.length + 7)
        report = validate_network(broken)
        assert any("length mismatch" in v for v in report.violations)

    def test_comment_not_after_parent(self, network):
        broken = _clone(network)
        comment = broken.comments[0]
        broken.comments[0] = dataclasses.replace(comment,
                                                 creation_date=0)
        report = validate_network(broken)
        assert any("comment" in v and
                   ("not after its parent" in v or "predates" in v)
                   for v in report.violations)

    def test_like_before_message(self, network):
        broken = _clone(network)
        like = broken.likes[0]
        broken.likes[0] = Like(like.person_id, like.message_id, 1,
                               like.is_post)
        report = validate_network(broken)
        assert any("like" in v.lower() for v in report.violations)

    def test_duplicate_like(self, network):
        broken = _clone(network)
        broken.likes.append(broken.likes[0])
        report = validate_network(broken)
        assert any("duplicate like" in v for v in report.violations)

    def test_membership_before_forum(self, network):
        broken = _clone(network)
        membership = broken.memberships[0]
        import dataclasses as dc
        broken.memberships[0] = dc.replace(membership, joined_date=0)
        report = validate_network(broken)
        assert any("predates" in v for v in report.violations)

    def test_violation_cap(self, network):
        """A badly broken network must not blow up the report."""
        broken = _clone(network)
        broken.likes = [Like(like.person_id, like.message_id, 1,
                             like.is_post)
                        for like in broken.likes] * 3
        report = validate_network(broken)
        assert len(report.violations) <= 1001
