"""The full driver stack over the wire: loopback equivalence.

These tests run the real scheduler/resilience/chaos machinery against
a :class:`ReproServer` on loopback and hold it to the same oracle as
the in-process path: the final-state digest must be byte-identical.
They are the test-suite form of the CLI's ``repro serve`` +
``repro benchmark --remote`` quickstart.
"""

from __future__ import annotations

import time

import pytest

from repro.core.benchmark import BenchmarkConfig, InteractiveBenchmark
from repro.core.operation import Update
from repro.core.sut import StoreSUT
from repro.driver import ExecutionMode, RetryPolicy
from repro.driver.resilience import call_with_watchdog
from repro.errors import OperationTimeoutError
from repro.faults import FaultPlan
from repro.net import RemoteConnector, ReproServer, ServerConfig
from repro.store import load_network
from repro.validation import run_chaos
from repro.validation.snapshot import snapshot_digest, snapshot_store

from tests.conftest import SMALL_PERSONS, SMALL_SEED
from tests.test_net_server import SHORT, ScriptedSUT


@pytest.fixture()
def loopback_server(small_split):
    """A wire server over a store bulk-loaded with the small split."""
    store = load_network(small_split.bulk)
    server = ReproServer(
        StoreSUT(store),
        ServerConfig(workers=4),
        digest_fn=lambda: snapshot_digest(snapshot_store(store)))
    host, port = server.start()
    yield f"{host}:{port}"
    server.shutdown()


def small_benchmark_config(**overrides) -> BenchmarkConfig:
    """The small session network, few bindings: fast but complete.

    One partition: SEQUENTIAL mode orders operations only *within* a
    partition, so a single partition makes the whole run — including
    every complex-read result and hence every short-read walk —
    bit-for-bit deterministic, the strictest possible equality oracle.
    """
    return BenchmarkConfig(num_persons=SMALL_PERSONS, seed=SMALL_SEED,
                           sut="store", num_partitions=1,
                           bindings_per_query=2, **overrides)


def test_loopback_run_matches_in_process_digest(loopback_server):
    local = InteractiveBenchmark(small_benchmark_config())
    local_report = local.run()

    remote = InteractiveBenchmark(
        small_benchmark_config(remote=loopback_server))
    remote_report = remote.run()
    try:
        # The tentpole oracle: same stream, same bytes, either side of
        # the wire.
        assert remote.final_state_digest() == local.final_state_digest()
        assert remote_report.operations == local_report.operations
        assert remote_report.sut_name.startswith("remote(")
        assert "graph-store" in remote_report.sut_name
        # Short reads ran over the wire too (walks need read support).
        assert remote_report.short_reads == local_report.short_reads
        # Latency percentiles are measured, not zeroed, on the remote
        # path — the run report stays a full-disclosure report.
        assert any(s.count for s in remote_report.complex_stats.values())
        assert any(s.p99_ms > 0.0
                   for s in remote_report.complex_stats.values())
    finally:
        remote.sut.close()


def test_chaos_soak_converges_over_the_wire(small_split, loopback_server):
    plan = FaultPlan.uniform(abort=0.08, latency=0.04,
                             latency_seconds=0.0)
    policy = RetryPolicy(max_retries=8, base_backoff=0.0, max_backoff=0.0)
    report = run_chaos(small_split, "store", plan, seed=3,
                       policy=policy, num_partitions=2,
                       remote=loopback_server)
    assert report.ok, report.failure
    assert report.injected["abort"] > 0
    assert report.digests_match


def test_windowed_chaos_converges_over_the_wire(small_split,
                                                loopback_server):
    plan = FaultPlan.uniform(abort=0.05, latency=0.0)
    policy = RetryPolicy(max_retries=8, base_backoff=0.0, max_backoff=0.0)
    report = run_chaos(small_split, "store", plan, seed=3,
                       policy=policy, num_partitions=2,
                       mode=ExecutionMode.WINDOWED,
                       window_millis=60 * 60 * 1000,
                       remote=loopback_server)
    assert report.ok, report.failure


# -- the abandoned-attempt bugfix, over the remote path --------------------

def test_wire_timeout_retry_does_not_double_apply(split):
    """A timed-out update attempt plus its retry applies exactly once.

    The first attempt times out at the wire while the server is still
    executing it; the retry (a fresh ``Update`` wrapper around the
    same stream item, as built per attempt by the scheduler) must be
    recognized server-side and replay the first outcome.
    """
    sut = ScriptedSUT()
    server = ReproServer(sut, ServerConfig(workers=2))
    host, port = server.start()
    client = RemoteConnector(host, port, timeout=10.0)
    try:
        operation = split.updates[0]
        sut.delay = 0.6
        client.timeout = 0.1
        with pytest.raises(OperationTimeoutError):
            client.execute(Update(operation))
        sut.delay = 0.0
        client.timeout = 10.0
        result = client.execute(Update(operation))
        # The retry waited for (or replayed) the in-flight execution.
        assert result.value == 1
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline \
                and server.stats()["deduped"] < 1:
            time.sleep(0.02)
        assert len(sut.executed) == 1
        assert server.stats()["deduped"] == 1
    finally:
        client.close()
        server.shutdown()


def test_watchdog_abandoned_attempt_never_reaches_the_wire():
    """An attempt the watchdog already timed out must not fire remotely.

    This is the remote extension of the watchdog contract: once
    ``call_with_watchdog`` abandons a runner, the runner's eventual
    send would be an un-tracked duplicate, so the wire client checks
    the abandonment flag before writing to the socket.
    """
    sut = ScriptedSUT()
    server = ReproServer(sut, ServerConfig(workers=2))
    host, port = server.start()
    client = RemoteConnector(host, port, timeout=10.0)
    try:
        def stalled_then_send():
            time.sleep(0.3)  # straight past the watchdog deadline
            return client.execute(SHORT)

        with pytest.raises(OperationTimeoutError):
            call_with_watchdog(stalled_then_send, timeout=0.05)
        time.sleep(0.6)  # give the abandoned runner time to misbehave
        assert sut.executed == []
        assert server.stats()["requests"] == 0
    finally:
        client.close()
        server.shutdown()
