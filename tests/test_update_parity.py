"""Cross-SUT update parity: every update kind, observed through short
reads over the touched entities, with and without the caching layer."""

from __future__ import annotations

from repro.cache import AdjacencyCache, ShortReadMemo
from repro.cache.memo import touched_refs
from repro.core.operation import ShortRead, Update
from repro.core.sut import EngineSUT, StoreSUT
from repro.datagen.update_stream import UpdateKind
from repro.validation import (
    canonicalize,
    snapshot_catalog,
    snapshot_digest,
    snapshot_store,
)

_PERSON_SHORTS = (1, 2, 3)
_MESSAGE_SHORTS = (4, 5, 6, 7)


def _pools(ref):
    return _PERSON_SHORTS if ref.is_person else _MESSAGE_SHORTS


class TestUpdateParity:
    def test_all_eight_kinds_agree_through_short_reads(self,
                                                       small_split):
        """Apply the full stream to both SUTs; after the first update
        of each kind, every short read over the touched entities must
        agree — then the final full-graph states must be identical."""
        store = StoreSUT.for_network(small_split.bulk)
        engine = EngineSUT.for_network(small_split.bulk)
        seen: set[UpdateKind] = set()
        for op in small_split.updates:
            store.execute(Update(op))
            engine.execute(Update(op))
            if op.kind in seen:
                continue
            seen.add(op.kind)
            for ref in touched_refs(op):
                for query_id in _pools(ref):
                    read = ShortRead(query_id, ref)
                    left = canonicalize(store.execute(read).value)
                    right = canonicalize(engine.execute(read).value)
                    assert left == right, \
                        f"S{query_id} on {ref} after {op.kind.name}"
        assert seen == set(UpdateKind), \
            f"stream lacks kinds: {set(UpdateKind) - seen}"
        assert snapshot_digest(snapshot_store(store.store)) \
            == snapshot_digest(snapshot_catalog(engine.catalog))

    def test_memoized_short_reads_never_go_stale(self, small_split):
        """The staleness oracle: a store with the adjacency cache and
        the short-read memo enabled must keep answering short reads
        identically to an uncached store and the engine while updates
        invalidate entries underneath it."""
        cached = StoreSUT.for_network(small_split.bulk)
        cached.store.adjacency_cache = AdjacencyCache()
        plain = StoreSUT.for_network(small_split.bulk)
        engine = EngineSUT.for_network(small_split.bulk)
        memo = ShortReadMemo()

        def memoized(query_id, ref):
            result, token = memo.begin(query_id, ref)
            if token is None:
                return result
            value = cached.execute(ShortRead(query_id, ref)).value
            memo.put(query_id, ref, value, token)
            return value

        for i, op in enumerate(small_split.updates[:600]):
            for sut in (cached, plain, engine):
                sut.execute(Update(op))
            memo.note_update(op)
            if i % 7 != 0:
                continue
            for ref in touched_refs(op):
                query_id = _pools(ref)[i % len(_pools(ref))]
                # Twice: a cold read (after invalidation) and a warm
                # read served from the memo.
                first = canonicalize(memoized(query_id, ref))
                second = canonicalize(memoized(query_id, ref))
                oracle = canonicalize(
                    plain.execute(ShortRead(query_id, ref)).value)
                engine_view = canonicalize(
                    engine.execute(ShortRead(query_id, ref)).value)
                assert first == oracle == engine_view, \
                    f"S{query_id} on {ref} after {op.kind.name}"
                assert second == oracle, \
                    f"memo served stale S{query_id} on {ref}"
        assert memo.stats.hits > 0
        assert memo.stats.invalidations > 0
        assert cached.store.adjacency_cache.stats.hits > 0
