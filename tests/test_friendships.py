"""Tests for the sliding-window friendship generator (paper §2.3)."""

from __future__ import annotations

from collections import Counter

from repro.datagen.config import DatagenConfig
from repro.datagen.degrees import target_degree
from repro.datagen.dictionaries import Dictionaries
from repro.datagen.friendships import (
    FriendshipGenerator,
    generate_friendships,
    sort_key_for_pass,
    split_degree_budget,
)
from repro.datagen.persons import generate_persons
from repro.datagen.universe import build_universe
from repro.ids import serial_of


def _generate(num_persons=250, seed=13):
    config = DatagenConfig(num_persons=num_persons, seed=seed)
    dictionaries = Dictionaries(config.seed)
    universe = build_universe(dictionaries)
    persons = generate_persons(config, dictionaries, universe)
    edges = generate_friendships(config, universe, persons)
    return config, universe, persons, edges


class TestBudgetSplit:
    def test_paper_shares(self):
        """45% / 45% / 10% across the three correlation dimensions."""
        budget = split_degree_budget(100, (0.45, 0.45, 0.10))
        assert budget == [45, 45, 10]

    def test_sums_to_total(self):
        for total in range(0, 50):
            assert sum(split_degree_budget(total, (0.45, 0.45, 0.10))) \
                == total

    def test_no_negative(self):
        for total in range(0, 50):
            assert all(b >= 0 for b in
                       split_degree_budget(total, (0.45, 0.45, 0.10)))


class TestSortKeys:
    def test_study_key_clusters_alumni(self):
        config, universe, persons, __ = _generate(120)
        with_uni = [p for p in persons if p.study_at]
        keyed = {}
        for person in with_uni:
            key = sort_key_for_pass(person, 0, universe, config.seed)
            keyed.setdefault(person.study_at[0].organisation_id,
                             []).append(key)
        # Same university + same year → identical composite prefix.
        for org_id, keys in keyed.items():
            prefixes = {k >> 12 for k in keys}
            years = {k & 0xFFF for k in keys}
            assert len(prefixes) <= len(years) + 1

    def test_interest_key_clusters_primary_interest(self):
        config, universe, persons, __ = _generate(60)
        for person in persons:
            key = sort_key_for_pass(person, 1, universe, config.seed)
            if person.interests:
                assert key >> 32 == serial_of(person.interests[0])

    def test_random_key_deterministic(self):
        config, universe, persons, __ = _generate(20)
        for person in persons:
            a = sort_key_for_pass(person, 2, universe, config.seed)
            b = sort_key_for_pass(person, 2, universe, config.seed)
            assert a == b


class TestGeneratedEdges:
    def test_normalized_and_unique(self):
        __, __, __, edges = _generate()
        seen = set()
        for edge in edges:
            assert edge.person1_id < edge.person2_id
            key = (edge.person1_id, edge.person2_id)
            assert key not in seen
            seen.add(key)

    def test_dates_after_both_members_joined(self):
        config, __, persons, edges = _generate()
        by_id = {p.id: p for p in persons}
        for edge in edges:
            latest_join = max(by_id[edge.person1_id].creation_date,
                              by_id[edge.person2_id].creation_date)
            assert edge.creation_date > latest_join
            assert edge.creation_date < config.window.end

    def test_sorted_by_creation_date(self):
        __, __, __, edges = _generate()
        dates = [edge.creation_date for edge in edges]
        assert dates == sorted(dates)

    def test_degrees_do_not_exceed_targets(self):
        config, __, persons, edges = _generate()
        degree = Counter()
        for edge in edges:
            degree[edge.person1_id] += 1
            degree[edge.person2_id] += 1
        for person in persons:
            cap = target_degree(serial_of(person.id), len(persons),
                                config.seed)
            assert degree[person.id] <= cap

    def test_dimension_shares_roughly_45_45_10(self):
        __, __, __, edges = _generate(num_persons=500)
        by_dimension = Counter(edge.dimension for edge in edges)
        total = sum(by_dimension.values())
        assert by_dimension[0] / total > 0.25
        assert by_dimension[1] / total > 0.25
        assert by_dimension[2] / total < 0.25

    def test_deterministic(self):
        __, __, __, first = _generate(seed=21)
        __, __, __, second = _generate(seed=21)
        assert first == second

    def test_seed_changes_edges(self):
        __, __, __, first = _generate(seed=21)
        __, __, __, second = _generate(seed=22)
        assert first != second


class TestHomophily:
    def test_study_pass_prefers_same_university(self):
        """Persons sharing a university befriend each other more often
        than random pairs would (the Fig. 1 mechanism)."""
        __, __, persons, edges = _generate(num_persons=500)
        university = {}
        for person in persons:
            if person.study_at:
                university[person.id] = \
                    person.study_at[0].organisation_id
        dim0 = [e for e in edges if e.dimension == 0
                and e.person1_id in university
                and e.person2_id in university]
        assert dim0
        same = sum(1 for e in dim0
                   if university[e.person1_id]
                   == university[e.person2_id])
        # Random pairing would match universities ~2% of the time.
        assert same / len(dim0) > 0.2

    def test_interest_pass_prefers_shared_interest(self):
        """Interest-dimension edges share interests far more often than
        random pairs do (homophily enrichment over the baseline)."""
        from repro.rng import RandomStream

        __, __, persons, edges = _generate(num_persons=500)
        interests = {p.id: set(p.interests) for p in persons}
        dim1 = [e for e in edges if e.dimension == 1]
        assert dim1
        shared = sum(1 for e in dim1
                     if interests[e.person1_id]
                     & interests[e.person2_id])
        observed = shared / len(dim1)
        stream = RandomStream(99)
        ids = [p.id for p in persons]
        baseline_hits = sum(
            1 for __ in range(3000)
            if interests[stream.choice(ids)]
            & interests[stream.choice(ids)])
        baseline = baseline_hits / 3000
        assert observed > 2 * baseline

    def test_window_bounds_distance(self):
        """No friendships form outside the sliding window (paper: the
        probability 'drops to zero outside it')."""
        config = DatagenConfig(num_persons=200, seed=5,
                               friendship_window=20)
        dictionaries = Dictionaries(config.seed)
        universe = build_universe(dictionaries)
        persons = generate_persons(config, dictionaries, universe)
        generator = FriendshipGenerator(config, universe)
        edges = generator.generate(persons)
        for pass_index in range(3):
            order = sorted(
                range(len(persons)),
                key=lambda i: (sort_key_for_pass(
                    persons[i], pass_index, universe, config.seed),
                    serial_of(persons[i].id)))
            position = {persons[i].id: pos
                        for pos, i in enumerate(order)}
            for edge in edges:
                if edge.dimension != pass_index:
                    continue
                distance = abs(position[edge.person1_id]
                               - position[edge.person2_id])
                assert distance <= config.friendship_window
