"""Adjacency cache: MVCC validity ranges, invalidation, equivalence.

The load-bearing property: with the cache attached, every
``Transaction.neighbors`` call returns exactly what an uncached store
returns at the same snapshot — across random interleavings of commits
and reads, including readers holding old snapshots.
"""

from __future__ import annotations

import random

import pytest

from repro.cache import AdjacencyCache, PlanCache
from repro.core import ComplexRead, EngineSUT, StoreSUT, Update
from repro.engine.catalog import load_catalog
from repro.store import load_network
from repro.store.graph import Direction, GraphStore


# -- unit: delta extension on raw records ----------------------------------

class _Record:
    __slots__ = ("other", "props", "ts")

    def __init__(self, other, ts):
        self.other = other
        self.props = None
        self.ts = ts


def test_lookup_miss_then_hit():
    cache = AdjacencyCache()
    records = [_Record(1, 1), _Record(2, 2)]
    key = ("knows", 7, Direction.OUT)
    assert cache.lookup(key, records, 2) == [(1, None), (2, None)]
    assert cache.lookup(key, records, 2) == [(1, None), (2, None)]
    assert cache.stats.misses == 1 and cache.stats.hits == 1


def test_lookup_extends_with_committed_delta():
    cache = AdjacencyCache()
    records = [_Record(1, 1)]
    key = ("knows", 7, Direction.OUT)
    cache.lookup(key, records, 1)
    records.append(_Record(2, 2))
    records.append(_Record(3, 3))
    # Snapshot 2 sees one of the two appended records.
    assert cache.lookup(key, records, 2) == [(1, None), (2, None)]
    assert cache.stats.extensions == 1
    # The refreshed entry serves snapshot 3 by extending again.
    assert cache.lookup(key, records, 3) \
        == [(1, None), (2, None), (3, None)]
    assert cache.stats.extensions == 2


def test_lookup_newer_records_above_snapshot_is_hit():
    cache = AdjacencyCache()
    records = [_Record(1, 1)]
    key = ("knows", 7, Direction.OUT)
    cache.lookup(key, records, 1)
    records.append(_Record(2, 5))  # committed, but after our snapshot
    assert cache.lookup(key, records, 2) == [(1, None)]
    assert cache.stats.hits == 1


def test_old_snapshot_bypasses_newer_entry():
    cache = AdjacencyCache()
    records = [_Record(1, 1), _Record(2, 5)]
    key = ("knows", 7, Direction.OUT)
    assert cache.lookup(key, records, 5) == [(1, None), (2, None)]
    # A reader at snapshot 1 must not see ts-5 data, and must not
    # clobber the newer entry either.
    assert cache.lookup(key, records, 1) == [(1, None)]
    assert cache.stats.misses == 2
    assert cache.lookup(key, records, 5) == [(1, None), (2, None)]
    assert cache.stats.hits == 1


def test_invalidate_pops_touched_keys():
    cache = AdjacencyCache()
    records = [_Record(1, 1)]
    keys = [("knows", vid, Direction.OUT) for vid in (7, 8)]
    for key in keys:
        cache.lookup(key, records, 1)
    cache.invalidate([keys[0], ("knows", 99, Direction.IN)])
    assert len(cache) == 1
    assert cache.stats.invalidations == 1


def test_eviction_drops_oldest_half():
    cache = AdjacencyCache(max_entries=4)
    records = [_Record(1, 1)]
    for vid in range(5):
        cache.lookup(("knows", vid, Direction.OUT), records, 1)
    assert cache.stats.evictions == 1
    assert len(cache) <= 3


# -- store-level MVCC behaviour -------------------------------------------

def _twin_stores() -> tuple[GraphStore, GraphStore]:
    cached, plain = GraphStore(), GraphStore()
    cached.adjacency_cache = AdjacencyCache()
    return cached, plain


def _commit_edges(stores, edges) -> None:
    for store in stores:
        with store.transaction() as txn:
            for src, dst in edges:
                txn.insert_edge("knows", src, dst)


def test_commit_invalidates_touched_adjacency(fresh_store):
    fresh_store.adjacency_cache = AdjacencyCache()
    person = fresh_store._out["knows"] and next(
        iter(fresh_store._out["knows"]))
    with fresh_store.transaction() as txn:
        list(txn.neighbors("knows", person))
    assert len(fresh_store.adjacency_cache) == 1
    with fresh_store.transaction() as txn:
        txn.insert_edge("knows", person, 10**9)
    assert len(fresh_store.adjacency_cache) == 0
    assert fresh_store.adjacency_cache.stats.invalidations >= 1


def test_old_reader_does_not_see_newer_cached_entry():
    cached, plain = _twin_stores()
    _commit_edges((cached, plain), [(1, 2)])
    old_cached = cached.transaction()
    old_plain = plain.transaction()
    _commit_edges((cached, plain), [(1, 3)])
    # A fresh reader builds a cache entry at the newest snapshot...
    with cached.transaction() as txn:
        assert list(txn.neighbors("knows", 1)) == [(2, None), (3, None)]
    # ...which the old-snapshot reader must bypass.
    assert list(old_cached.neighbors("knows", 1)) \
        == list(old_plain.neighbors("knows", 1)) == [(2, None)]
    old_cached.abort()
    old_plain.abort()
    # The newer entry survived the bypass and still serves hits.
    before = cached.adjacency_cache.stats.hits
    with cached.transaction() as txn:
        list(txn.neighbors("knows", 1))
    assert cached.adjacency_cache.stats.hits == before + 1


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_cached_neighbors_equal_uncached_random_interleavings(seed):
    """Property: cached == uncached across random commit/read orders."""
    rng = random.Random(seed)
    cached, plain = _twin_stores()
    vids = range(12)
    open_readers: list = []
    for __ in range(60):
        action = rng.random()
        if action < 0.45:
            edges = [(rng.choice(vids), rng.choice(vids))
                     for __ in range(rng.randint(1, 3))]
            _commit_edges((cached, plain), edges)
        elif action < 0.65 and len(open_readers) < 4:
            # Hold a pair of same-snapshot readers open across commits.
            open_readers.append((cached.transaction(),
                                 plain.transaction()))
        else:
            if open_readers and rng.random() < 0.5:
                pair = rng.choice(open_readers)
            else:
                pair = (cached.transaction(), plain.transaction())
            txn_cached, txn_plain = pair
            for __ in range(3):
                vid = rng.choice(vids)
                direction = rng.choice((Direction.OUT, Direction.IN))
                assert list(txn_cached.neighbors(
                    "knows", vid, direction)) == list(
                        txn_plain.neighbors("knows", vid, direction))
            if pair not in open_readers:
                txn_cached.abort()
                txn_plain.abort()
    for txn_cached, txn_plain in open_readers:
        txn_cached.abort()
        txn_plain.abort()
    stats = cached.adjacency_cache.stats
    assert stats.requests > 0  # the cache actually served reads


# -- SUT-level staleness: cached results vs an uncached twin ---------------

def _store_suts(split):
    cached_store = load_network(split.bulk)
    cached_store.adjacency_cache = AdjacencyCache()
    return (StoreSUT(cached_store), StoreSUT(load_network(split.bulk)),
            lambda: cached_store.adjacency_cache.stats)


def _engine_suts(split):
    cached_catalog = load_catalog(split.bulk)
    cached_catalog.plan_cache = PlanCache()
    return (EngineSUT(cached_catalog),
            EngineSUT(load_catalog(split.bulk)),
            lambda: cached_catalog.plan_cache.stats)


@pytest.mark.parametrize("make_suts", [_store_suts, _engine_suts],
                         ids=["store", "engine"])
def test_complex_read_not_stale_after_updates(split, curated_params,
                                              make_suts):
    """A result cached before an update must not survive its commit."""
    cached, plain, stats = make_suts(split)
    bindings = curated_params.by_query[2][:2]

    def check() -> None:
        for binding in bindings:
            op = ComplexRead(2, binding)
            assert cached.execute(op).value == plain.execute(op).value

    check()  # populate the caches pre-update
    for index, update in enumerate(split.updates[:180]):
        cached.execute(Update(update))
        plain.execute(Update(update))
        if index % 45 == 44:
            check()
    check()
    assert stats().requests > 0  # the cached SUT really used its cache
