"""The wire codec: round-trips over every registered type, rejection
of everything else.

Coverage strategy is exhaustive, not sampled: a synthetic instance is
built for *every* dataclass and enum in the codec registry from its
field annotations, so adding a new parameter/result/payload class to
any registered module automatically extends the round-trip property.
Real data rides on top: every update kind from the session split and
one executed result per complex/short query class cross the wire and
must come back as the exact original objects.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import types
import typing

import pytest

from repro.core.operation import (
    ComplexRead,
    OperationResult,
    ShortRead,
    Update,
)
from repro.core.sut import StoreSUT
from repro.net import codec
from repro.net.codec import (
    CodecError,
    FrameReader,
    FrameTooLargeError,
    TruncatedFrameError,
    UnsupportedVersionError,
)
from repro.queries.registry import COMPLEX_QUERIES, SHORT_QUERIES
from repro.workload.operations import EntityRef


def roundtrip(value):
    """Encode → JSON text → decode, as the socket path would."""
    wire = json.loads(json.dumps(codec.encode_value(value)))
    return codec.decode_value(wire)


# -- synthetic instances for every registered type -------------------------

def build_instance(cls, salt: int = 0, depth: int = 0):
    """A deterministic synthetic instance of a registered type.

    ``salt`` varies the concrete values; ``depth`` counts nesting so
    genuinely recursive schemas are caught instead of looping.
    """
    if issubclass(cls, enum.Enum):
        return list(cls)[salt % len(cls)]
    assert dataclasses.is_dataclass(cls)
    hints = typing.get_type_hints(cls)
    values = {}
    for index, field in enumerate(dataclasses.fields(cls)):
        values[field.name] = build_value(hints[field.name],
                                         salt + index, depth)
    return cls(**values)


def build_value(hint, salt: int, depth: int = 0):
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin is typing.Union or isinstance(hint, types.UnionType):
        # Optional[X] and X | None: alternate None with the first
        # non-None arm so both shapes cross the wire.
        arms = [a for a in args if a is not type(None)]
        if type(None) in args and salt % 2:
            return None
        return build_value(arms[0], salt, depth)
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(build_value(args[0], salt + i, depth)
                         for i in range(2))
        return tuple(build_value(a, salt + i, depth)
                     for i, a in enumerate(args))
    if origin is list:
        return [build_value(args[0], salt + i, depth)
                for i in range(2)]
    if origin is dict:
        return {build_value(args[0], salt, depth):
                build_value(args[1], salt + 1, depth)}
    if hint is int:
        return salt * 7 + 1
    if hint is float:
        return salt + 0.5
    if hint is bool:
        return salt % 2 == 0
    if hint is str:
        return f"wire-{salt}"
    if hint is EntityRef:
        return EntityRef("person" if salt % 2 else "message", salt)
    if isinstance(hint, type) and (dataclasses.is_dataclass(hint)
                                   or issubclass(hint, enum.Enum)):
        if depth > 4:
            pytest.fail(f"runaway recursion building {hint}")
        return build_instance(hint, salt, depth + 1)
    if hint is object or hint is typing.Any:
        return {"k": (1, "two")}
    pytest.fail(f"no synthetic builder for annotation {hint!r}")


REGISTERED = sorted(codec.registered_types().items())


def test_registry_covers_the_api_surface():
    names = dict(REGISTERED)
    for required in ("ComplexRead", "ShortRead", "Update",
                     "OperationResult", "UpdateOperation", "UpdateKind",
                     "Person", "Knows", "Forum", "Post", "Comment"):
        assert required in names, f"{required} missing from registry"
    # All 14 complex parameter/result classes registered.
    for qid in range(1, 15):
        assert f"Q{qid}Params" in names
        assert f"Q{qid}Result" in names
    for sid in range(1, 8):
        assert f"S{sid}Result" in names


@pytest.mark.parametrize("name,cls", REGISTERED,
                         ids=[name for name, _ in REGISTERED])
def test_roundtrip_every_registered_type(name, cls):
    for depth in range(3):
        value = build_instance(cls, depth)
        decoded = roundtrip(value)
        assert type(decoded) is type(value)
        assert decoded == value


def test_roundtrip_operation_union():
    ops = [
        ComplexRead(9, build_instance(
            codec.registered_types()["Q9Params"]), walk_seed=4),
        ShortRead(2, EntityRef.person(17)),
        Update(build_instance(
            codec.registered_types()["UpdateOperation"])),
    ]
    for op in ops:
        wire = json.loads(json.dumps(codec.encode_operation(op)))
        decoded = codec.decode_operation(wire)
        assert type(decoded) is type(op)
        assert decoded == op


def test_roundtrip_result_shapes():
    results = [
        OperationResult("Q3", [build_instance(
            codec.registered_types()["Q3Result"])]),
        OperationResult("S5", build_instance(
            codec.registered_types()["S5Result"])),
        OperationResult("ADD_POST", None),
        OperationResult("S2", (), cached=True),
    ]
    for result in results:
        wire = json.loads(json.dumps(codec.encode_result(result)))
        decoded = codec.decode_result(wire)
        assert decoded == result
        assert decoded.cached == result.cached


def test_entity_ref_as_json_roundtrip():
    ref = EntityRef.message(123)
    wire = codec.encode_value(ref)
    assert wire == {"__k": "ref", "v": ref.as_json()}
    decoded = codec.decode_value(json.loads(json.dumps(wire)))
    assert isinstance(decoded, EntityRef)
    assert decoded == ref and decoded.kind == "message"


# -- real workload data ----------------------------------------------------

def test_roundtrip_every_update_kind_from_the_stream(split):
    seen = set()
    for operation in split.updates:
        if operation.kind in seen:
            continue
        seen.add(operation.kind)
        decoded = codec.decode_operation(json.loads(json.dumps(
            codec.encode_operation(Update(operation)))))
        assert decoded == Update(operation)
        assert decoded.operation.payload == operation.payload
    assert len(seen) >= 7, "stream exercised too few update kinds"


def test_roundtrip_executed_results(loaded_store, curated_params,
                                    network):
    sut = StoreSUT(loaded_store)
    for qid in sorted(COMPLEX_QUERIES):
        params = curated_params.by_query[qid][0]
        result = sut.execute(ComplexRead(qid, params))
        decoded = codec.decode_result(json.loads(json.dumps(
            codec.encode_result(result))))
        assert decoded == result, f"Q{qid} result did not round-trip"
    person = EntityRef.person(network.persons[0].id)
    message = EntityRef.message(network.posts[0].id)
    for sid, entry in sorted(SHORT_QUERIES.items()):
        ref = person if entry.input_kind == "person" else message
        result = sut.execute(ShortRead(sid, ref))
        decoded = codec.decode_result(json.loads(json.dumps(
            codec.encode_result(result))))
        assert decoded == result, f"S{sid} result did not round-trip"


# -- rejection paths -------------------------------------------------------

def test_unregistered_types_are_refused():
    class Sneaky:
        pass

    with pytest.raises(CodecError):
        codec.encode_value(Sneaky())

    @dataclasses.dataclass
    class NotRegistered:
        x: int

    with pytest.raises(CodecError, match="unregistered"):
        codec.encode_value(NotRegistered(1))


def test_unknown_tags_and_types_are_refused():
    with pytest.raises(CodecError, match="unknown wire value tag"):
        codec.decode_value({"__k": "exec", "v": "os.system"})
    with pytest.raises(CodecError, match="unknown wire dataclass"):
        codec.decode_value({"__k": "dc", "t": "Subprocess", "v": {}})
    with pytest.raises(CodecError, match="unknown wire enum"):
        codec.decode_value({"__k": "enum", "t": "Nope", "v": "X"})
    with pytest.raises(CodecError, match="bad field set"):
        codec.decode_value({"__k": "dc", "t": "Q1Params",
                            "v": {"bogus": 1}})


def test_non_operation_payloads_are_refused():
    with pytest.raises(CodecError, match="not an operation"):
        codec.decode_operation(codec.encode_value("just a string"))
    with pytest.raises(CodecError, match="not an OperationResult"):
        codec.encode_result("not a result")
    with pytest.raises(CodecError, match="not a result"):
        codec.decode_result(codec.encode_value((1, 2)))


def test_unknown_version_is_rejected():
    frame = codec.encode_frame({"kind": "execute"})
    reader = FrameReader()
    reader.feed(frame)
    assert reader.next()["v"] == codec.PROTOCOL_VERSION

    bad = json.dumps({"v": 99, "kind": "execute"}).encode()
    reader.feed(len(bad).to_bytes(4, "big") + bad)
    with pytest.raises(UnsupportedVersionError):
        reader.next()
    unversioned = json.dumps({"kind": "execute"}).encode()
    reader.feed(len(unversioned).to_bytes(4, "big") + unversioned)
    with pytest.raises(UnsupportedVersionError):
        reader.next()


def test_truncated_frame_is_rejected():
    frame = codec.encode_frame({"kind": "execute", "id": 1})
    reader = FrameReader()
    reader.feed(frame[: len(frame) - 3])
    assert reader.next() is None  # incomplete: wait for more bytes
    with pytest.raises(TruncatedFrameError):
        reader.close()
    # A completed stream closes cleanly.
    whole = FrameReader()
    whole.feed(frame)
    assert whole.next() is not None
    whole.close()


def test_oversized_frame_is_rejected():
    reader = FrameReader()
    reader.feed((codec.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
    with pytest.raises(FrameTooLargeError):
        reader.next()
    with pytest.raises(FrameTooLargeError):
        codec.encode_frame(
            {"blob": "x" * (codec.MAX_FRAME_BYTES + 1)})


def test_pipelined_frames_split_at_odd_boundaries():
    messages = [{"id": i, "kind": "execute"} for i in range(5)]
    stream = b"".join(codec.encode_frame(m) for m in messages)
    reader = FrameReader()
    out = []
    for index in range(0, len(stream), 7):  # drip 7 bytes at a time
        reader.feed(stream[index:index + 7])
        while (message := reader.next()) is not None:
            out.append(message["id"])
    reader.close()
    assert out == [0, 1, 2, 3, 4]
