"""Tests for event-driven spiking trends (paper §2.2, Fig. 2a)."""

from __future__ import annotations

from repro.datagen.config import DatagenConfig
from repro.datagen.dictionaries import Dictionaries
from repro.datagen.events import EventCalendar, WorldEvent
from repro.datagen.universe import build_universe
from repro.rng import RandomStream


def _calendar(seed=3, events_per_year=12):
    config = DatagenConfig(num_persons=50, seed=seed,
                           events_per_year=events_per_year)
    universe = build_universe(Dictionaries(config.seed))
    return config, universe, EventCalendar.generate(config, universe)


class TestCalendar:
    def test_deterministic(self):
        __, __, a = _calendar(seed=5)
        __, __, b = _calendar(seed=5)
        assert a.events == b.events

    def test_seed_changes_events(self):
        __, __, a = _calendar(seed=5)
        __, __, b = _calendar(seed=6)
        assert a.events != b.events

    def test_event_count_tracks_rate(self):
        __, __, sparse = _calendar(events_per_year=4)
        __, __, dense = _calendar(events_per_year=40)
        assert len(dense.events) > len(sparse.events)

    def test_events_inside_window(self):
        config, __, calendar = _calendar()
        for event in calendar.events:
            assert config.window.contains(event.time)

    def test_sorted_by_time(self):
        __, __, calendar = _calendar()
        times = [event.time for event in calendar.events]
        assert times == sorted(times)

    def test_level_distribution_skewed(self):
        __, __, calendar = _calendar(events_per_year=300)
        minor = sum(1 for e in calendar.events if e.level == 0)
        major = sum(1 for e in calendar.events if e.level == 2)
        assert minor > major

    def test_magnitude_and_decay_grow_with_level(self):
        low = WorldEvent(0, 1, 0)
        high = WorldEvent(0, 1, 2)
        assert high.magnitude > low.magnitude
        assert high.decay_millis > low.decay_millis


class TestEventPosts:
    def test_returns_none_without_matching_interests(self):
        config, __, calendar = _calendar()
        stream = RandomStream(1)
        result = calendar.maybe_event_post(stream, (999_999,),
                                           config.window.start,
                                           config.window.end)
        assert result is None

    def test_event_post_on_interest(self):
        config, __, calendar = _calendar()
        interests = tuple(event.tag_id for event in calendar.events)
        stream = RandomStream(2)
        hits = 0
        for __ in range(300):
            result = calendar.maybe_event_post(
                stream, interests, config.window.start,
                config.window.end)
            if result is not None:
                timestamp, tag_id = result
                assert config.window.start <= timestamp \
                    < config.window.end
                assert tag_id in interests
                hits += 1
        assert hits > 50

    def test_post_times_cluster_near_event(self):
        """Most event-driven posts land within the decay horizon."""
        config, __, calendar = _calendar()
        event = calendar.events[len(calendar.events) // 2]
        stream = RandomStream(3)
        offsets = []
        for __ in range(500):
            result = calendar.maybe_event_post(
                stream, (event.tag_id,), config.window.start,
                config.window.end)
            if result is not None:
                timestamp, __tag = result
                # Pick only samples from this event's kernel.
                candidates = calendar._by_tag[event.tag_id]
                nearest = min(candidates,
                              key=lambda e: abs(e.time - timestamp))
                if nearest is event:
                    offsets.append(timestamp - event.time)
        assert offsets
        within = sum(1 for o in offsets
                     if -event.decay_millis <= o
                     <= 4 * event.decay_millis)
        assert within / len(offsets) > 0.8


class TestDensitySeries:
    def test_bucketing(self):
        __, __, calendar = _calendar()
        series = calendar.density_series([5, 15, 15, 95], 0, 100,
                                         buckets=10)
        assert series[0] == 1
        assert series[1] == 2
        assert series[9] == 1
        assert sum(series) == 4

    def test_out_of_range_ignored(self):
        __, __, calendar = _calendar()
        series = calendar.density_series([-5, 100, 50], 0, 100,
                                         buckets=10)
        assert sum(series) == 1

    def test_event_driven_density_spikier_than_uniform(self):
        """The Fig. 2a claim: event-driven generation produces spikes."""
        from repro.datagen import generate

        uniform_net = generate(DatagenConfig(
            num_persons=120, seed=9, event_driven_posts=False))
        spiky_net = generate(DatagenConfig(
            num_persons=120, seed=9, event_driven_posts=True))
        config = DatagenConfig(num_persons=120, seed=9)

        def roughness(network):
            """Mean squared successive difference, normalized.

            Spikes produce large jumps between adjacent buckets; the
            smooth growth trend (present in both modes) does not, so
            this detrended measure isolates the event effect.
            """
            times = [p.creation_date for p in network.posts]
            calendar = EventCalendar([])
            series = calendar.density_series(
                times, config.window.start, config.window.end, 60)
            mean = sum(series) / len(series)
            jumps = [(a - b) ** 2 for a, b in zip(series, series[1:])]
            return (sum(jumps) / len(jumps)) / max(mean, 1e-9) ** 2

        assert roughness(spiky_net) > 1.5 * roughness(uniform_net)
