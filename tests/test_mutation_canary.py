"""The mutation canary: a seeded query bug must be caught by every
validation surface, shrunk, and replayable."""

from __future__ import annotations

import pytest

from repro.core.operation import ComplexRead, ShortRead
from repro.core.sut import EngineSUT, StoreSUT
from repro.validation import (
    canary_bug,
    render_differential,
    reproduce,
    run_differential,
    shrink,
)
from repro.workload.operations import EntityRef


class TestCanaryBug:
    def test_patches_and_restores_engine(self, small_split):
        from repro.queries.complex_reads import q2

        engine = EngineSUT.for_network(small_split.bulk)
        horizon = max(m.creation_date
                      for m in small_split.bulk.messages()) + 1
        binding = clean = None
        for edge in small_split.bulk.knows[:50]:
            candidate = q2.Q2Params(edge.person1_id, horizon)
            clean = engine.execute(ComplexRead(2, candidate)).value
            if clean:
                binding = candidate
                break
        assert binding is not None, \
            "no person with friend messages in the bulk part"
        with canary_bug("engine"):
            buggy = engine.execute(ComplexRead(2, binding)).value
            assert buggy == clean[1:]
        assert engine.execute(ComplexRead(2, binding)).value == clean

    def test_patches_and_restores_store(self, small_split,
                                        small_network):
        store = StoreSUT.for_network(small_split.bulk)
        ref = EntityRef.message(small_split.bulk.posts[0].id)
        clean = store.execute(ShortRead(4, ref)).value
        with canary_bug("store"):
            buggy = store.execute(ShortRead(4, ref)).value
            assert buggy.content.endswith(" [canary]")
        assert store.execute(ShortRead(4, ref)).value == clean

    def test_restores_on_error(self):
        from repro.engine import snb_queries

        original = snb_queries.ENGINE_COMPLEX[2]
        with pytest.raises(RuntimeError):
            with canary_bug("engine"):
                raise RuntimeError("boom")
        assert snb_queries.ENGINE_COMPLEX[2] is original


class TestCanaryDetection:
    def test_differential_catches_shrinks_and_replays(self, small_split,
                                                      small_params):
        """The full loop the harness promises: a seeded bug is caught
        by the differential runner, the counterexample shrinks to a
        near-minimal update prefix, the bundle reproduces the failure
        under the bug and passes without it."""
        with canary_bug("engine"):
            report, bundle = run_differential(
                small_split, small_params, persons=60, seed=11,
                batch_size=300, max_mismatches=3)
            assert not report.ok
            assert bundle is not None
            labels = {m.label for m in report.mismatches}
            assert labels & {"Q2", "S4"}, labels
            assert "MISMATCHES" in render_differential(report)

            result = shrink(bundle, split=small_split)
            # The bug corrupts query results, not update handling: the
            # counterexample must shrink to (nearly) no updates — zero
            # when the failing read hits bulk-loaded data, a handful
            # when it hits an entity the update stream created.
            assert result.shrunk_updates <= 2
            assert result.shrunk_updates < result.original_updates
            assert reproduce(result.bundle, split=small_split) \
                is not None
        # Without the bug the shrunk bundle must NOT reproduce.
        assert reproduce(result.bundle, split=small_split) is None

    def test_bundle_round_trips_through_json(self, small_split,
                                             small_params, tmp_path):
        with canary_bug("engine"):
            __, bundle = run_differential(
                small_split, small_params, persons=60, seed=11,
                batch_size=300, max_mismatches=1)
        assert bundle is not None
        path = tmp_path / "replay.json"
        bundle.save(str(path))

        from repro.validation import ReplayBundle

        loaded = ReplayBundle.load(str(path))
        assert loaded.persons == 60 and loaded.seed == 11
        assert loaded.update_indices == bundle.update_indices
        assert loaded.failing == bundle.failing
        with canary_bug("engine"):
            assert reproduce(loaded, split=small_split) is not None
        assert reproduce(loaded, split=small_split) is None
