"""Tests for MVCC snapshot isolation semantics."""

from __future__ import annotations

import threading

import pytest

from repro.errors import DuplicateError, WriteConflictError
from repro.store.graph import Direction, GraphStore, IsolationLevel


@pytest.fixture()
def store():
    s = GraphStore()
    with s.transaction() as txn:
        txn.insert_vertex("person", 1, {"age": 30})
    return s


class TestSnapshotIsolation:
    def test_reader_does_not_see_later_commit(self, store):
        reader = store.transaction(IsolationLevel.SNAPSHOT)
        assert reader.vertex("person", 1)["age"] == 30
        with store.transaction() as writer:
            writer.update_vertex("person", 1, age=31)
        # The reader's snapshot predates the writer's commit.
        assert reader.vertex("person", 1)["age"] == 30
        reader.commit()

    def test_reader_does_not_see_later_insert(self, store):
        reader = store.transaction(IsolationLevel.SNAPSHOT)
        with store.transaction() as writer:
            writer.insert_vertex("person", 2, {})
        assert reader.vertex("person", 2) is None
        assert reader.count_vertices("person") == 1
        reader.commit()

    def test_reader_does_not_see_later_edges(self, store):
        reader = store.transaction(IsolationLevel.SNAPSHOT)
        with store.transaction() as writer:
            writer.insert_vertex("person", 2, {})
            writer.insert_edge("knows", 1, 2)
        assert reader.degree("knows", 1) == 0
        reader.commit()

    def test_new_transaction_sees_commit(self, store):
        with store.transaction() as writer:
            writer.update_vertex("person", 1, age=31)
        with store.transaction() as reader:
            assert reader.vertex("person", 1)["age"] == 31

    def test_read_committed_sees_fresh_commits(self, store):
        reader = store.transaction(IsolationLevel.READ_COMMITTED)
        assert reader.vertex("person", 1)["age"] == 30
        with store.transaction() as writer:
            writer.update_vertex("person", 1, age=31)
        assert reader.vertex("person", 1)["age"] == 31
        reader.commit()


class TestWriteConflicts:
    def test_first_committer_wins(self, store):
        a = store.transaction()
        b = store.transaction()
        a.update_vertex("person", 1, age=40)
        b.update_vertex("person", 1, age=50)
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()
        with store.transaction() as reader:
            assert reader.vertex("person", 1)["age"] == 40

    def test_concurrent_duplicate_insert(self, store):
        a = store.transaction()
        b = store.transaction()
        a.insert_vertex("person", 7, {})
        b.insert_vertex("person", 7, {})
        a.commit()
        with pytest.raises(DuplicateError):
            b.commit()

    def test_disjoint_writes_both_commit(self, store):
        a = store.transaction()
        b = store.transaction()
        a.insert_vertex("person", 8, {})
        b.insert_vertex("person", 9, {})
        a.commit()
        b.commit()
        with store.transaction() as reader:
            assert reader.count_vertices("person") == 3

    def test_conflict_counts_as_abort(self, store):
        a = store.transaction()
        b = store.transaction()
        a.update_vertex("person", 1, age=40)
        b.update_vertex("person", 1, age=50)
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()
        assert store.abort_count == 1


class TestAtomicVisibility:
    def test_commit_is_atomic_under_concurrency(self):
        """Readers must never observe half of a multi-write commit."""
        store = GraphStore()
        with store.transaction() as txn:
            txn.insert_vertex("counter", 0, {"value": 0})
        stop = threading.Event()
        anomalies = []

        def writer():
            for i in range(1, 300):
                with store.transaction() as txn:
                    txn.insert_vertex("pair", 2 * i, {"batch": i})
                    txn.insert_vertex("pair", 2 * i + 1, {"batch": i})
            stop.set()

        def reader():
            while not stop.is_set():
                with store.transaction() as txn:
                    count = txn.count_vertices("pair")
                    if count % 2 != 0:
                        anomalies.append(count)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert anomalies == []

    def test_parallel_inserts_all_land(self):
        store = GraphStore()

        def worker(base):
            for i in range(100):
                with store.transaction() as txn:
                    txn.insert_vertex("person", base + i, {})

        threads = [threading.Thread(target=worker, args=(base,))
                   for base in (0, 1000, 2000, 3000)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with store.transaction() as txn:
            assert txn.count_vertices("person") == 400
        assert store.commit_count == 400
