"""Tests for the simulation-time calendar."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import sim_time
from repro.sim_time import (
    DEFAULT_WINDOW,
    NETWORK_END,
    NETWORK_SPAN,
    NETWORK_START,
    SimulationWindow,
    bulk_load_cut,
    date_from_millis,
    iso,
    millis_from_date,
)


class TestConversions:
    def test_epoch(self):
        assert millis_from_date(1970, 1, 1) == 0

    def test_roundtrip(self):
        ts = millis_from_date(2012, 6, 15, 12, 30, 45)
        moment = date_from_millis(ts)
        assert (moment.year, moment.month, moment.day) == (2012, 6, 15)
        assert (moment.hour, moment.minute, moment.second) == (12, 30, 45)

    def test_iso_rendering(self):
        assert iso(millis_from_date(2010, 1, 1)) == "2010-01-01T00:00:00Z"

    def test_network_span_three_years(self):
        years = NETWORK_SPAN / (365.25 * sim_time.MILLIS_PER_DAY)
        assert 2.9 < years < 3.1


class TestBulkLoadCut:
    def test_default_cut_is_32_of_36_months(self):
        cut = bulk_load_cut()
        fraction = (cut - NETWORK_START) / NETWORK_SPAN
        assert abs(fraction - 32 / 36) < 1e-9

    def test_cut_before_end(self):
        assert NETWORK_START < bulk_load_cut() < NETWORK_END

    def test_custom_window(self):
        cut = bulk_load_cut(0, 36)
        assert cut == 32


class TestSimulationWindow:
    def test_span(self):
        assert SimulationWindow(10, 30).span == 20

    def test_contains(self):
        window = SimulationWindow(10, 30)
        assert window.contains(10)
        assert window.contains(29)
        assert not window.contains(30)
        assert not window.contains(9)

    def test_clamp(self):
        window = SimulationWindow(10, 30)
        assert window.clamp(5) == 10
        assert window.clamp(50) == 29
        assert window.clamp(20) == 20

    def test_at_fraction(self):
        window = SimulationWindow(0, 100)
        assert window.at_fraction(0.0) == 0
        assert window.at_fraction(0.5) == 50
        assert window.at_fraction(1.0) == 100

    def test_at_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            SimulationWindow(0, 10).at_fraction(1.5)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            SimulationWindow(10, 5)

    def test_default_window_matches_constants(self):
        assert DEFAULT_WINDOW.start == NETWORK_START
        assert DEFAULT_WINDOW.end == NETWORK_END

    @given(st.integers(min_value=0, max_value=10 ** 15),
           st.integers(min_value=1, max_value=10 ** 12))
    @settings(max_examples=50)
    def test_clamp_always_inside(self, start, span):
        window = SimulationWindow(start, start + span)
        for probe in (start - 1, start, start + span // 2,
                      start + span, start + span + 99):
            clamped = window.clamp(probe)
            assert window.start <= clamped < window.end
