"""Tests for the deterministic splittable RNG."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import RandomStream, mix_key, splitmix64


class TestSplitMix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_advances_state(self):
        state, out = splitmix64(42)
        assert state != 42
        state2, out2 = splitmix64(state)
        assert out2 != out

    def test_output_64_bits(self):
        __, out = splitmix64(123456789)
        assert 0 <= out < 2 ** 64


class TestMixKey:
    def test_deterministic(self):
        assert mix_key(1, "person", 7) == mix_key(1, "person", 7)

    def test_distinct_purposes_differ(self):
        assert mix_key(1, "person", 7) != mix_key(1, "friend", 7)

    def test_distinct_ids_differ(self):
        assert mix_key(1, "person", 7) != mix_key(1, "person", 8)

    def test_string_hash_stable_across_calls(self):
        # Must not depend on Python's randomized str hash.
        assert mix_key("abc") == mix_key("abc")

    def test_order_matters(self):
        assert mix_key(1, 2) != mix_key(2, 1)


class TestRandomStream:
    def test_same_key_same_sequence(self):
        a = RandomStream.for_key(1, "x", 5)
        b = RandomStream.for_key(1, "x", 5)
        assert [a.next_u64() for __ in range(20)] \
            == [b.next_u64() for __ in range(20)]

    def test_different_keys_diverge(self):
        a = RandomStream.for_key(1, "x", 5)
        b = RandomStream.for_key(1, "x", 6)
        assert [a.next_u64() for __ in range(5)] \
            != [b.next_u64() for __ in range(5)]

    def test_random_in_unit_interval(self):
        stream = RandomStream(99)
        for __ in range(1000):
            value = stream.random()
            assert 0.0 <= value < 1.0

    def test_random_mean_near_half(self):
        stream = RandomStream(3)
        values = [stream.random() for __ in range(5000)]
        assert abs(sum(values) / len(values) - 0.5) < 0.03

    def test_randint_bounds(self):
        stream = RandomStream(1)
        values = {stream.randint(3, 7) for __ in range(500)}
        assert values == {3, 4, 5, 6, 7}

    def test_randint_single_value(self):
        stream = RandomStream(1)
        assert stream.randint(5, 5) == 5

    def test_randint_empty_range_raises(self):
        stream = RandomStream(1)
        with pytest.raises(ValueError):
            stream.randint(7, 3)

    def test_choice_covers_all(self):
        stream = RandomStream(2)
        seen = {stream.choice("abc") for __ in range(200)}
        assert seen == {"a", "b", "c"}

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RandomStream(1).choice([])

    def test_sample_distinct(self):
        stream = RandomStream(4)
        picked = stream.sample(list(range(20)), 10)
        assert len(picked) == 10
        assert len(set(picked)) == 10

    def test_sample_too_large_raises(self):
        with pytest.raises(ValueError):
            RandomStream(1).sample([1, 2], 3)

    def test_shuffle_is_permutation(self):
        stream = RandomStream(5)
        items = list(range(30))
        shuffled = list(items)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely

    def test_geometric_support(self):
        stream = RandomStream(6)
        values = [stream.geometric(0.3) for __ in range(1000)]
        assert min(values) == 0
        assert all(v >= 0 for v in values)

    def test_geometric_mean(self):
        stream = RandomStream(7)
        p = 0.25
        values = [stream.geometric(p) for __ in range(8000)]
        expected = (1 - p) / p
        assert abs(sum(values) / len(values) - expected) < 0.3

    def test_geometric_p_one(self):
        assert RandomStream(1).geometric(1.0) == 0

    def test_geometric_invalid_p(self):
        with pytest.raises(ValueError):
            RandomStream(1).geometric(0.0)
        with pytest.raises(ValueError):
            RandomStream(1).geometric(1.5)

    def test_exponential_mean(self):
        stream = RandomStream(8)
        values = [stream.exponential(10.0) for __ in range(8000)]
        assert abs(sum(values) / len(values) - 10.0) < 0.6

    def test_exponential_invalid_mean(self):
        with pytest.raises(ValueError):
            RandomStream(1).exponential(0.0)

    def test_zipf_bounds(self):
        stream = RandomStream(9)
        for n in (1, 2, 10, 1000):
            for __ in range(200):
                assert 0 <= stream.zipf_index(n) < n

    def test_zipf_skewed_to_head(self):
        stream = RandomStream(10)
        values = [stream.zipf_index(100) for __ in range(5000)]
        head = sum(1 for v in values if v < 10)
        assert head > len(values) * 0.4

    def test_zipf_invalid_n(self):
        with pytest.raises(ValueError):
            RandomStream(1).zipf_index(0)

    def test_weighted_choice_respects_weights(self):
        stream = RandomStream(11)
        counts = [0, 0, 0]
        for __ in range(6000):
            counts[stream.weighted_choice((0.1, 0.1, 0.8))] += 1
        assert counts[2] > counts[0] * 4
        assert counts[2] > counts[1] * 4

    def test_weighted_choice_zero_total_raises(self):
        with pytest.raises(ValueError):
            RandomStream(1).weighted_choice((0.0, 0.0))


class TestRandomStreamProperties:
    @given(st.integers(min_value=0, max_value=2 ** 64 - 1))
    @settings(max_examples=50)
    def test_seed_reproducible(self, seed):
        assert RandomStream(seed).next_u64() \
            == RandomStream(seed).next_u64()

    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=0, max_value=500),
           st.integers())
    @settings(max_examples=100)
    def test_randint_always_in_range(self, low, span, seed):
        stream = RandomStream(seed)
        value = stream.randint(low, low + span)
        assert low <= value <= low + span

    @given(st.lists(st.integers(), min_size=1, max_size=40),
           st.integers())
    @settings(max_examples=100)
    def test_shuffle_preserves_multiset(self, items, seed):
        stream = RandomStream(seed)
        shuffled = list(items)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == sorted(items)

    @given(st.floats(min_value=0.01, max_value=1.0), st.integers())
    @settings(max_examples=100)
    def test_geometric_non_negative(self, p, seed):
        assert RandomStream(seed).geometric(p) >= 0

    @given(st.integers(min_value=1, max_value=10_000),
           st.floats(min_value=0.5, max_value=2.0), st.integers())
    @settings(max_examples=100)
    def test_zipf_in_range(self, n, skew, seed):
        assert 0 <= RandomStream(seed).zipf_index(n, skew) < n


class TestZipfSampler:
    def test_in_range(self):
        from repro.rng import ZipfSampler

        sampler = ZipfSampler(40)
        stream = RandomStream(3)
        for __ in range(2000):
            assert 0 <= sampler.sample(stream) < 40

    def test_matches_zipf_index_distribution(self):
        """The table-driven sampler approximates the exact inverse CDF."""
        from repro.rng import ZipfSampler

        sampler = ZipfSampler(100, skew=1.05)
        table_stream = RandomStream(7)
        exact_stream = RandomStream(8)
        n = 20_000
        head_table = sum(1 for __ in range(n)
                         if sampler.sample(table_stream) < 10)
        head_exact = sum(1 for __ in range(n)
                         if exact_stream.zipf_index(100, 1.05) < 10)
        assert abs(head_table - head_exact) / n < 0.03

    def test_single_element(self):
        from repro.rng import ZipfSampler

        sampler = ZipfSampler(1)
        assert sampler.sample(RandomStream(1)) == 0

    def test_invalid_n(self):
        from repro.rng import ZipfSampler

        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_skewed_toward_head(self):
        from repro.rng import ZipfSampler

        sampler = ZipfSampler(50)
        stream = RandomStream(5)
        values = [sampler.sample(stream) for __ in range(5000)]
        assert sum(1 for v in values if v < 5) \
            > sum(1 for v in values if v >= 25)
