"""Shared fixtures: one small generated network and derived artifacts.

The network is generated once per session (seeded, deterministic) and
shared read-only by most tests; tests that mutate state build their own
stores/catalogs from it.
"""

from __future__ import annotations

import pytest

from repro.curation import ParameterCurator
from repro.datagen import DatagenConfig, generate
from repro.datagen.stats import FrequencyStatistics
from repro.datagen.update_stream import split_network
from repro.engine.catalog import load_catalog
from repro.store import load_network

#: One deterministic small network for the whole session.
NETWORK_SEED = 7
NETWORK_PERSONS = 150


@pytest.fixture(scope="session")
def datagen_config() -> DatagenConfig:
    return DatagenConfig(num_persons=NETWORK_PERSONS, seed=NETWORK_SEED)


@pytest.fixture(scope="session")
def network(datagen_config):
    return generate(datagen_config)


@pytest.fixture(scope="session")
def frequency_stats(network):
    return FrequencyStatistics.of(network)


@pytest.fixture(scope="session")
def split(network):
    return split_network(network)


@pytest.fixture(scope="session")
def loaded_store(network):
    """A store with the FULL network loaded (read-only tests)."""
    return load_network(network)


@pytest.fixture(scope="session")
def loaded_catalog(network):
    """A relational catalog with the full network (read-only tests)."""
    return load_catalog(network)


@pytest.fixture(scope="session")
def curated_params(network, frequency_stats):
    curator = ParameterCurator(network, frequency_stats, seed=3)
    return curator.curate(4)


@pytest.fixture()
def fresh_store(split):
    """A store with only the bulk part loaded (mutating tests)."""
    return load_network(split.bulk)


@pytest.fixture()
def fresh_catalog(split):
    return load_catalog(split.bulk)


#: A second, smaller network for the differential-validation tests —
#: chosen so its update stream still contains all 8 update kinds.
SMALL_SEED = 11
SMALL_PERSONS = 60


@pytest.fixture(scope="session")
def small_network():
    return generate(DatagenConfig(num_persons=SMALL_PERSONS,
                                  seed=SMALL_SEED))


@pytest.fixture(scope="session")
def small_split(small_network):
    return split_network(small_network)


@pytest.fixture(scope="session")
def small_params(small_split):
    return ParameterCurator(small_split.bulk, seed=3).curate(2)
