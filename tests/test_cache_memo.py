"""Short-read memo: dependency mapping, invalidation, store races."""

from __future__ import annotations

import pytest

from repro.cache import (
    FRIENDSHIP_SENSITIVE,
    ShortReadMemo,
    touched_refs,
)
from repro.core import ShortRead, StoreSUT, Update
from repro.datagen.update_stream import UpdateKind
from repro.store import load_network
from repro.workload.operations import EntityRef


def _find(updates, kind):
    for index, update in enumerate(updates):
        if update.kind is kind:
            return index, update
    return None, None


def _first_of(updates, kind):
    index, update = _find(updates, kind)
    if update is None:
        pytest.skip(f"stream contains no {kind.name}")
    return index, update


# -- touched_refs dependency mapping ---------------------------------------

def test_touched_refs_per_kind(split):
    updates = split.updates
    __, add_person = _first_of(updates, UpdateKind.ADD_PERSON)
    assert touched_refs(add_person) \
        == (EntityRef.person(add_person.payload.id),)

    __, add_friend = _first_of(updates, UpdateKind.ADD_FRIENDSHIP)
    assert touched_refs(add_friend) == (
        EntityRef.person(add_friend.payload.person1_id),
        EntityRef.person(add_friend.payload.person2_id))

    __, add_post = _first_of(updates, UpdateKind.ADD_POST)
    assert touched_refs(add_post) == (
        EntityRef.person(add_post.payload.author_id),
        EntityRef.message(add_post.payload.id))

    __, add_comment = _first_of(updates, UpdateKind.ADD_COMMENT)
    assert touched_refs(add_comment) == (
        EntityRef.person(add_comment.payload.author_id),
        EntityRef.message(add_comment.payload.id),
        EntityRef.message(add_comment.payload.reply_of_id))

    for kind in (UpdateKind.ADD_FORUM, UpdateKind.ADD_FORUM_MEMBERSHIP,
                 UpdateKind.ADD_LIKE_POST, UpdateKind.ADD_LIKE_COMMENT):
        __, update = _find(updates, kind)
        if update is not None:
            assert touched_refs(update) == ()


# -- memoization and per-entity invalidation -------------------------------

def test_begin_put_roundtrip():
    memo = ShortReadMemo()
    ref = EntityRef.person(5)
    value, token = memo.begin(1, ref)
    assert value is None and token is not None
    memo.put(1, ref, "profile", token)
    value, token = memo.begin(1, ref)
    assert value == "profile" and token is None
    assert memo.stats.hits == 1 and memo.stats.misses == 1


def test_update_invalidates_only_touched_refs(split):
    __, add_post = _first_of(split.updates, UpdateKind.ADD_POST)
    author = EntityRef.person(add_post.payload.author_id)
    other = EntityRef.person(add_post.payload.author_id + 10**9)
    memo = ShortReadMemo()
    for ref in (author, other):
        __, token = memo.begin(2, ref)
        memo.put(2, ref, f"posts-of-{ref.id}", token)
    memo.note_update(add_post)
    assert memo.begin(2, author)[1] is not None  # invalidated
    assert memo.begin(2, other)[0] == f"posts-of-{other.id}"
    assert memo.stats.invalidations >= 1


def test_friendship_epoch_invalidates_friend_sensitive_queries(split):
    __, add_friend = _first_of(split.updates, UpdateKind.ADD_FRIENDSHIP)
    bystander = EntityRef.person(10**9)  # unrelated to the new edge
    memo = ShortReadMemo()
    for query_id in (1, 3):
        __, token = memo.begin(query_id, bystander)
        memo.put(query_id, bystander, f"s{query_id}", token)
    memo.note_update(add_friend)
    # S3 reads the friendship graph → every entry must recompute, even
    # for persons the new edge does not name ...
    assert 3 in FRIENDSHIP_SENSITIVE
    assert memo.begin(3, bystander)[1] is not None
    # ... while S1 (profile only) keeps serving.
    assert memo.begin(1, bystander)[0] == "s1"


def test_put_refuses_result_from_before_invalidation(split):
    __, add_person = _first_of(split.updates, UpdateKind.ADD_PERSON)
    ref = EntityRef.person(add_person.payload.id)
    memo = ShortReadMemo()
    __, token = memo.begin(1, ref)
    memo.note_update(add_person)  # lands between compute and store
    memo.put(1, ref, "stale negative result", token)
    value, new_token = memo.begin(1, ref)
    assert value is None and new_token is not None  # refused
    memo.put(1, ref, "fresh", new_token)
    assert memo.begin(1, ref)[0] == "fresh"


def test_capacity_eviction_clears():
    memo = ShortReadMemo(max_entries=3)
    for pid in range(4):
        ref = EntityRef.person(pid)
        __, token = memo.begin(1, ref)
        memo.put(1, ref, pid, token)
    assert memo.stats.evictions == 1
    assert len(memo) <= 3


# -- end-to-end staleness against a live SUT -------------------------------

def test_s2_memo_never_serves_stale_rows(split):
    """S2 memoized before the author's post must recompute after it."""
    sut = StoreSUT(load_network(split.bulk))
    memo = ShortReadMemo()
    index, add_post = next(
        (i, u) for i, u in enumerate(split.updates)
        if u.kind is UpdateKind.ADD_POST)
    for update in split.updates[:index]:
        sut.execute(Update(update))
        memo.note_update(update)
    ref = EntityRef.person(add_post.payload.author_id)

    __, token = memo.begin(2, ref)
    before = sut.execute(ShortRead(2, ref)).value
    memo.put(2, ref, before, token)
    assert memo.begin(2, ref)[0] == before  # memoized

    sut.execute(Update(add_post))
    memo.note_update(add_post)
    value, token = memo.begin(2, ref)
    assert token is not None  # must recompute, not serve `before`
    after = sut.execute(ShortRead(2, ref)).value
    assert any(row.message_id == add_post.payload.id for row in after)
    memo.put(2, ref, after, token)
    assert memo.begin(2, ref)[0] == after
