"""Update-aware differential execution: plan building, the lockstep
runner, and the driver-level DifferentialConnector."""

from __future__ import annotations

from repro.cache.memo import touched_refs
from repro.core.sut import EngineSUT, StoreSUT
from repro.driver.connectors import DifferentialConnector
from repro.driver.modes import ExecutionMode
from repro.driver.scheduler import DriverConfig, WorkloadDriver
from repro.validation import (
    build_plan,
    render_differential,
    run_differential,
    snapshot_catalog,
    snapshot_digest,
    snapshot_store,
)
from repro.workload.mix import build_mixed_stream


class TestBuildPlan:
    def test_updates_stay_in_stream_order(self, small_split,
                                          small_params):
        plan = build_plan(small_split, small_params, batch_size=200)
        update_indices = [s.index for s in plan if s.action == "update"]
        assert update_indices == list(range(len(small_split.updates)))

    def test_ends_with_checkpoint(self, small_split, small_params):
        plan = build_plan(small_split, small_params, batch_size=200)
        assert plan[-1].action == "checkpoint"

    def test_reads_rotate_templates(self, small_split, small_params):
        plan = build_plan(small_split, small_params, batch_size=200,
                          reads_per_batch=3)
        complex_ids = [s.query_id for s in plan
                       if s.action == "complex"]
        # Rotation covers more than a handful of the 14 templates.
        assert len(set(complex_ids)) >= 9

    def test_short_reads_target_touched_entities(self, small_split,
                                                 small_params):
        plan = build_plan(small_split, small_params, batch_size=200)
        touched = set()
        for op in small_split.updates:
            touched.update(touched_refs(op))
        shorts = [s for s in plan if s.action == "short"]
        assert shorts
        assert all(s.entity in touched for s in shorts)

    def test_empty_stream_still_checkpoints(self, small_split,
                                            small_params):
        from dataclasses import replace

        empty = replace(small_split, updates=[])
        plan = build_plan(empty, small_params)
        assert [s.action for s in plan] == ["checkpoint"]


class TestRunDifferential:
    def test_clean_run(self, small_split, small_params):
        report, bundle = run_differential(
            small_split, small_params, persons=60, seed=11,
            batch_size=300)
        assert report.ok, render_differential(report)
        assert bundle is None
        assert report.updates_applied == len(small_split.updates)
        assert report.reads_checked > 20
        assert report.snapshots_checked >= 2
        assert "OK — systems agree" in render_differential(report)


class TestDifferentialConnector:
    def test_driver_run_agrees_and_converges(self, small_split,
                                             small_params):
        """Both SUTs driven through the real scheduler (sequential,
        one partition — the strict-oracle configuration) agree on
        every interleaved read and on the final full-graph state."""
        store_sut = StoreSUT.for_network(small_split.bulk)
        engine_sut = EngineSUT.for_network(small_split.bulk)
        connector = DifferentialConnector(store_sut, engine_sut)
        stream = build_mixed_stream(small_split.updates[:400],
                                    small_params)
        driver = WorkloadDriver(connector, DriverConfig(
            num_partitions=1, mode=ExecutionMode.SEQUENTIAL))
        report = driver.run(stream)
        assert report.metrics.operations == len(stream)
        assert connector.agreed, connector.disagreements
        assert snapshot_digest(snapshot_store(store_sut.store)) \
            == snapshot_digest(snapshot_catalog(engine_sut.catalog))
