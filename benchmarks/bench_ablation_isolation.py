"""Ablation — isolation levels on the graph store.

The paper requires serializability but notes "systems providing snapshot
isolation behave identically to serializable" for this insert-only
workload.  This bench verifies that observation operationally: replaying
the update stream under SNAPSHOT vs READ_COMMITTED produces identical
final states and comparable throughput — i.e., SI costs nothing extra
and loses nothing here.
"""

from __future__ import annotations

import time

from repro.bench import emit_artifact, format_table
from repro.queries.updates import execute_update
from repro.store import load_network
from repro.store.graph import IsolationLevel
from repro.store.loader import VertexLabel


def _replay(split, isolation):
    store = load_network(split.bulk)
    started = time.perf_counter()
    for op in split.updates:
        execute_update(store, op, isolation)
    elapsed = time.perf_counter() - started
    with store.transaction() as txn:
        state = (txn.count_vertices(VertexLabel.PERSON),
                 txn.count_vertices(VertexLabel.POST),
                 txn.count_vertices(VertexLabel.COMMENT),
                 txn.count_vertices(VertexLabel.FORUM))
    return len(split.updates) / elapsed, state


def test_ablation_isolation_levels(benchmark, bench_split):
    snapshot_rate, snapshot_state = _replay(bench_split,
                                            IsolationLevel.SNAPSHOT)
    rc_rate, rc_state = _replay(bench_split,
                                IsolationLevel.READ_COMMITTED)
    benchmark.pedantic(_replay,
                       args=(bench_split, IsolationLevel.SNAPSHOT),
                       rounds=1, iterations=1)
    rows = [
        ["snapshot isolation", round(snapshot_rate), *snapshot_state],
        ["read committed", round(rc_rate), *rc_state],
    ]
    emit_artifact("ablation_isolation", format_table(
        ["isolation", "updates/s", "persons", "posts", "comments",
         "forums"], rows,
        title="Ablation — isolation level on the insert-only update "
              "stream"))

    # "Snapshot isolation behaves identically to serializable" for this
    # workload: identical final state, and no throughput penalty beyond
    # noise.
    assert snapshot_state == rc_state
    assert snapshot_rate > 0.5 * rc_rate
