"""Figure 3a — friendship degree distribution of a generated network.

The paper's SF10 histogram is heavy-tailed with the bulk of persons at
low-to-medium degree.  We regenerate the histogram and assert the
heavy-tail properties: mode below the mean, max well above the mean.
"""

from __future__ import annotations

from collections import Counter

from repro.bench import ascii_histogram, emit_artifact
from repro.datagen.degrees import degree_histogram


def _degrees(network):
    degree = Counter()
    for edge in network.knows:
        degree[edge.person1_id] += 1
        degree[edge.person2_id] += 1
    for person in network.persons:
        degree.setdefault(person.id, 0)
    return list(degree.values())


def test_figure3a_degree_histogram(benchmark, bench_network):
    degrees = benchmark(_degrees, bench_network)
    histogram = degree_histogram(degrees, bucket=5)
    emit_artifact("figure3a_degree_histogram", ascii_histogram(
        [(f"{b}-{b + 4}", count) for b, count in histogram.items()],
        title="Figure 3a — friendship degree distribution"))

    mean = sum(degrees) / len(degrees)
    mode_bucket = max(histogram, key=histogram.get)
    assert mode_bucket <= mean          # bulk sits at/below the mean
    assert max(degrees) > 2 * mean       # heavy tail
    assert min(degrees) >= 0
