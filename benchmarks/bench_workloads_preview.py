"""Extension — all three SNB workloads on one dataset (paper §1).

"We specifically aim to run all three benchmarks on the same dataset."
The Interactive workload is fully reproduced by the other benches; this
one runs the previews of the two other workloads — SNB-Algorithms
(PageRank, BFS, community detection, clustering) and SNB-BI (four draft
group-by queries) — over the *same* session network, and checks the
structural claims that make the shared dataset interesting: community
structure exists, and the correlated graph clusters far above random.
"""

from __future__ import annotations

import time

import networkx as nx

from repro.algorithms import (
    average_clustering,
    community_sizes,
    graph500_bfs_sample,
    knows_graph,
    label_propagation,
    pagerank,
)
from repro.bench import emit_artifact, format_table
from repro.bi import (
    bi1_posting_summary,
    bi2_tag_evolution,
    bi3_popular_topics_by_country,
    bi4_influential_posters,
)


def _timed(function, *args, **kwargs):
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return result, (time.perf_counter() - started) * 1000


def test_three_workloads_one_dataset(benchmark, bench_network,
                                     bench_catalog):
    adjacency = knows_graph(bench_network)

    ranks, pagerank_ms = _timed(pagerank, adjacency)
    labels, lp_ms = _timed(label_propagation, adjacency, seed=3)
    sizes = community_sizes(labels)
    clustering, clustering_ms = _timed(average_clustering, adjacency)
    bfs, bfs_ms = _timed(graph500_bfs_sample, adjacency, 8, 1)
    benchmark.pedantic(pagerank, args=(adjacency,), rounds=3,
                       iterations=1)

    bi1, bi1_ms = _timed(bi1_posting_summary, bench_catalog)
    start = min(m.creation_date for m in bench_network.messages())
    bi2, bi2_ms = _timed(bi2_tag_evolution, bench_catalog, start)
    bi3, bi3_ms = _timed(bi3_popular_topics_by_country, bench_catalog)
    bi4, bi4_ms = _timed(bi4_influential_posters, bench_catalog, 3)

    rows = [
        ["Algorithms: PageRank", round(pagerank_ms, 1),
         f"top rank {max(ranks.values()):.4f}"],
        ["Algorithms: label propagation", round(lp_ms, 1),
         f"{len(sizes)} communities, largest {max(sizes.values())}"],
        ["Algorithms: avg clustering", round(clustering_ms, 1),
         f"{clustering:.3f}"],
        ["Algorithms: Graph500 BFS x8", round(bfs_ms, 1),
         f"max reach {max(r for __, r, __e in bfs)}"],
        ["BI-1 posting summary", round(bi1_ms, 1),
         f"{len(bi1)} groups"],
        ["BI-2 tag evolution", round(bi2_ms, 1), f"{len(bi2)} tags"],
        ["BI-3 topics by country", round(bi3_ms, 1),
         f"{len(bi3)} rows"],
        ["BI-4 influential posters", round(bi4_ms, 1),
         f"{len(bi4)} rows"],
    ]
    emit_artifact("workloads_preview", format_table(
        ["workload query", "ms", "result"], rows,
        title="SNB-Algorithms + SNB-BI previews on the Interactive "
              "dataset"))

    # The correlated graph has community structure (paper [13]).
    assert max(sizes.values()) >= 5
    graph = nx.Graph()
    graph.add_nodes_from(adjacency)
    graph.add_edges_from((a, b) for a, friends in adjacency.items()
                         for b in friends if a < b)
    random_graph = nx.gnm_random_graph(graph.number_of_nodes(),
                                       graph.number_of_edges(), seed=7)
    assert clustering > 2 * max(nx.average_clustering(random_graph),
                                1e-6)
    # BI queries return non-trivial results.
    assert bi1 and bi2 and bi3 and bi4
