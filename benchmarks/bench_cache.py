"""A/B harness for the hot-path caching layer (``repro.cache``).

Runs the same interactive mix twice per SUT — caches off (the seed
behaviour) vs caches on — and reports wall time, speedup, and every
cache's hit/miss counters as a telemetry metric table.

Two phases per run, mirroring how the caches see production traffic:

* **warm**: the full mixed stream (updates + complex reads + walks) is
  played once in stream order.  Updates exercise commit-time
  invalidation; this phase is deliberately untimed, since replaying the
  insert stream twice would raise duplicate-key errors.
* **repeat**: the read-only portion of the mix (complex reads with
  their short-read walks) is replayed R times and timed.  This is the
  steady-state the caches exist for: repeated query shapes (plan
  cache), hot adjacency lists (adjacency cache), revisited entities
  (short-read memo).

Standalone: ``PYTHONPATH=src python benchmarks/bench_cache.py --quick``
exits 1 if any cached configuration is more than 10% slower than its
uncached twin (the CI regression gate).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import emit_artifact, format_table
from repro.cache import (
    AdjacencyCache,
    CacheConfig,
    PlanCache,
    ShortReadMemo,
)
from repro.core import InteractiveConnector, EngineSUT, StoreSUT
from repro.curation import ParameterCurator
from repro.datagen import DatagenConfig, generate
from repro.datagen.stats import FrequencyStatistics
from repro.datagen.update_stream import split_network
from repro.engine.catalog import load_catalog
from repro.store import load_network
from repro.telemetry import render_metrics
from repro.telemetry.metrics import MetricRegistry
from repro.workload import QueryMix, build_mixed_stream
from repro.workload.operations import ReadOperation
from repro.workload.random_walk import RandomWalkConfig

#: CI gate: cached must not be slower than uncached by more than this.
MAX_REGRESSION = 1.10

#: The interactive mix is short-read dominated (the paper's driver
#: issues a short-read chain after every complex read); a slow-decaying
#: walk reproduces that ratio, and is where the memo earns its keep.
WALK = RandomWalkConfig(probability=0.98, delta=0.02)


def _prepare(persons: int, seed: int):
    network = generate(DatagenConfig(num_persons=persons, seed=seed))
    split = split_network(network)
    stats = FrequencyStatistics.of(network)
    params = ParameterCurator(network, stats, seed=seed).curate(6)
    stream = build_mixed_stream(split.updates, params, QueryMix(),
                                walk_seed=seed)
    return split, stream


def _build_connector(sut_kind: str, cache: CacheConfig, split, seed: int):
    if sut_kind == "store":
        store = load_network(split.bulk)
        if cache.adjacency:
            store.adjacency_cache = AdjacencyCache(
                cache.adjacency_max_entries)
        sut, caches = StoreSUT(store), \
            [store.adjacency_cache] if cache.adjacency else []
    else:
        catalog = load_catalog(split.bulk)
        if cache.plan:
            catalog.plan_cache = PlanCache(cache.plan_max_entries)
        sut, caches = EngineSUT(catalog), \
            [catalog.plan_cache] if cache.plan else []
    memo = ShortReadMemo(cache.memo_max_entries) if cache.memo else None
    if memo is not None:
        caches.append(memo)
    connector = InteractiveConnector(sut, WALK, seed=seed, memo=memo)
    return connector, caches


def _run_one(sut_kind: str, cache: CacheConfig, split, stream,
             repeats: int, seed: int):
    """Warm on the full mix, then time R repeats of the read-only mix."""
    connector, caches = _build_connector(sut_kind, cache, split, seed)
    for operation in stream:
        connector.execute(operation)
    reads = [op for op in stream if isinstance(op, ReadOperation)]
    started = time.perf_counter()
    for __ in range(repeats):
        for operation in reads:
            connector.execute(operation)
    elapsed = time.perf_counter() - started
    return elapsed, [c.stats for c in caches]


def run_ab(persons: int, repeats: int, seed: int = 42,
           suts=("store", "engine")):
    """Run the A/B comparison; returns (rows, all_stats, ok)."""
    split, stream = _prepare(persons, seed)
    rows, all_stats, ok = [], [], True
    for sut_kind in suts:
        uncached, __ = _run_one(sut_kind, CacheConfig.none(), split,
                                stream, repeats, seed)
        cached, stats = _run_one(sut_kind, CacheConfig.enabled(), split,
                                 stream, repeats, seed)
        speedup = uncached / cached if cached > 0 else float("inf")
        ok = ok and cached <= uncached * MAX_REGRESSION
        rows.append([sut_kind, f"{uncached:.3f}", f"{cached:.3f}",
                     f"{speedup:.2f}x"])
        all_stats.extend(stats)
    return rows, all_stats, ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="A/B the hot-path caches against the uncached seed")
    parser.add_argument("--quick", action="store_true",
                        help="small network, few repeats (CI smoke)")
    parser.add_argument("--persons", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sut", choices=("store", "engine", "both"),
                        default="both")
    args = parser.parse_args(argv)
    persons = args.persons or (160 if args.quick else 250)
    repeats = args.repeats or (3 if args.quick else 6)
    suts = ("store", "engine") if args.sut == "both" else (args.sut,)

    rows, all_stats, ok = run_ab(persons, repeats, seed=args.seed,
                                 suts=suts)
    table = format_table(
        ["sut", "uncached (s)", "cached (s)", "speedup"], rows,
        title=f"hot-path cache A/B — {persons} persons, "
              f"{repeats}x repeated read mix")
    print(table)
    registry = MetricRegistry()
    for stats in all_stats:
        stats.publish(registry)
    print()
    print(render_metrics(registry))
    if not ok:
        print(f"\nFAIL: a cached run was more than "
              f"{MAX_REGRESSION - 1:.0%} slower than uncached",
              file=sys.stderr)
        return 1
    return 0


def test_cache_speedup(benchmark):
    """Pytest entry: cached must beat the 10%-regression gate."""
    rows, all_stats, ok = benchmark.pedantic(
        run_ab, args=(120, 2), kwargs={"suts": ("store",)},
        rounds=1, iterations=1)
    emit_artifact("cache_ab", format_table(
        ["sut", "uncached (s)", "cached (s)", "speedup"], rows,
        title="hot-path cache A/B (store, quick)"))
    assert ok
    assert any(stats.hits > 0 for stats in all_stats)


if __name__ == "__main__":
    sys.exit(main())
