"""Table 7 — mean runtime of simple read-only queries (ms), two SUTs.

Short reads are point lookups: the paper's rows are single-digit
milliseconds almost everywhere.  We check the corresponding shape: every
short read is far cheaper than the mean complex read.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import emit_artifact, format_table
from repro.core.operation import ComplexRead, ShortRead
from repro.core.sut import EngineSUT, StoreSUT
from repro.workload.operations import EntityRef
from repro.queries import COMPLEX_QUERIES
from repro.queries.registry import SHORT_QUERIES

PAPER_SPARKSEE_SF10 = [7, 9, 9, 8, 9, 9, 8]
PAPER_VIRTUOSO_SF300 = [6, 147, 37, 7, 2, 1, 8]


def _inputs(network, kind, count=30):
    if kind == "person":
        return [p.id for p in network.persons[:count]]
    return [m.id for m in network.posts[:count // 2]] \
        + [c.id for c in network.comments[:count // 2]]


def _mean_ms(sut, query_id, entities, repetitions=4):
    samples = []
    for entity_id in entities:
        kind = SHORT_QUERIES[query_id].input_kind
        for __ in range(repetitions):
            started = time.perf_counter()
            sut.execute(ShortRead(query_id,
                                  EntityRef(kind, entity_id)))
            samples.append(time.perf_counter() - started)
    return sum(samples) / len(samples) * 1000


@pytest.fixture(scope="module")
def measured(bench_network, bench_store, bench_catalog):
    store_sut = StoreSUT(bench_store)
    engine_sut = EngineSUT(bench_catalog)
    store_row = []
    engine_row = []
    for query_id in range(1, 8):
        kind = SHORT_QUERIES[query_id].input_kind
        entities = _inputs(bench_network, kind)
        store_row.append(_mean_ms(store_sut, query_id, entities))
        engine_row.append(_mean_ms(engine_sut, query_id, entities))
    return store_row, engine_row


def test_table7_mean_short_latencies(benchmark, measured, bench_network,
                                     bench_store, bench_params):
    store_row, engine_row = measured
    entities = _inputs(bench_network, "person", 10)
    benchmark.pedantic(_mean_ms,
                       args=(StoreSUT(bench_store), 1, entities),
                       rounds=3, iterations=1)
    headers = ["system"] + [f"S{i}" for i in range(1, 8)]
    rows = [
        ["graph store (ours)"] + [round(v, 3) for v in store_row],
        ["rel. engine (ours)"] + [round(v, 3) for v in engine_row],
        ["Sparksee SF10 (paper)"] + PAPER_SPARKSEE_SF10,
        ["Virtuoso SF300 (paper)"] + PAPER_VIRTUOSO_SF300,
    ]
    emit_artifact("table7_short_reads", format_table(
        headers, rows,
        title="Table 7 — mean runtime of short reads (ms)"))

    # Shape: short reads are at least an order of magnitude cheaper
    # than the heavy complex reads (paper: ~10ms vs 100s-1000s ms).
    import time as __time
    from repro.core.sut import StoreSUT as __StoreSUT

    store_sut = __StoreSUT(bench_store)
    started = __time.perf_counter()
    store_sut.execute(ComplexRead(9, bench_params.by_query[9][0]))
    q9_ms = (__time.perf_counter() - started) * 1000
    assert max(store_row) < q9_ms
