"""Table 1 — attribute value correlations ("left determines right").

Regenerates the paper's correlation inventory as a measured report: for
every rule we compute an evidence metric on the generated network (share
of entities following the rule, or 100%-checked temporal orderings).
"""

from __future__ import annotations

from repro.bench import emit_artifact, format_table
from repro.datagen.dictionaries import FIRST_NAMES, LAST_NAMES
from repro.schema import validate_network


def _local_name_share(network, universe_countries, name_dict,
                      attribute):
    """Share of persons whose name comes from their culture's list."""
    by_culture = {}
    for country in universe_countries:
        by_culture[country.country_place_id] = country.spec.culture
    local = total = 0
    for person in network.persons:
        culture = by_culture[person.country_id]
        if attribute == "first":
            names = set(name_dict[culture]["male"]) \
                | set(name_dict[culture]["female"])
            value = person.first_name
        else:
            names = set(name_dict[culture])
            value = person.last_name
        total += 1
        if value in names:
            local += 1
    return local / total


def _topic_in_interest_share(network):
    interests = {p.id: set(p.interests) for p in network.persons}
    forum_tags = {f.id: set(f.tag_ids) for f in network.forums}
    hits = total = 0
    for post in network.posts:
        if not post.tag_ids:
            continue
        total += 1
        pool = interests[post.author_id] | forum_tags[post.forum_id]
        if set(post.tag_ids) & pool:
            hits += 1
    return hits / max(total, 1)


def _text_topic_share(network):
    tags = {t.id: t.name for t in network.tags}
    hits = total = 0
    for post in network.posts:
        if post.is_photo or not post.tag_ids:
            continue
        total += 1
        if post.content.startswith(f"About {tags[post.tag_ids[0]]}:"):
            hits += 1
    return hits / max(total, 1)


def _employer_email_share(network):
    organisations = {o.id: o for o in network.organisations}
    hits = total = 0
    for person in network.persons:
        if not person.work_at:
            continue
        total += 1
        employer = organisations[person.work_at[0].organisation_id]
        slug = "".join(ch for ch in employer.name.lower()
                       if ch.isascii() and ch.isalnum())
        if any(slug in email for email in person.emails):
            hits += 1
    return hits / max(total, 1)


def _photo_location_share(network, universe):
    persons = network.person_by_id()
    hits = total = 0
    for photo in (p for p in network.posts if p.is_photo):
        total += 1
        lat, lon = universe.city_coords[persons[photo.author_id].city_id]
        if abs(photo.latitude - lat) <= 0.3 \
                and abs(photo.longitude - lon) <= 0.3:
            hits += 1
    return hits / max(total, 1)


def _build_report(bench_network):
    from repro.datagen.dictionaries import Dictionaries
    from repro.datagen.universe import build_universe

    universe = build_universe(Dictionaries(42))
    temporal_ok = validate_network(bench_network).ok
    rows = [
        ["person.location,gender → firstName",
         f"{_local_name_share(bench_network, universe.countries, FIRST_NAMES, 'first'):.0%} local-culture"],
        ["person.location → lastName",
         f"{_local_name_share(bench_network, universe.countries, LAST_NAMES, 'last'):.0%} local-culture"],
        ["person.interests → post.topic",
         f"{_topic_in_interest_share(bench_network):.0%} of tagged posts"],
        ["post.topic → post.text",
         f"{_text_topic_share(bench_network):.0%} of text posts"],
        ["person.employer → person.email",
         f"{_employer_email_share(bench_network):.0%} of employed"],
        ["post.photoLocation → latitude/longitude",
         f"{_photo_location_share(bench_network, universe):.0%} of "
         "photos"],
        ["all temporal rules (birth<create<post<comment<like)",
         "100% (validator clean)" if temporal_ok else "VIOLATED"],
    ]
    return rows, temporal_ok


def test_table1_attribute_correlations(benchmark, bench_network):
    rows, temporal_ok = benchmark(_build_report, bench_network)
    emit_artifact("table1_correlations", format_table(
        ["correlation (left determines right)", "measured evidence"],
        rows, title="Table 1 — attribute value correlations"))
    assert temporal_ok
    # The names correlation must dominate (local >> uniform 1/8 share).
    local_share = float(rows[0][1].split("%")[0]) / 100
    assert local_share > 0.5
