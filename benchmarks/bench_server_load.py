"""Server load A/B — wire, sharded, and in-process SUTs, same stream.

Runs the full interactive workload three times — in process, against
the multi-process sharded store (``--shards``), and over the loopback
wire against a ``ReproServer`` — with the driver applying concurrent
load (parallel mode, several partitions).  Digest equality across all
three legs is the hard gate: every run must leave byte-identical final
state or this harness exits 1.  On top of the gate it reports the
latency cost of the wire per operation class (mean/p99, both sides),
the server's own admission/queue counters, and writes the
sharded-vs-single throughput row to the committed
``BENCH_server_load.json`` (the tracked perf trajectory).

Standalone (the CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_server_load.py --quick
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench import emit_artifact, emit_headline, format_table
from repro.core.benchmark import BenchmarkConfig, InteractiveBenchmark
from repro.core.sut import StoreSUT
from repro.datagen import DatagenConfig, generate
from repro.datagen.update_stream import split_network
from repro.driver.modes import ExecutionMode
from repro.net import ReproServer, ServerConfig
from repro.store import load_network
from repro.validation import snapshot_digest, snapshot_store


def _config(persons: int, seed: int, partitions: int,
            remote: str | None = None,
            shards: int = 0) -> BenchmarkConfig:
    return BenchmarkConfig(num_persons=persons, seed=seed, sut="store",
                           num_partitions=partitions,
                           mode=ExecutionMode.PARALLEL,
                           bindings_per_query=4, remote=remote,
                           shards=shards)


def _run(config: BenchmarkConfig):
    bench = InteractiveBenchmark(config)
    report = bench.run()
    digest = bench.final_state_digest()
    bench.close()
    return report, digest


def _latency_rows(local, remote) -> list[list]:
    """Per-class mean/p99 side by side; classes ordered Q, S, updates."""
    rows = []
    local_all = {**local.complex_stats, **local.short_stats,
                 **local.update_stats}
    remote_all = {**remote.complex_stats, **remote.short_stats,
                  **remote.update_stats}

    def key(name: str) -> tuple:
        order = {"Q": 0, "S": 1}.get(name[0], 2)
        digits = "".join(c for c in name if c.isdigit())
        return (order, int(digits) if order < 2 else 0, name)

    for name in sorted(set(local_all) | set(remote_all), key=key):
        here, there = local_all.get(name), remote_all.get(name)
        rows.append([
            name,
            here.count if here else 0,
            f"{here.mean_ms:.3f}" if here else "-",
            f"{here.p99_ms:.3f}" if here else "-",
            f"{there.mean_ms:.3f}" if there else "-",
            f"{there.p99_ms:.3f}" if there else "-",
        ])
    return rows


def measure_recovery(split, shards: int, rounds: int = 5):
    """Worker-restart-to-first-successful-read, measured directly.

    Applies a prefix of the update stream to a crash-tolerant sharded
    store, then ``rounds`` times kill -9s a worker and times the next
    supervised read on that shard — respawn + bulk reload + WAL replay
    + re-issue, the full recovery episode as a caller experiences it.
    Returns ``(p50_ms, p95_ms, digest_held, supervisor_stats)`` where
    ``digest_held`` asserts the post-recovery digest still matches the
    pre-kill state (no acked update lost, none double-applied).
    """
    import shutil
    import tempfile
    import time

    from repro import telemetry
    from repro.core.operation import Update
    from repro.shard import ShardedStoreSUT

    wal_dir = tempfile.mkdtemp(prefix="repro-bench-wal-")
    sut = ShardedStoreSUT.for_network(split.bulk, shards,
                                      wal_dir=wal_dir,
                                      max_restarts=rounds + shards)
    samples_ms: list[float] = []
    try:
        for op in split.updates[:60]:
            sut.execute(Update(op))
        expected = sut.digest()
        for round_index in range(rounds):
            handle = sut.router.handles[round_index % shards]
            handle.process.kill()
            handle.process.join(timeout=5.0)
            started = time.perf_counter()
            sut.router.call(handle.index, "count_vertices", "person")
            samples_ms.append((time.perf_counter() - started) * 1000.0)
        digest_held = sut.digest() == expected
        supervisor = sut.router.stats()["supervisor"]
    finally:
        sut.close()
        shutil.rmtree(wal_dir, ignore_errors=True)
    return (round(telemetry.percentile(samples_ms, 0.50), 3),
            round(telemetry.percentile(samples_ms, 0.95), 3),
            digest_held, supervisor)


def run_ab(persons: int, seed: int, partitions: int, workers: int,
           shards: int = 2):
    """In-process vs loopback-remote vs sharded run, same stream.

    Returns ``(rows, summary, checks, headline)``; digest equality
    across all three legs is the hard gate, and the headline dict is
    the sharded-vs-single row the committed ``BENCH_server_load.json``
    tracks, alongside the worker-recovery-time row.
    """
    local_report, local_digest = _run(_config(persons, seed, partitions))
    sharded_report, sharded_digest = _run(
        _config(persons, seed, partitions, shards=shards))

    # The server owns its own bulk-loaded store, built from the same
    # deterministic generation the in-process run bulk-loads locally.
    split = split_network(generate(DatagenConfig(num_persons=persons,
                                                 seed=seed)))
    store = load_network(split.bulk)
    server = ReproServer(
        StoreSUT(store),
        ServerConfig(workers=workers, queue_size=256),
        digest_fn=lambda: snapshot_digest(snapshot_store(store)))
    host, port = server.start()
    try:
        remote_report, remote_digest = _run(
            _config(persons, seed, partitions, remote=f"{host}:{port}"))
        stats = server.stats()
    finally:
        server.shutdown()

    recovery_p50, recovery_p95, recovery_digest_held, supervisor = \
        measure_recovery(split, shards)

    rows = _latency_rows(local_report, remote_report)
    rows.append(["TOTAL ops", local_report.operations, "", "",
                 "", ""])
    summary = [
        f"in-process: {local_report.operations} ops in "
        f"{local_report.wall_seconds:.2f}s "
        f"({local_report.throughput:.0f} op/s)",
        f"sharded x{shards}: {sharded_report.operations} ops in "
        f"{sharded_report.wall_seconds:.2f}s "
        f"({sharded_report.throughput:.0f} op/s) via "
        f"{sharded_report.sut_name}",
        f"remote:     {remote_report.operations} ops in "
        f"{remote_report.wall_seconds:.2f}s "
        f"({remote_report.throughput:.0f} op/s) via "
        f"{remote_report.sut_name}",
        f"server:     requests={stats['requests']} "
        f"executed={stats['executed']} busy={stats['rejected_busy']} "
        f"deduped={stats['deduped']}",
        f"recovery:   restart-to-first-read p50={recovery_p50}ms "
        f"p95={recovery_p95}ms over {supervisor['restarts']} kills "
        f"(digest {'held' if recovery_digest_held else 'DIVERGED'})",
        f"digest in-process: {local_digest}",
        f"digest sharded:    {sharded_digest}",
        f"digest remote:     {remote_digest}",
    ]
    checks = {
        "digests equal": local_digest == remote_digest,
        "sharded digest equal": local_digest == sharded_digest,
        "same operation count":
            local_report.operations == remote_report.operations
            == sharded_report.operations,
        "remote latencies measured": all(
            s.count > 0 and s.p99_ms > 0.0
            for s in remote_report.complex_stats.values()),
        "short walk ran over the wire": remote_report.short_reads > 0,
        "recovery digest held": recovery_digest_held,
        "recovery times measured": recovery_p50 > 0.0
            and recovery_p95 >= recovery_p50,
    }
    headline = {
        "persons": persons,
        "seed": seed,
        "partitions": partitions,
        "operations": local_report.operations,
        "single_ops_per_second": round(local_report.throughput, 1),
        "sharded": {
            "shards": shards,
            "ops_per_second": round(sharded_report.throughput, 1),
            "over_single": round(sharded_report.throughput
                                 / local_report.throughput, 2),
        },
        "remote_ops_per_second": round(remote_report.throughput, 1),
        "digests_equal": local_digest == sharded_digest == remote_digest,
        "recovery": {
            "restarts": supervisor["restarts"],
            "restart_to_first_read_p50_ms": recovery_p50,
            "restart_to_first_read_p95_ms": recovery_p95,
            "supervisor_p50_ms": supervisor.get("recovery_p50_ms"),
            "supervisor_p95_ms": supervisor.get("recovery_p95_ms"),
            "digest_held": recovery_digest_held,
        },
    }
    return rows, summary, checks, headline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="in-process vs loopback-remote workload A/B")
    parser.add_argument("--persons", type=int, default=300)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--shards", type=int, default=2,
                        help="shard count for the sharded leg")
    parser.add_argument("--quick", action="store_true",
                        help="small network (the CI smoke size)")
    args = parser.parse_args(argv)
    persons = 120 if args.quick else args.persons

    rows, summary, checks, headline = run_ab(
        persons, args.seed, args.partitions, args.workers,
        shards=args.shards)

    headers = ["class", "count", "local mean ms", "local p99 ms",
               "remote mean ms", "remote p99 ms"]
    verdicts = [f"{'PASS' if ok else 'FAIL'}  {name}"
                for name, ok in checks.items()]
    emit_artifact("server_load", format_table(
        headers, rows,
        title=f"Server load A/B — {persons} persons, seed {args.seed}, "
              f"{args.partitions} partitions, {args.workers} workers")
        + "\n" + "\n".join(summary) + "\n" + "\n".join(verdicts))
    emit_headline("server_load", {
        "bench": "server_load",
        "cores": os.cpu_count() or 1,
        **headline,
        "checks": checks,
    })
    return 0 if all(checks.values()) else 1


if __name__ == "__main__":
    sys.exit(main())
