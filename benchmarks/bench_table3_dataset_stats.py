"""Table 3 — SNB dataset statistics at different scale factors.

The paper's table reports millions of entities at SF 30-1000; our
miniature SFs regenerate the same columns, and the bench checks the same
*scaling relationships*: super-linear growth of messages vs persons, and
edges growing faster than nodes.
"""

from __future__ import annotations

from repro.bench import emit_artifact, format_table
from repro.datagen import DatagenConfig, generate
from repro.datagen.config import persons_for_scale_factor
from repro.datagen.stats import DatasetStatistics

SCALE_FACTORS = (0.003, 0.01, 0.03)


def test_table3_dataset_statistics(benchmark):
    def build():
        rows = []
        for sf in SCALE_FACTORS:
            config = DatagenConfig.for_scale_factor(sf, seed=42)
            stats = DatasetStatistics.of(generate(config))
            rows.append((sf, config.num_persons, stats))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = [[sf, persons, s.nodes, s.edges, s.persons, s.friendships,
              s.messages, s.forums]
             for sf, persons, s in rows]
    emit_artifact("table3_dataset_stats", format_table(
        ["SF", "persons(SF)", "Nodes", "Edges", "Persons", "Friends",
         "Messages", "Forums"], table,
        title="Table 3 — dataset statistics at miniature scale factors"))

    small = rows[0][2]
    large = rows[-1][2]
    person_growth = large.persons / small.persons
    message_growth = large.messages / small.messages
    # Messages per person grow with scale (paper: persons grow
    # sublinearly with SF while data grows linearly).
    assert message_growth > person_growth
    # Edges outgrow nodes.
    assert large.edges / small.edges > large.nodes / small.nodes * 0.9
    # The SF→persons law matches the configuration.
    for sf, persons, __ in rows:
        assert persons == persons_for_scale_factor(sf)
