"""Shared fixtures for the paper-artifact benchmarks.

One medium network (~SF 0.018) is generated per session and reused by
every bench; benches that need other scales generate their own.
"""

from __future__ import annotations

import pytest

from repro.curation import ParameterCurator
from repro.datagen import DatagenConfig, generate
from repro.datagen.stats import FrequencyStatistics
from repro.datagen.update_stream import split_network
from repro.engine.catalog import load_catalog
from repro.store import load_network

BENCH_SEED = 42
BENCH_PERSONS = 300


@pytest.fixture(scope="session")
def bench_config() -> DatagenConfig:
    return DatagenConfig(num_persons=BENCH_PERSONS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_network(bench_config):
    return generate(bench_config)


@pytest.fixture(scope="session")
def bench_stats(bench_network):
    return FrequencyStatistics.of(bench_network)


@pytest.fixture(scope="session")
def bench_split(bench_network):
    return split_network(bench_network)


@pytest.fixture(scope="session")
def bench_store(bench_network):
    return load_network(bench_network)


@pytest.fixture(scope="session")
def bench_catalog(bench_network):
    return load_catalog(bench_network)


@pytest.fixture(scope="session")
def bench_params(bench_network, bench_stats):
    curator = ParameterCurator(bench_network, bench_stats,
                               seed=BENCH_SEED)
    return curator.curate(8)


@pytest.fixture(scope="session")
def bench_curator(bench_network, bench_stats):
    return ParameterCurator(bench_network, bench_stats,
                            seed=BENCH_SEED)
