"""Figure 1 — sliding-window friendship generation.

The figure illustrates the window over the first correlation dimension:
nearby persons (same university/year) have high connection probability,
decaying with window distance and zero outside the window.  The bench
regenerates the *measured* distance profile: for every dimension-0 edge,
the distance between the endpoints in study-location sort order.
"""

from __future__ import annotations

from repro.bench import ascii_histogram, emit_artifact
from repro.datagen.friendships import sort_key_for_pass
from repro.datagen.dictionaries import Dictionaries
from repro.datagen.universe import build_universe
from repro.ids import serial_of


def _distance_profile(bench_config, bench_network):
    universe = build_universe(Dictionaries(bench_config.seed))
    persons = bench_network.persons
    order = sorted(
        range(len(persons)),
        key=lambda i: (sort_key_for_pass(persons[i], 0, universe,
                                         bench_config.seed),
                       serial_of(persons[i].id)))
    position = {persons[i].id: pos for pos, i in enumerate(order)}
    distances = [abs(position[e.person1_id] - position[e.person2_id])
                 for e in bench_network.knows if e.dimension == 0]
    buckets: dict[str, int] = {}
    edges = [(1, 2), (3, 5), (6, 10), (11, 20), (21, 50), (51, 100),
             (101, 200)]
    for low, high in edges:
        count = sum(1 for d in distances if low <= d <= high)
        buckets[f"{low}-{high}"] = count
    beyond = sum(1 for d in distances
                 if d > bench_config.friendship_window)
    return buckets, beyond, distances


def test_figure1_window_probability(benchmark, bench_config,
                                    bench_network):
    buckets, beyond, distances = benchmark(
        _distance_profile, bench_config, bench_network)
    emit_artifact("figure1_window", ascii_histogram(
        list(buckets.items()),
        title="Figure 1 — friendships per window distance "
              "(study-location sort order, dimension 0)"))
    # The probability decays with distance...
    ordered = list(buckets.values())
    assert ordered[0] > ordered[-1]
    # ...and drops to zero outside the window.
    assert beyond == 0
    assert distances, "dimension 0 produced no edges"
