"""Figure 6 — Parameter-Count table and greedy windows for Query 2.

Regenerates the Fig. 6b artifact: the PC table over PersonID with the
per-join intermediate counts (|⨝1| = friends, |⨝2| = their messages),
the minimum-variance windows the greedy pass inspects, and the selected
bindings.  Checks that the selected rows' counts are (near-)identical —
the whole point of curation.
"""

from __future__ import annotations

from repro.bench import emit_artifact, format_table
from repro.curation.greedy import greedy_select
from repro.curation.pc_table import pc_table_q2
from repro.ids import serial_of


def test_figure6_parameter_curation(benchmark, bench_stats):
    table = pc_table_q2(bench_stats)
    selection = benchmark(greedy_select, table, 6)

    counts_by_value = dict(table.rows)
    selected_rows = [[serial_of(value), *counts_by_value[value]]
                     for value in selection.values]
    sample_rows = [[serial_of(value), *counts]
                   for value, counts in table.sorted_by_column(0)[:12]]
    trace_rows = [[start, size, round(variance, 2)]
                  for start, size, variance in selection.window_trace]
    artifact = "\n\n".join([
        format_table(["PersonID", "|join1| friends",
                      "|join2| messages"], sample_rows,
                     title="Figure 6b — Parameter-Count table "
                           "(first rows, sorted by |join1|)"),
        format_table(["window start", "size", "variance(|join1|)"],
                     trace_rows,
                     title="greedy windows inspected (best first)"),
        format_table(["PersonID", "|join1|", "|join2|"], selected_rows,
                     title="selected parameter bindings"),
        f"achieved column variances: "
        f"{tuple(round(v, 2) for v in selection.variances)}",
    ])
    emit_artifact("figure6_curation", artifact)

    # The selected bindings share (almost) the same |join1| count...
    join1 = [counts_by_value[v][0] for v in selection.values]
    assert max(join1) - min(join1) <= 2
    # ...and their |join2| counts are close (the refinement column).
    join2 = [counts_by_value[v][1] for v in selection.values]
    join2_range = max(join2) - min(join2)
    assert join2_range <= max(3 * (sum(join2) // max(len(join2), 1)),
                              60)
