"""Ablation — driver execution modes (paper §4.2's design rationale).

The paper motivates the Sequential mode: "when dependent operations
occur at high frequency ... the benefit of parallel execution might be
negated by the cost of dependency tracking", and the Windowed mode:
fewer T_GC synchronizations.  This bench quantifies both on the
SF10-profile stream: throughput per mode, plus how many IT/CT
registrations each mode performs (sequential's "dramatically reduces
overhead" claim, measured).
"""

from __future__ import annotations

from repro.bench import emit_artifact, format_table
from repro.driver import (
    DriverConfig,
    ExecutionMode,
    SleepingConnector,
    WorkloadDriver,
)

from bench_table5_driver_scalability import synthetic_sf10_stream


def _run(ops, mode, window_millis=None):
    driver = WorkloadDriver(
        SleepingConnector(0.0005),
        DriverConfig(num_partitions=8, mode=mode,
                     window_millis=window_millis))
    report = driver.run(ops)
    tracked = sum(member.completed_count
                  for member in driver.gds._members)
    return report.ops_per_second, tracked


def test_ablation_execution_modes(benchmark):
    ops = synthetic_sf10_stream(num_ops=5000)
    results = {}
    results["parallel"] = _run(ops, ExecutionMode.PARALLEL)
    results["sequential"] = _run(ops, ExecutionMode.SEQUENTIAL)
    results["windowed"] = _run(ops, ExecutionMode.WINDOWED,
                               window_millis=900_000_000)
    benchmark.pedantic(_run, args=(ops, ExecutionMode.SEQUENTIAL),
                       rounds=1, iterations=1)

    rows = [[mode, round(ops_per_second), tracked]
            for mode, (ops_per_second, tracked) in results.items()]
    emit_artifact("ablation_driver_modes", format_table(
        ["mode", "ops/s (0.5ms connector, 8 partitions)",
         "IT/CT registrations"], rows,
        title="Ablation — execution modes on the SF10-profile stream"))

    # Sequential tracks only person-graph ops — orders of magnitude
    # fewer IT/CT registrations than parallel.
    assert results["sequential"][1] < results["parallel"][1] / 10
    assert results["windowed"][1] < results["parallel"][1] / 10
    # And sequential must not be slower than parallel here (the paper's
    # motivation for the mode).
    assert results["sequential"][0] > 0.6 * results["parallel"][0]
