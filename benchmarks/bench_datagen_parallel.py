"""A/B harness for process-parallel DATAGEN (``--jobs``).

Runs the same generation twice — serial vs a worker pool — and reports
per-stage wall time, per-stage and end-to-end speedup, and whether the
two networks have the same state digest (``repro.validation.snapshot``
sha256 over the loaded store).  Digest equality is the hard gate: a
parallel run that is fast but different is a correctness bug, and this
harness exits 1 on mismatch regardless of hardware.

The speedup gate is hardware-conditional: on runners with fewer usable
cores than ``--jobs`` a process pool cannot beat the serial path (the
workers time-slice one core and pay serialization on top), so the gate
only applies when ``len(os.sched_getaffinity(0)) >= jobs``.  The
measured numbers print either way.

Standalone (the CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_datagen_parallel.py --quick --jobs 2
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench import emit_artifact, format_table
from repro.datagen import DatagenConfig, ParallelConfig
from repro.datagen.pipeline import DatagenPipeline
from repro.store import load_network
from repro.validation import snapshot_digest, snapshot_store

#: End-to-end speedup required at ``--jobs 4`` (acceptance criterion);
#: scaled down pro rata for smaller job counts (1.2x at 2 jobs).
MIN_SPEEDUP_AT_4 = 1.8


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def min_speedup(jobs: int) -> float:
    """The gate for a given job count (linear in the 1→4 range)."""
    return 1.0 + (MIN_SPEEDUP_AT_4 - 1.0) * (jobs - 1) / 3.0


def _measure(persons: int, seed: int, jobs: int):
    """One full generation; returns (wall seconds, stage timings, digest)."""
    parallel = ParallelConfig(jobs=jobs, fallback_serial=False)
    pipeline = DatagenPipeline(DatagenConfig(num_persons=persons, seed=seed,
                                             parallel=parallel))
    started = time.perf_counter()
    network = pipeline.run()
    wall = time.perf_counter() - started
    digest = snapshot_digest(snapshot_store(load_network(network)))
    return wall, pipeline.timings, digest


def run_ab(persons: int, jobs: int, seed: int = 42):
    """Serial vs ``jobs``-worker generation; returns (rows, report)."""
    serial_wall, serial_timings, serial_digest = _measure(persons, seed, 1)
    parallel_wall, parallel_timings, parallel_digest = _measure(
        persons, seed, jobs)

    rows = []
    parallel_by_name = {s.name: s.seconds for s in parallel_timings.stages}
    for stage in serial_timings.stages:
        par = parallel_by_name.get(stage.name, 0.0)
        ratio = stage.seconds / par if par > 0 else float("inf")
        rows.append([stage.name, f"{stage.seconds:.3f}", f"{par:.3f}",
                     f"{ratio:.2f}x"])
    total_speedup = serial_wall / parallel_wall if parallel_wall > 0 \
        else float("inf")
    rows.append(["TOTAL", f"{serial_wall:.3f}", f"{parallel_wall:.3f}",
                 f"{total_speedup:.2f}x"])

    cores = _usable_cores()
    report = {
        "digest_ok": serial_digest == parallel_digest,
        "digest": serial_digest,
        "speedup": total_speedup,
        "cores": cores,
        "speedup_gated": cores >= jobs,
        "speedup_ok": total_speedup >= min_speedup(jobs),
    }
    return rows, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="A/B serial vs process-parallel DATAGEN")
    parser.add_argument("--quick", action="store_true",
                        help="small network (CI smoke)")
    parser.add_argument("--persons", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    persons = args.persons or (150 if args.quick else 800)

    rows, report = run_ab(persons, args.jobs, seed=args.seed)
    print(format_table(
        ["stage", "serial (s)", f"--jobs {args.jobs} (s)", "speedup"],
        rows,
        title=f"datagen parallel A/B — {persons} persons, "
              f"jobs={args.jobs}, {report['cores']} usable core(s)"))
    print()
    print(f"state digest: {report['digest'][:16]}… "
          f"{'IDENTICAL' if report['digest_ok'] else 'MISMATCH'}")

    if not report["digest_ok"]:
        print(f"\nFAIL: --jobs {args.jobs} produced a different network "
              f"than the serial run", file=sys.stderr)
        return 1
    if not report["speedup_gated"]:
        print(f"speedup gate skipped: {report['cores']} usable core(s) "
              f"< {args.jobs} jobs (measured {report['speedup']:.2f}x)")
        return 0
    if not report["speedup_ok"]:
        print(f"\nFAIL: end-to-end speedup {report['speedup']:.2f}x "
              f"below the {min_speedup(args.jobs):.2f}x gate at "
              f"--jobs {args.jobs}", file=sys.stderr)
        return 1
    return 0


def test_datagen_parallel_ab(benchmark):
    """Pytest entry: digests must match; speedup gated by core count."""
    rows, report = benchmark.pedantic(run_ab, args=(120, 2),
                                      rounds=1, iterations=1)
    emit_artifact("datagen_parallel_ab", format_table(
        ["stage", "serial (s)", "--jobs 2 (s)", "speedup"], rows,
        title="datagen parallel A/B (quick)"))
    assert report["digest_ok"]
    if report["speedup_gated"]:
        assert report["speedup"] >= min_speedup(2)


if __name__ == "__main__":
    sys.exit(main())
