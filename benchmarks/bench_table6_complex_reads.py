"""Table 6 — mean runtime of complex read-only queries (ms), two SUTs.

The paper reports Sparksee (SF10) and Virtuoso (SF300) means.  We run
Q1-Q14 with curated parameters on both of our SUTs (graph store /
relational engine) and check the paper's shape claims: the heavy
traversal queries (Q9, Q3, Q14, Q6, Q5) dominate, the point-ish queries
(Q7, Q8, Q13 at small scale) are cheap.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import emit_artifact, format_table
from repro.core.operation import ComplexRead
from repro.core.sut import EngineSUT, StoreSUT
from repro.queries import COMPLEX_QUERIES

#: The paper's Table 6 rows, for side-by-side rendering.
PAPER_SPARKSEE_SF10 = [20, 44, 441, 31, 100, 41, 11, 38, 3376, 194, 66,
                       177, 794, 2009]
PAPER_VIRTUOSO_SF300 = [941, 1493, 4232, 1163, 2688, 16090, 1000, 32,
                        18464, 1257, 762, 1519, 559, 742]


def _mean_ms(sut, query_id, bindings, repetitions=3):
    samples = []
    for params in bindings:
        for __ in range(repetitions):
            started = time.perf_counter()
            sut.execute(ComplexRead(query_id, params))
            samples.append(time.perf_counter() - started)
    return sum(samples) / len(samples) * 1000


@pytest.fixture(scope="module")
def measured(bench_store, bench_catalog, bench_params):
    store_sut = StoreSUT(bench_store)
    engine_sut = EngineSUT(bench_catalog)
    store_row = []
    engine_row = []
    for query_id in range(1, 15):
        bindings = bench_params.by_query[query_id][:5]
        store_row.append(_mean_ms(store_sut, query_id, bindings))
        engine_row.append(_mean_ms(engine_sut, query_id, bindings))
    return store_row, engine_row


def test_table6_mean_complex_latencies(benchmark, measured,
                                       bench_store, bench_params):
    store_row, engine_row = measured
    benchmark.pedantic(
        _mean_ms, args=(StoreSUT(bench_store), 9,
                        bench_params.by_query[9][:3]),
        rounds=3, iterations=1)
    headers = ["system"] + [f"Q{i}" for i in range(1, 15)]
    rows = [
        ["graph store (ours)"] + [round(v, 2) for v in store_row],
        ["rel. engine (ours)"] + [round(v, 2) for v in engine_row],
        ["Sparksee SF10 (paper)"] + PAPER_SPARKSEE_SF10,
        ["Virtuoso SF300 (paper)"] + PAPER_VIRTUOSO_SF300,
    ]
    emit_artifact("table6_complex_reads", format_table(
        headers, rows,
        title="Table 6 — mean runtime of complex reads (ms)"))

    # Shape claims: the 2-hop message-heavy queries dominate the cheap
    # point queries on the graph store, as in both paper rows.
    def mean_of(row, ids):
        return sum(row[i - 1] for i in ids) / len(ids)

    heavy = mean_of(store_row, (3, 5, 9))
    cheap = mean_of(store_row, (7, 8, 13))
    assert heavy > 5 * cheap
    # Q9 is among the heaviest on the store (paper: heaviest on both).
    assert store_row[8] >= sorted(store_row, reverse=True)[4]
