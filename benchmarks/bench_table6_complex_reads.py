"""Table 6 — mean runtime of complex read-only queries (ms), two SUTs.

The paper reports Sparksee (SF10) and Virtuoso (SF300) means.  We run
Q1-Q14 with curated parameters on both of our SUTs (graph store /
relational engine) and check the paper's shape claims: the heavy
traversal queries (Q9, Q3, Q14, Q6, Q5) dominate, the point-ish queries
(Q7, Q8, Q13 at small scale) are cheap.

The vectorized A/B section runs the same engine plans tuple-at-a-time
vs batch-at-a-time: results must be identical on all 14 queries, and
the heavy-tier plan pipelines (Q3/Q9) must clear a 2× speedup on an
adequate runner.  Headline numbers (incl. the honest non-result when
the box is too small, per the Table 5 convention) land in
``BENCH_table6.json`` at the repo root.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench import emit_artifact, emit_headline, format_table
from repro.core.operation import ComplexRead
from repro.core.sut import EngineSUT, StoreSUT
from repro.engine import snb_queries
from repro.engine.chunks import TUPLE, VECTORIZED, engine_mode
from repro.queries import COMPLEX_QUERIES

#: The paper's Table 6 rows, for side-by-side rendering.
PAPER_SPARKSEE_SF10 = [20, 44, 441, 31, 100, 41, 11, 38, 3376, 194, 66,
                       177, 794, 2009]
PAPER_VIRTUOSO_SF300 = [941, 1493, 4232, 1163, 2688, 16090, 1000, 32,
                        18464, 1257, 762, 1519, 559, 742]


def _mean_ms(sut, query_id, bindings, repetitions=3):
    samples = []
    for params in bindings:
        for __ in range(repetitions):
            started = time.perf_counter()
            sut.execute(ComplexRead(query_id, params))
            samples.append(time.perf_counter() - started)
    return sum(samples) / len(samples) * 1000


@pytest.fixture(scope="module")
def measured(bench_store, bench_catalog, bench_params):
    store_sut = StoreSUT(bench_store)
    engine_sut = EngineSUT(bench_catalog)
    store_row = []
    engine_row = []
    for query_id in range(1, 15):
        bindings = bench_params.by_query[query_id][:5]
        store_row.append(_mean_ms(store_sut, query_id, bindings))
        engine_row.append(_mean_ms(engine_sut, query_id, bindings))
    return store_row, engine_row


def test_table6_mean_complex_latencies(benchmark, measured,
                                       bench_store, bench_params):
    store_row, engine_row = measured
    benchmark.pedantic(
        _mean_ms, args=(StoreSUT(bench_store), 9,
                        bench_params.by_query[9][:3]),
        rounds=3, iterations=1)
    headers = ["system"] + [f"Q{i}" for i in range(1, 15)]
    rows = [
        ["graph store (ours)"] + [round(v, 2) for v in store_row],
        ["rel. engine (ours)"] + [round(v, 2) for v in engine_row],
        ["Sparksee SF10 (paper)"] + PAPER_SPARKSEE_SF10,
        ["Virtuoso SF300 (paper)"] + PAPER_VIRTUOSO_SF300,
    ]
    emit_artifact("table6_complex_reads", format_table(
        headers, rows,
        title="Table 6 — mean runtime of complex reads (ms)"))

    # Shape claims: the 2-hop message-heavy queries dominate the cheap
    # point queries on the graph store, as in both paper rows.
    def mean_of(row, ids):
        return sum(row[i - 1] for i in ids) / len(ids)

    heavy = mean_of(store_row, (3, 5, 9))
    cheap = mean_of(store_row, (7, 8, 13))
    assert heavy > 5 * cheap
    # Q9 is among the heaviest on the store (paper: heaviest on both).
    assert store_row[8] >= sorted(store_row, reverse=True)[4]


# -- tuple vs vectorized A/B ------------------------------------------------

#: Queries whose plan pipelines the vectorized gate times.  Q3 and Q9
#: are the residual-heavy 2-hop message scans where per-row overhead
#: dominated; Q14's pipeline is pk-probe-bound (hash lookups cost the
#: same in both modes), so it is reported, not gated.
PIPELINE_AB = (3, 9, 14)
GATED = (3, 9)
SPEEDUP_TARGET = 2.0


def _best_ms(fn, repetitions):
    """Best-of-N wall time — ratios of minima are the most noise-stable
    microbenchmark statistic on a shared box."""
    best = None
    for __ in range(repetitions):
        started = time.perf_counter()
        fn()
        elapsed = (time.perf_counter() - started) * 1000
        best = elapsed if best is None else min(best, elapsed)
    return best


def _pipeline_runner(catalog, query_id, bindings):
    builder = snb_queries.PIPELINES[query_id]

    def run():
        for params in bindings:
            builder(catalog, params).execute_columns()
    return run


def _query_runner(catalog, query_id, bindings):
    run_query = snb_queries.ENGINE_COMPLEX[query_id]

    def run():
        for params in bindings:
            run_query(catalog, params)
    return run


def test_table6_vectorized_ab_gate(measured, bench_catalog,
                                   bench_params):
    """Tuple vs vectorized: identical results, ≥2× on the heavy tier.

    The correctness half (the digest gate) is unconditional: every
    complex read must return identical results in both modes.  The
    timing half follows the Table 5 convention — the ≥2× assertion is
    armed only on an adequate runner; a cramped CI box records the
    measured ratios in ``BENCH_table6.json`` as an honest non-result
    instead of a silent green.
    """
    catalog = bench_catalog
    # 1 — digest gate: both modes agree on all 14 complex reads.
    for query_id in range(1, 15):
        for params in bench_params.by_query[query_id][:4]:
            run = snb_queries.ENGINE_COMPLEX[query_id]
            with engine_mode(VECTORIZED):
                vectorized = run(catalog, params)
            with engine_mode(TUPLE):
                volcano = run(catalog, params)
            assert vectorized == volcano, f"Q{query_id} modes disagree"

    # 2 — end-to-end engine A/B over the full read mix.
    e2e_speedup = {}
    for query_id in range(1, 15):
        runner = _query_runner(catalog, query_id,
                               bench_params.by_query[query_id][:5])
        with engine_mode(TUPLE):
            tuple_ms = _best_ms(runner, repetitions=3)
        with engine_mode(VECTORIZED):
            vector_ms = _best_ms(runner, repetitions=3)
        e2e_speedup[query_id] = round(tuple_ms / vector_ms, 2)

    # 3 — heavy-tier plan pipelines (execution only, no finishing pass).
    pipeline_ab = {}
    for query_id in PIPELINE_AB:
        runner = _pipeline_runner(catalog, query_id,
                                  bench_params.by_query[query_id])
        with engine_mode(TUPLE):
            tuple_ms = _best_ms(runner, repetitions=5)
        with engine_mode(VECTORIZED):
            vector_ms = _best_ms(runner, repetitions=5)
        pipeline_ab[query_id] = {
            "tuple_ms": round(tuple_ms, 2),
            "vectorized_ms": round(vector_ms, 2),
            "speedup": round(tuple_ms / vector_ms, 2),
        }

    cores = os.cpu_count() or 1
    armed = cores >= 2
    store_row, engine_row = measured
    emit_headline("table6", {
        "bench": "table6_complex_reads",
        "cores": cores,
        "persons": catalog.table("person").row_count,
        "store_mean_ms": {f"Q{i}": round(v, 2)
                          for i, v in enumerate(store_row, 1)},
        "engine_mean_ms": {f"Q{i}": round(v, 2)
                           for i, v in enumerate(engine_row, 1)},
        "vectorized_ab": {
            "modes_agree_on_all_14": True,
            "e2e_speedup": {f"Q{i}": s
                            for i, s in e2e_speedup.items()},
            "heavy_tier_pipeline": {f"Q{i}": stats
                                    for i, stats in
                                    pipeline_ab.items()},
            "gate": {
                "target": SPEEDUP_TARGET,
                "gated_queries": [f"Q{i}" for i in GATED],
                "armed": armed,
                "note": ("Q14's pipeline is pk-probe-bound (equal "
                         "hash-lookup cost in both modes); its "
                         "vectorized win is the CSR BFS, visible "
                         "end-to-end at scale")
                if armed else
                f"non-result: {cores} core(s) is too small to arm "
                "the timing gate",
            },
        },
    })

    # The acceptance gate proper: on an adequate box the heavy-tier
    # pipelines must clear the 2× target.  A 1-core runner cannot time
    # this reliably — the headline records the ratios so the non-result
    # is honest rather than silently green.
    if armed:
        for query_id in GATED:
            assert pipeline_ab[query_id]["speedup"] >= SPEEDUP_TARGET, \
                (query_id, pipeline_ab)
