"""Table 9 — mean runtime of transactional updates (ms), two SUTs.

The paper's rows show all eight update types completing in tens to a few
hundred milliseconds, with AddPerson among the heaviest (it writes the
most satellite edges).  The shape claims checked: every update is cheap
relative to complex reads, and AddPerson costs more than AddLike.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import emit_artifact, format_table
from repro.core.operation import Update
from repro.core.sut import EngineSUT, StoreSUT
from repro.datagen.update_stream import UpdateKind
from repro.engine.catalog import load_catalog
from repro.store import load_network

PAPER_SPARKSEE_SF10 = [492, 309, 307, 239, 317, 190, 324, 273]
PAPER_VIRTUOSO_SF300 = [35, 198, 85, 55, 16, 118, 141, 15]

KIND_ORDER = list(UpdateKind)


@pytest.fixture(scope="module")
def measured(bench_split):
    store_sut = StoreSUT(load_network(bench_split.bulk))
    engine_sut = EngineSUT(load_catalog(bench_split.bulk))
    samples_store: dict[UpdateKind, list[float]] = \
        {kind: [] for kind in UpdateKind}
    samples_engine: dict[UpdateKind, list[float]] = \
        {kind: [] for kind in UpdateKind}
    for op in bench_split.updates:
        started = time.perf_counter()
        store_sut.execute(Update(op))
        samples_store[op.kind].append(time.perf_counter() - started)
        started = time.perf_counter()
        engine_sut.execute(Update(op))
        samples_engine[op.kind].append(time.perf_counter() - started)
    mean_store = {k: sum(v) / len(v) * 1000 if v else 0.0
                  for k, v in samples_store.items()}
    mean_engine = {k: sum(v) / len(v) * 1000 if v else 0.0
                   for k, v in samples_engine.items()}
    return mean_store, mean_engine


def test_table9_mean_update_latencies(benchmark, measured, bench_split):
    mean_store, mean_engine = measured

    def replay_some():
        sut = StoreSUT(load_network(bench_split.bulk))
        for op in bench_split.updates[:300]:
            sut.execute(Update(op))

    benchmark.pedantic(replay_some, rounds=1, iterations=1)
    headers = ["system"] + [kind.name for kind in KIND_ORDER]
    rows = [
        ["graph store (ours)"] + [round(mean_store[k], 4)
                                  for k in KIND_ORDER],
        ["rel. engine (ours)"] + [round(mean_engine[k], 4)
                                  for k in KIND_ORDER],
        ["Sparksee SF10 (paper)"] + PAPER_SPARKSEE_SF10,
        ["Virtuoso SF300 (paper)"] + PAPER_VIRTUOSO_SF300,
    ]
    emit_artifact("table9_updates", format_table(
        headers, rows,
        title="Table 9 — mean runtime of transactional updates (ms)"))

    # Shape: AddPerson (many satellite edges) costs more than AddLike
    # (single edge) on the store.
    assert mean_store[UpdateKind.ADD_PERSON] \
        > mean_store[UpdateKind.ADD_LIKE_POST]
    # Updates are point operations: all well under the heavy reads.
    assert max(mean_store.values()) < 50.0
