"""Table 8 — size of the 3 largest tables and their largest index.

The paper reports Virtuoso SF300 page allocations: post (76.8GB, content
index largest), likes (23.6GB, creation-date index) and forum_person
(9.3GB).  Our storage report measures in-memory bytes per table/index;
the shape claim is that the *message/post storage dominates*, with likes
next among relationship tables.
"""

from __future__ import annotations

from repro.bench import emit_artifact, format_table
from repro.store import storage_report
from repro.store.loader import VertexLabel


def test_table8_storage_sizes(benchmark, bench_store):
    report = benchmark(storage_report, bench_store)
    largest = report.largest(6)
    rows = [[t.name, t.kind, t.entries, round(t.megabytes, 2)]
            for t in largest]
    index_rows = [[t.name, t.kind, t.entries, round(t.megabytes, 2)]
                  for t in report.largest(3, kind="index")]
    paper = [["post (paper, Virtuoso SF300)", "table", "",
              "76815 MB; largest index ps_content 41697 MB"],
             ["likes (paper)", "table", "",
              "23645 MB; largest index l_creationdate 11308 MB"],
             ["forum_person (paper)", "table", "",
              "9343 MB; largest index fp_creationdate 5957 MB"]]
    emit_artifact("table8_storage", format_table(
        ["table", "kind", "entries", "MB"],
        rows + index_rows + paper,
        title="Table 8 — largest tables and indexes"))

    # Shape: message content storage (post/comment vertices) dominates.
    vertex_tables = report.largest(2, kind="vertices")
    assert {t.name for t in vertex_tables} \
        <= {VertexLabel.POST, VertexLabel.COMMENT}
    assert report.total_bytes > 10 * 1024 * 1024
