"""Ablation — time-ordered message ids (paper §3, last paragraph).

"The system may choose to assign identifiers to Posts/Comments entities
such that their IDs are increasing in time ... the final selection of
Posts/Comments created before a certain date will have high locality.
Moreover, it will eliminate the need for sorting at the end."

Measured: the index-order Q9 variant (descending creation-date scan with
circle-membership probe, no sort) vs the expand-and-sort reference on
the relational engine.
"""

from __future__ import annotations

import statistics
import time

from repro.bench import emit_artifact, format_table
from repro.engine import snb_queries


def _median_ms(run, repetitions=30):
    samples = []
    for __ in range(repetitions):
        started = time.perf_counter()
        run()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples) * 1000


def test_ablation_time_ordered_ids(benchmark, bench_catalog,
                                   bench_params):
    bindings = bench_params.by_query[9][:5]
    for params in bindings:
        assert snb_queries.q9_time_index_variant(bench_catalog, params) \
            == snb_queries.q9(bench_catalog, params)

    def run_reference():
        for params in bindings:
            snb_queries.q9(bench_catalog, params)

    def run_variant():
        for params in bindings:
            snb_queries.q9_time_index_variant(bench_catalog, params)

    reference_ms = _median_ms(run_reference)
    variant_ms = benchmark.pedantic(lambda: _median_ms(run_variant),
                                    rounds=1, iterations=1)
    rows = [
        ["expand circle + sort (reference)", round(reference_ms, 2)],
        ["descending date-index scan, no sort", round(variant_ms, 2)],
        ["speedup", f"{reference_ms / variant_ms:.2f}x"],
    ]
    emit_artifact("ablation_time_ordered_ids", format_table(
        ["Q9 access path", "median ms (5 bindings)"], rows,
        title="Ablation — time-ordered ids eliminate the final sort "
              "(paper §3)"))
    # The claim is qualitative: the index-order variant must not lose,
    # and it reads only the newest sliver of the table (tested in the
    # unit suite); at scale its advantage grows with the table size.
    assert variant_ms < reference_ms * 1.5
