"""Table 5 — driver throughput vs partition count (ops/second).

The paper runs the SF10 update stream (≈32.6M forum operations and 6,889
user operations — a 1:4700 ratio) against a dummy connector sleeping 1 ms
or 100 µs, with 1-12 partitions, and reports near-linear scaling.

We cannot generate SF10 in-process, so the bench synthesizes an update
stream with the paper's statistical profile (op-mix ratio, >T_SAFE
dependency gaps, uniform due times) — the properties driver scalability
actually depends on — and additionally reports the real miniature stream
for contrast (its person-ops ratio is ~200× higher, which throttles
scaling; see DESIGN.md).
"""

from __future__ import annotations

from repro.bench import emit_artifact, format_table
from repro.datagen.update_stream import UpdateKind, UpdateOperation
from repro.driver import (
    DriverConfig,
    ExecutionMode,
    SleepingConnector,
    WorkloadDriver,
)
from repro.rng import RandomStream

PARTITIONS = (1, 2, 4, 8, 12)
SLEEPS = ((0.001, "1ms"), (0.0001, "100us"))
NUM_OPS = 6000


def synthetic_sf10_stream(num_ops=NUM_OPS, num_forums=300,
                          user_op_ratio=4700, seed=1):
    """An update stream with the paper's SF10 profile."""
    stream = RandomStream.for_key(seed, "table5")
    start = 1_000_000_000_000
    span = 10_000_000_000
    t_safe = 900_000_000
    ops = []
    for index in range(num_ops):
        due = start + index * (span // num_ops)
        if index % user_op_ratio == 0:
            ops.append(UpdateOperation(UpdateKind.ADD_PERSON, due, 0,
                                       None))
        else:
            forum = stream.randint(0, num_forums - 1)
            ops.append(UpdateOperation(
                UpdateKind.ADD_COMMENT, due,
                max(0, due - t_safe), None, partition_key=forum,
                global_depends_on_time=max(0, due - 2 * t_safe)))
    return ops


def _run(ops, sleep_seconds, partitions):
    driver = WorkloadDriver(
        SleepingConnector(sleep_seconds),
        DriverConfig(num_partitions=partitions,
                     mode=ExecutionMode.SEQUENTIAL))
    report = driver.run(ops)
    return report.ops_per_second


def test_table5_driver_scalability(benchmark):
    ops = synthetic_sf10_stream()
    results = {}
    for sleep_seconds, label in SLEEPS:
        for partitions in PARTITIONS:
            results[(label, partitions)] = _run(ops, sleep_seconds,
                                                partitions)
    benchmark.pedantic(_run, args=(ops, 0.001, 4), rounds=1,
                       iterations=1)

    rows = []
    for sleep_seconds, label in SLEEPS:
        row = [label] + [round(results[(label, p)]) for p in PARTITIONS]
        rows.append(row)
    paper = [["1ms (paper)", 997, 1990, 3969, 7836, 11298],
             ["100us (paper)", 9745, 19245, 38285, 78913, 110837]]
    emit_artifact("table5_driver_scalability", format_table(
        ["sleep"] + [f"p={p}" for p in PARTITIONS], rows + paper,
        title="Table 5 — driver ops/second vs #partitions "
              "(ours, then the paper's Xeon numbers)"))

    # Shape: scaling must be substantial and monotone-ish.
    for __, label in SLEEPS:
        single = results[(label, 1)]
        twelve = results[(label, 12)]
        assert twelve > 3.0 * single, (label, single, twelve)
        assert results[(label, 4)] > 1.5 * single
