"""Table 5 — driver throughput vs partition count (ops/second).

The paper runs the SF10 update stream (≈32.6M forum operations and 6,889
user operations — a 1:4700 ratio) against a dummy connector sleeping 1 ms
or 100 µs, with 1-12 partitions, and reports near-linear scaling.

We cannot generate SF10 in-process, so the bench synthesizes an update
stream with the paper's statistical profile (op-mix ratio, >T_SAFE
dependency gaps, uniform due times) — the properties driver scalability
actually depends on — and additionally reports the real miniature stream
for contrast (its person-ops ratio is ~200× higher, which throttles
scaling; see DESIGN.md).

The sharded-vs-single section then swaps the sleep for a 100 µs CPU
*spin* — the regime where the single-process store hits its GIL wall
(~7× in past runs) and the only cure is more interpreters.  N driver
threads spin in-process (one GIL) vs via the sharded workers' ``busy``
RPC (one GIL per shard); on ≥4 cores the sharded row must clear the
single-process ceiling.  Headline numbers land in ``BENCH_table5.json``
at the repo root (the tracked perf trajectory), stamped with the core
count so a 1-core CI box records an honest non-result instead of a
fake pass.
"""

from __future__ import annotations

import os
import threading
import time

from repro.bench import emit_artifact, emit_headline, format_table
from repro.datagen import DatagenConfig, generate
from repro.datagen.update_stream import (
    UpdateKind,
    UpdateOperation,
    split_network,
)
from repro.driver import (
    DriverConfig,
    ExecutionMode,
    SleepingConnector,
    WorkloadDriver,
)
from repro.rng import RandomStream
from repro.shard import ShardedStoreSUT

PARTITIONS = (1, 2, 4, 8, 12)
SLEEPS = ((0.001, "1ms"), (0.0001, "100us"))
NUM_OPS = 6000

#: The sharded-vs-single spin comparison (the 100 µs row, CPU-bound).
SPIN_SECONDS = 0.0001
SPIN_THREADS = 4
SPIN_OPS_PER_THREAD = 1500


def synthetic_sf10_stream(num_ops=NUM_OPS, num_forums=300,
                          user_op_ratio=4700, seed=1):
    """An update stream with the paper's SF10 profile."""
    stream = RandomStream.for_key(seed, "table5")
    start = 1_000_000_000_000
    span = 10_000_000_000
    t_safe = 900_000_000
    ops = []
    for index in range(num_ops):
        due = start + index * (span // num_ops)
        if index % user_op_ratio == 0:
            ops.append(UpdateOperation(UpdateKind.ADD_PERSON, due, 0,
                                       None))
        else:
            forum = stream.randint(0, num_forums - 1)
            ops.append(UpdateOperation(
                UpdateKind.ADD_COMMENT, due,
                max(0, due - t_safe), None, partition_key=forum,
                global_depends_on_time=max(0, due - 2 * t_safe)))
    return ops


def _run(ops, sleep_seconds, partitions):
    driver = WorkloadDriver(
        SleepingConnector(sleep_seconds),
        DriverConfig(num_partitions=partitions,
                     mode=ExecutionMode.SEQUENTIAL))
    report = driver.run(ops)
    return report.ops_per_second


# ---------------------------------------------------------------------------
# sharded vs single: the CPU-bound 100 µs row
# ---------------------------------------------------------------------------

def _spin(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


def _threaded_ops_per_second(num_threads: int, ops_per_thread: int,
                             work) -> float:
    """Aggregate ops/s of ``num_threads`` threads each calling
    ``work(thread_index)`` ``ops_per_thread`` times."""
    barrier = threading.Barrier(num_threads + 1)

    def body(index: int) -> None:
        barrier.wait()
        for __ in range(ops_per_thread):
            work(index)

    threads = [threading.Thread(target=body, args=(i,), daemon=True)
               for i in range(num_threads)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return num_threads * ops_per_thread / elapsed


def sharded_vs_single(num_shards: int = SPIN_THREADS,
                      spin_seconds: float = SPIN_SECONDS,
                      ops_per_thread: int = SPIN_OPS_PER_THREAD) -> dict:
    """100 µs of CPU per op, N ways: one GIL vs one GIL per shard.

    The single-process row serializes on the calling interpreter's GIL
    no matter how many driver threads run; the sharded row spends the
    same CPU inside each worker process via the ``busy`` RPC, so with
    enough cores throughput scales with shards (minus pipe overhead).
    """
    single = _threaded_ops_per_second(
        num_shards, ops_per_thread, lambda __: _spin(spin_seconds))

    bulk = split_network(
        generate(DatagenConfig(num_persons=20, seed=1))).bulk
    sut = ShardedStoreSUT.for_network(bulk, num_shards)
    try:
        sharded = _threaded_ops_per_second(
            num_shards, ops_per_thread,
            lambda index: sut.router.call(index, "busy", spin_seconds))
    finally:
        sut.close()
    return {
        "threads": num_shards,
        "shards": num_shards,
        "spin_seconds": spin_seconds,
        "single_ops_per_second": round(single),
        "sharded_ops_per_second": round(sharded),
        "sharded_over_single": round(sharded / single, 2),
    }


def test_table5_driver_scalability(benchmark):
    ops = synthetic_sf10_stream()
    results = {}
    for sleep_seconds, label in SLEEPS:
        for partitions in PARTITIONS:
            results[(label, partitions)] = _run(ops, sleep_seconds,
                                                partitions)
    benchmark.pedantic(_run, args=(ops, 0.001, 4), rounds=1,
                       iterations=1)

    rows = []
    for sleep_seconds, label in SLEEPS:
        row = [label] + [round(results[(label, p)]) for p in PARTITIONS]
        rows.append(row)
    paper = [["1ms (paper)", 997, 1990, 3969, 7836, 11298],
             ["100us (paper)", 9745, 19245, 38285, 78913, 110837]]

    cores = os.cpu_count() or 1
    ab = sharded_vs_single()
    rows.append([f"100us spin 1-proc (x{ab['threads']} thr)", "", "",
                 ab["single_ops_per_second"], "", ""])
    rows.append([f"100us spin {ab['shards']}-shard", "", "",
                 ab["sharded_ops_per_second"], "", ""])
    emit_artifact("table5_driver_scalability", format_table(
        ["sleep"] + [f"p={p}" for p in PARTITIONS], rows + paper,
        title="Table 5 — driver ops/second vs #partitions "
              "(ours, then the paper's Xeon numbers); the spin rows "
              f"are CPU-bound on {cores} core(s)"))

    emit_headline("table5", {
        "bench": "table5_driver_scalability",
        "cores": cores,
        "ops_per_second": {
            label: {str(p): round(results[(label, p)])
                    for p in PARTITIONS}
            for __, label in SLEEPS},
        "scale_up_12_over_1": {
            label: round(results[(label, 12)] / results[(label, 1)], 2)
            for __, label in SLEEPS},
        "sharded_vs_single_100us_spin": ab,
        "paper_xeon_ops_per_second": {
            "1ms": {"1": 997, "12": 11298},
            "100us": {"1": 9745, "12": 110837}},
    })

    # Shape: scaling must be substantial and monotone-ish.
    for __, label in SLEEPS:
        single = results[(label, 1)]
        twelve = results[(label, 12)]
        assert twelve > 3.0 * single, (label, single, twelve)
        assert results[(label, 4)] > 1.5 * single

    # The acceptance gate proper: on a real multi-core box the sharded
    # spin row must clear the single-process GIL ceiling.  A 1-core box
    # cannot show scale-up — the headline records cores so the
    # non-result is honest rather than silently green.
    if cores >= 4:
        assert ab["sharded_over_single"] > 1.5, ab
