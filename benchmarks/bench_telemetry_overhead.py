"""Micro-benchmark — cost of the telemetry guard when disabled.

Every instrumented hot path checks ``telemetry.active`` (a module-level
bool) before opening a span.  The subsystem's contract is that this
guard is free for practical purposes: an instrumented operator pipeline
with telemetry *disabled* must run at the same speed as the pure
workload, and enabling tracing is the only thing that costs.

Three measurements over an identical Scan→Filter plan on a 20k-row
table:

* ``baseline``   — uninstrumented loop over the same rows (the floor);
* ``disabled``   — the real instrumented operators, telemetry off;
* ``enabled``    — the same plan with tracing on (priced, not bounded).
"""

from __future__ import annotations

import time

from repro import telemetry
from repro.bench import emit_artifact, format_table
from repro.engine.operators import Filter, Scan
from repro.engine.rows import Schema, Table

ROWS = 20_000
REPEATS = 5


def _table() -> Table:
    table = Table("person", Schema(("id", "name")), primary_key="id")
    table.bulk_load([(i, f"p{i}") for i in range(ROWS)])
    return table


def _plan(table: Table) -> Filter:
    return Filter(Scan(table), lambda row: row[0] % 2 == 0)


def _run_baseline(table: Table) -> int:
    # The same tuple stream the operators produce, minus the operator
    # machinery — the floor that the disabled guard is measured against.
    count = 0
    for row in table.rows:
        if row[0] % 2 == 0:
            count += 1
    return count


def _run_plan(table: Table) -> int:
    return len(_plan(table).execute())


def _best_of(func, *args) -> float:
    best = float("inf")
    for __ in range(REPEATS):
        started = time.perf_counter()
        func(*args)
        best = min(best, time.perf_counter() - started)
    return best


def test_disabled_guard_adds_no_measurable_overhead(benchmark):
    table = _table()
    assert telemetry.active is False

    baseline = _best_of(_run_baseline, table)
    disabled = _best_of(_run_plan, table)

    telemetry.enable(fresh_registry=True)
    try:
        enabled = _best_of(_run_plan, table)
    finally:
        telemetry.disable()

    benchmark.pedantic(_run_plan, args=(table,), rounds=3, iterations=1)

    rows = [
        ["baseline (no operators)", f"{baseline * 1e3:.2f}", "1.00"],
        ["instrumented, disabled", f"{disabled * 1e3:.2f}",
         f"{disabled / baseline:.2f}"],
        ["instrumented, enabled", f"{enabled * 1e3:.2f}",
         f"{enabled / baseline:.2f}"],
    ]
    emit_artifact("telemetry_overhead", format_table(
        ["configuration", "best-of-5 ms", "vs baseline"], rows,
        title=f"Telemetry guard overhead — Scan→Filter over {ROWS} rows"))

    # The operator machinery itself (generators, per-tuple counting)
    # costs something over a bare loop; the *guard* must not add to it.
    # Bound the whole instrumented-but-disabled plan at a generous
    # multiple of the bare loop so the assertion survives noisy CI —
    # a per-tuple guard regression (checking inside the loop instead of
    # once per iterator) blows well past this.
    assert disabled < 6.0 * baseline

    # Sanity: disabled really took the plain path — no spans recorded.
    assert telemetry.get_tracer() is None
