"""Figure 4 — the intended execution plan for Query 9 + join ablation.

Regenerates (a) the plan tree with estimated and actual cardinalities,
(b) the optimizer's join-type decisions (INL for the low-cardinality
friendship expansions — the paper's ⨝1/⨝2), and (c) the measured penalty
of the wrong join type at ⨝1 ("replacing index-nested loop with hash in
⨝1 results in 50% penalty" in HyPer; the factor depends on scale, the
*direction* must reproduce).

Since the engine now plans all 14 complex reads, the plan-choice survey
covers the full read mix: every query's join decisions (algorithm,
estimated cardinalities, both costs) land in the artifact, so Fig. 4's
choke point — "the optimizer must detect join types from cardinality"
— is measured on real coverage, not a single hand-picked query.
"""

from __future__ import annotations

import statistics
import time

from repro.bench import emit_artifact, format_table
from repro.engine import snb_queries
from repro.engine.explain import explain_pipeline


def _median_ms(catalog, params, force, repetitions=25):
    samples = []
    for __ in range(repetitions):
        started = time.perf_counter()
        snb_queries.q9_pipeline(catalog, params, force=force).execute()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples) * 1000


def test_figure4_q9_intended_plan(benchmark, bench_catalog,
                                  bench_params):
    params = bench_params.by_query[9][0]
    pipeline = snb_queries.q9_pipeline(bench_catalog, params)
    pipeline.execute()

    good = benchmark.pedantic(
        _median_ms, args=(bench_catalog, params, {0: "inl", 1: "inl"}),
        rounds=1, iterations=1)
    bad = _median_ms(bench_catalog, params, {0: "hash", 1: "inl"})
    penalty = (bad - good) / good * 100

    artifact = "\n".join([
        "Figure 4 — intended execution plan for Query 9",
        explain_pipeline(pipeline, show_actuals=True),
        "",
        f"join-type ablation at ⨝1 (friends expansion):",
        f"  INL  (intended): {good:.2f} ms",
        f"  HASH (wrong):    {bad:.2f} ms",
        f"  penalty: {penalty:.0f}%   (paper: ~50% in HyPer at SF10+)",
    ])
    emit_artifact("figure4_q9_plan", artifact)

    # The optimizer must choose INL for the friend expansion (⨝1).
    assert pipeline.decisions[0].algorithm == "inl"
    # The wrong choice must cost measurably more.
    assert bad > good * 1.05


def test_figure4_plan_choice_all_queries(bench_catalog, bench_params):
    """Optimizer join decisions across the whole planned read mix."""
    rows = []
    chose_inl = 0
    for query_id in range(1, 15):
        builder = snb_queries.PIPELINES[query_id]
        params = bench_params.by_query[query_id][0]
        pipeline = builder(bench_catalog, params)
        if not pipeline.decisions:
            rows.append([f"Q{query_id}", "-", "(source only)", "", "",
                         "", ""])
            continue
        for decision in pipeline.decisions:
            rows.append([
                f"Q{query_id}",
                f"⨝{decision.step_index + 1}",
                decision.inner_table,
                decision.algorithm.upper(),
                round(decision.estimated_outer, 1),
                round(decision.estimated_output, 1),
                f"{decision.inl_cost:.0f}/{decision.hash_cost:.0f}",
            ])
            chose_inl += decision.algorithm == "inl"
    emit_artifact("figure4_plan_choice_all_queries", format_table(
        ["query", "join", "inner", "algo", "est.outer", "est.out",
         "cost inl/hash"],
        rows,
        title="Fig. 4 choke point — optimizer join decisions, Q1-Q14"))

    planned = [row for row in rows if row[3]]
    # Every query is planned; every planned join carries a decision.
    assert {row[0] for row in rows} == {f"Q{i}" for i in range(1, 15)}
    # At bench scale the low-cardinality circles make INL the dominant
    # choice (the paper's ⨝1/⨝2 shape) — hash only wins once the outer
    # side outgrows the inner table, which the ablation above measures.
    assert "INL" in {row[3] for row in planned}
    assert chose_inl >= len(planned) * 0.5
