"""Figure 4 — the intended execution plan for Query 9 + join ablation.

Regenerates (a) the plan tree with estimated and actual cardinalities,
(b) the optimizer's join-type decisions (INL for the low-cardinality
friendship expansions — the paper's ⨝1/⨝2), and (c) the measured penalty
of the wrong join type at ⨝1 ("replacing index-nested loop with hash in
⨝1 results in 50% penalty" in HyPer; the factor depends on scale, the
*direction* must reproduce).
"""

from __future__ import annotations

import statistics
import time

from repro.bench import emit_artifact
from repro.engine import snb_queries
from repro.engine.explain import explain_pipeline


def _median_ms(catalog, params, force, repetitions=25):
    samples = []
    for __ in range(repetitions):
        started = time.perf_counter()
        snb_queries.q9_pipeline(catalog, params, force=force).execute()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples) * 1000


def test_figure4_q9_intended_plan(benchmark, bench_catalog,
                                  bench_params):
    params = bench_params.by_query[9][0]
    pipeline = snb_queries.q9_pipeline(bench_catalog, params)
    pipeline.execute()

    good = benchmark.pedantic(
        _median_ms, args=(bench_catalog, params, {0: "inl", 1: "inl"}),
        rounds=1, iterations=1)
    bad = _median_ms(bench_catalog, params, {0: "hash", 1: "inl"})
    penalty = (bad - good) / good * 100

    artifact = "\n".join([
        "Figure 4 — intended execution plan for Query 9",
        explain_pipeline(pipeline, show_actuals=True),
        "",
        f"join-type ablation at ⨝1 (friends expansion):",
        f"  INL  (intended): {good:.2f} ms",
        f"  HASH (wrong):    {bad:.2f} ms",
        f"  penalty: {penalty:.0f}%   (paper: ~50% in HyPer at SF10+)",
    ])
    emit_artifact("figure4_q9_plan", artifact)

    # The optimizer must choose INL for the friend expansion (⨝1).
    assert pipeline.decisions[0].algorithm == "inl"
    # The wrong choice must cost measurably more.
    assert bad > good * 1.05
