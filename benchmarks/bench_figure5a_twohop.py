"""Figure 5a — distribution of the size of the 2-hop friend environment.

"Since the number of friends has a power-law distribution, the number of
friends of friends follows a multimodal distribution" — the source of
Q5's runtime variance.  We regenerate the histogram and assert the
heavy spread (max ≫ median) that makes curation necessary.
"""

from __future__ import annotations

from repro.bench import ascii_histogram, emit_artifact
from repro.datagen.stats import two_hop_histogram


def test_figure5a_twohop_distribution(benchmark, bench_stats):
    histogram = benchmark(two_hop_histogram, bench_stats, 24)
    emit_artifact("figure5a_twohop", ascii_histogram(
        [(str(bucket), count) for bucket, count in histogram],
        title="Figure 5a — 2-hop friend environment size distribution"))

    sizes = sorted(bench_stats.two_hop_count.values())
    median = sizes[len(sizes) // 2]
    assert sizes[-1] > 2 * max(median, 1)  # long tail
    assert len(histogram) >= 5             # spread over many buckets
