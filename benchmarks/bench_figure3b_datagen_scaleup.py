"""Figure 3b — DATAGEN scale-up: generation time vs SF vs worker count.

The paper measures wall-clock generation time for SF 30/300/1000 on 1, 3
and 10 Hadoop nodes.  Since the pipeline gained a real process-parallel
execution layer (``--jobs``, :mod:`repro.datagen.parallel`) this
benchmark *measures* generation at 1/2/4 worker processes for three
miniature SFs, and prints the per-stage Amdahl projection next to the
measurement so the substituted model (DESIGN.md §2.3) can be judged
against reality.

On single-core runners the measured parallel columns show the pool's
overhead rather than a speedup — the projection columns are what the
paper's shape assertions run against, and measured-speedup assertions
are gated on the usable core count.
"""

from __future__ import annotations

import os
import time

from repro.bench import emit_artifact, format_table
from repro.datagen import DatagenConfig, ParallelConfig
from repro.datagen.pipeline import DatagenPipeline

SCALE_FACTORS = (0.003, 0.01, 0.03)
JOBS = (1, 2, 4)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _measure(sf: float, jobs: int):
    """One full generation run; returns (wall seconds, stage timings)."""
    config = DatagenConfig.for_scale_factor(
        sf, seed=42, parallel=ParallelConfig(jobs=jobs))
    pipeline = DatagenPipeline(config)
    started = time.perf_counter()
    pipeline.run()
    return time.perf_counter() - started, pipeline.timings


def test_figure3b_datagen_scaleup(benchmark):
    measured = {(sf, jobs): _measure(sf, jobs)[0]
                for sf in SCALE_FACTORS for jobs in JOBS}
    serial_timings = {sf: _measure(sf, 1)[1] for sf in SCALE_FACTORS}
    benchmark.pedantic(_measure, args=(SCALE_FACTORS[0], 1), rounds=1,
                       iterations=1)

    rows = []
    for sf in SCALE_FACTORS:
        row = [f"{sf:g}"]
        row += [round(measured[(sf, jobs)], 3) for jobs in JOBS]
        row += [round(serial_timings[sf].projected_seconds(jobs), 3)
                for jobs in JOBS[1:]]
        rows.append(row)
    cores = _usable_cores()
    emit_artifact("figure3b_datagen_scaleup", format_table(
        ["SF"] + [f"measured {jobs}j" for jobs in JOBS]
        + [f"projected {jobs}j" for jobs in JOBS[1:]], rows,
        title=f"Figure 3b — generation seconds vs scale factor "
              f"(measured at --jobs 1/2/4 on {cores} core(s); "
              f"Amdahl projection alongside)"))

    # Shape: larger SF → slower, at every job count.
    for jobs in JOBS:
        series = [measured[(sf, jobs)] for sf in SCALE_FACTORS]
        assert series == sorted(series)
    # The Amdahl projection must improve with workers (most of the
    # pipeline partitions), mirroring the paper's scale-up curve.
    for sf in SCALE_FACTORS:
        projected = [serial_timings[sf].projected_seconds(jobs)
                     for jobs in JOBS]
        assert projected[0] >= projected[1] >= projected[2]
    big = serial_timings[SCALE_FACTORS[-1]]
    assert big.projected_seconds(10) < 0.5 * big.projected_seconds(1)
    # Measured speedup only exists when the hardware can run the
    # workers concurrently.
    if cores >= 2:
        big_sf = SCALE_FACTORS[-1]
        assert measured[(big_sf, 2)] < measured[(big_sf, 1)]
