"""Figure 3b — DATAGEN scale-up: generation time vs SF vs cluster size.

The paper measures wall-clock generation time for SF 30/300/1000 on 1, 3
and 10 nodes.  We measure real single-process generation time at three
miniature SFs and project the 3- and 10-worker runtimes from the
per-stage parallel fractions (Amdahl decomposition — the documented
substitution for a Hadoop cluster, DESIGN.md §2.3).
"""

from __future__ import annotations

from repro.bench import emit_artifact, format_table
from repro.datagen import DatagenConfig
from repro.datagen.pipeline import DatagenPipeline

SCALE_FACTORS = (0.003, 0.01, 0.03)
WORKERS = (1, 3, 10)


def _measure(sf):
    pipeline = DatagenPipeline(DatagenConfig.for_scale_factor(sf,
                                                              seed=42))
    pipeline.run()
    return pipeline.timings


def test_figure3b_datagen_scaleup(benchmark):
    timings = {sf: _measure(sf) for sf in SCALE_FACTORS}
    benchmark.pedantic(_measure, args=(SCALE_FACTORS[0],), rounds=1,
                       iterations=1)
    rows = []
    for sf in SCALE_FACTORS:
        row = [sf] + [round(timings[sf].projected_seconds(w), 3)
                      for w in WORKERS]
        rows.append(row)
    emit_artifact("figure3b_datagen_scaleup", format_table(
        ["SF"] + [f"{w} node(s)" for w in WORKERS], rows,
        title="Figure 3b — generation seconds vs scale factor "
              "(multi-node projected via per-stage Amdahl)"))

    # Shape: more workers → faster; larger SF → slower.
    for sf in SCALE_FACTORS:
        series = [timings[sf].projected_seconds(w) for w in WORKERS]
        assert series[0] >= series[1] >= series[2]
    singles = [timings[sf].projected_seconds(1) for sf in SCALE_FACTORS]
    assert singles == sorted(singles)
    # Parallelism helps substantially (most of the pipeline partitions).
    big = timings[SCALE_FACTORS[-1]]
    assert big.projected_seconds(10) < 0.5 * big.projected_seconds(1)
