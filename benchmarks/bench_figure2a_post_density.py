"""Figure 2a — post density over time: uniform vs event-driven.

"When event driven post generation is enabled, the density is not
uniform but spikes of different magnitude appear, which correspond to
events of different levels of importance."
"""

from __future__ import annotations

from repro.bench import ascii_series, emit_artifact
from repro.datagen import DatagenConfig, generate
from repro.datagen.events import EventCalendar

PERSONS = 250
SEED = 11
BUCKETS = 80


def _density(event_driven):
    config = DatagenConfig(num_persons=PERSONS, seed=SEED,
                           event_driven_posts=event_driven)
    network = generate(config)
    times = [p.creation_date for p in network.posts]
    series = EventCalendar([]).density_series(
        times, config.window.start, config.window.end, BUCKETS)
    return series


def _roughness(series):
    mean = sum(series) / len(series)
    jumps = [(a - b) ** 2 for a, b in zip(series, series[1:])]
    return (sum(jumps) / len(jumps)) / max(mean, 1e-9) ** 2


def test_figure2a_post_density(benchmark):
    uniform = benchmark.pedantic(lambda: _density(False), rounds=1,
                                 iterations=1)
    spiky = _density(True)
    artifact = "\n\n".join([
        ascii_series([float(v) for v in uniform], height=10,
                     title="Figure 2a (uniform): posts per time bucket"),
        ascii_series([float(v) for v in spiky], height=10,
                     title="Figure 2a (event-driven): posts per time "
                           "bucket"),
        f"detrended roughness: uniform={_roughness(uniform):.3f} "
        f"event-driven={_roughness(spiky):.3f}",
    ])
    emit_artifact("figure2a_post_density", artifact)
    assert _roughness(spiky) > 1.5 * _roughness(uniform)
