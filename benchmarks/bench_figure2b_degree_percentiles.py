"""Figure 2b — maximum degree of each percentile in the Facebook graph.

The paper plots the discretized Facebook degree table DATAGEN consumes.
We regenerate the plot from our calibrated table and assert its defining
properties: monotone growth, published median/mean calibration, and the
5000-friend cap at the top percentile.
"""

from __future__ import annotations

from repro.bench import ascii_series, emit_artifact, format_table
from repro.datagen.degrees import (
    FACEBOOK_MAX_DEGREE,
    PERCENTILE_TABLE,
    build_percentile_table,
    facebook_average_degree,
)


def test_figure2b_degree_percentiles(benchmark):
    table = benchmark(build_percentile_table)
    maxima = [hi for __, hi in table]
    rows = [[p, table[p][0], table[p][1]]
            for p in (0, 10, 25, 50, 75, 90, 95, 99)]
    artifact = "\n\n".join([
        ascii_series([float(v) for v in maxima[:99]], height=12,
                     title="Figure 2b — max degree per percentile "
                           "(0-98; p99 hits the 5000 cap)"),
        format_table(["percentile", "min degree", "max degree"], rows),
        f"calibration: median≈{table[50][1]}, "
        f"mean≈{facebook_average_degree():.0f}, "
        f"cap={FACEBOOK_MAX_DEGREE}",
    ])
    emit_artifact("figure2b_degree_percentiles", artifact)

    assert maxima == sorted(maxima)
    assert table[-1][1] == FACEBOOK_MAX_DEGREE
    assert 80 <= table[50][1] <= 130          # published median ≈ 100
    assert 150 <= facebook_average_degree() <= 250   # mean ≈ 190
    assert table == PERCENTILE_TABLE
