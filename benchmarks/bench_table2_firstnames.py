"""Table 2 — top-10 first names for persons from Germany vs China.

Regenerates the paper's Table 2 from a generated network: group persons
by location and count first names.  The headline claim: the head of each
ranking is the local-culture dictionary (Karl/Hans/... for Germany,
Yang/Chen/... for China), with rare foreign names in the tail.
"""

from __future__ import annotations

from collections import Counter

from repro.bench import emit_artifact, format_table
from repro.datagen import DatagenConfig, generate
from repro.datagen.dictionaries import FIRST_NAMES


def _top_names(network, country_name, k=10):
    country_id = next(p.id for p in network.places
                      if p.name == country_name)
    counter = Counter(person.first_name for person in network.persons
                      if person.country_id == country_id)
    return counter.most_common(k)


def test_table2_top_firstnames(benchmark):
    network = benchmark.pedantic(
        lambda: generate(DatagenConfig(num_persons=1500, seed=10)),
        rounds=1, iterations=1)
    germany = _top_names(network, "Germany")
    china = _top_names(network, "China")
    rows = []
    for i in range(max(len(germany), len(china))):
        g_name, g_count = germany[i] if i < len(germany) else ("", "")
        c_name, c_count = china[i] if i < len(china) else ("", "")
        rows.append([g_name, g_count, c_name, c_count])
    emit_artifact("table2_firstnames", format_table(
        ["Germany: Name", "Number", "China: Name", "Number"], rows,
        title="Table 2 — top-10 person.firstNames by location"))

    german_dictionary = set(FIRST_NAMES["germanic"]["male"]) \
        | set(FIRST_NAMES["germanic"]["female"])
    chinese_dictionary = set(FIRST_NAMES["chinese"]["male"]) \
        | set(FIRST_NAMES["chinese"]["female"])
    german_local = sum(1 for name, __ in germany
                       if name in german_dictionary)
    chinese_local = sum(1 for name, __ in china
                        if name in chinese_dictionary)
    assert german_local >= 7
    assert chinese_local >= 7
    # Skewed counts, as in the paper (head ≫ tail).
    assert germany[0][1] >= 2 * germany[-1][1] or len(germany) < 10
