"""Table 4 — frequency of complex read-only queries.

The paper's frequencies were calibrated on Virtuoso so every query takes
an equal share of the 50% complex-read budget.  This bench re-runs the
calibration procedure against our graph-store SUT: measure mean runtimes
of Q1-Q14, updates and short reads, then derive frequencies for the
10/50/40 split, and compare the *ordering* with the paper's Table 4
(cheap queries like Q8 frequent, heavy queries like Q6/Q9 rare).
"""

from __future__ import annotations

import time

from repro.bench import emit_artifact, format_table
from repro.queries import COMPLEX_QUERIES
from repro.queries import short_reads
from repro.workload import TABLE4_FREQUENCIES, calibrate_frequencies


def _mean_runtime(store, query_id, bindings, repetitions=3):
    entry = COMPLEX_QUERIES[query_id]
    samples = []
    for params in bindings:
        for __ in range(repetitions):
            with store.transaction() as txn:
                started = time.perf_counter()
                entry.run(txn, params)
                samples.append(time.perf_counter() - started)
    return sum(samples) / len(samples)


def _measure_all(bench_store, bench_params, bench_network):
    complex_means = {
        query_id: _mean_runtime(bench_store, query_id,
                                bench_params.by_query[query_id][:4])
        for query_id in range(1, 15)}
    person = bench_network.persons[0]
    started = time.perf_counter()
    repetitions = 200
    for __ in range(repetitions):
        with bench_store.transaction() as txn:
            short_reads.s1_person_profile(txn, person.id)
    short_mean = (time.perf_counter() - started) / repetitions
    # Updates: approximate with a small no-op-cost transaction probe.
    started = time.perf_counter()
    for __ in range(repetitions):
        with bench_store.transaction() as txn:
            txn.vertex("person", person.id)
    update_mean = max((time.perf_counter() - started) / repetitions,
                      short_mean)
    return complex_means, update_mean, short_mean


def test_table4_query_mix_calibration(benchmark, bench_store,
                                      bench_params, bench_network):
    complex_means, update_mean, short_mean = benchmark.pedantic(
        _measure_all, args=(bench_store, bench_params, bench_network),
        rounds=1, iterations=1)
    result = calibrate_frequencies(complex_means, update_mean,
                                   short_mean)
    rows = [[f"Q{qid}", round(complex_means[qid] * 1000, 3),
             result.frequencies[qid], TABLE4_FREQUENCIES[qid]]
            for qid in range(1, 15)]
    rows.append(["walk P", "", round(result.walk_probability, 3), ""])
    emit_artifact("table4_query_mix", format_table(
        ["query", "mean ms", "calibrated freq", "paper freq"], rows,
        title="Table 4 — calibrated complex-read frequencies "
              "(1 execution per N updates)"))

    ours = result.frequencies
    # Shape check: heavier queries get larger intervals.  Group-based
    # (robust to scheduling jitter): the cheap point-ish queries run
    # far more often than the heavy 2-hop traversals, and the rarest
    # query is a heavy one.
    cheap = (7, 8, 13)
    heavy = (3, 5, 9, 14)
    cheap_mean = sum(ours[q] for q in cheap) / len(cheap)
    heavy_mean = sum(ours[q] for q in heavy) / len(heavy)
    assert cheap_mean * 5 < heavy_mean
    ascending = sorted(range(1, 15), key=lambda q: ours[q])
    assert ascending[-1] in (3, 5, 6, 9, 14)
    # Rank correlation with the paper's Table 4 should be positive:
    # the same queries are cheap/heavy on both systems, roughly.
    paper_order = sorted(range(1, 15),
                         key=lambda q: TABLE4_FREQUENCIES[q])
    our_order = sorted(range(1, 15), key=lambda q: ours[q])
    paper_rank = {q: i for i, q in enumerate(paper_order)}
    our_rank = {q: i for i, q in enumerate(our_order)}
    mean_rank_gap = sum(abs(paper_rank[q] - our_rank[q])
                        for q in range(1, 15)) / 14
    # Random ordering averages ~4.9; systematic agreement stays well
    # below even under timing jitter.
    assert mean_rank_gap < 4.5
