"""Figure 5b — Q5 runtime distribution under uniform vs curated params.

The paper's motivating example: uniform PersonID sampling gives Q5 a
runtime distribution with >100× spread between the fastest and slowest
binding, making scores non-repeatable; curation fixes it.  The factor is
scale-dependent; the claims checked are the *direction* (curated variance
and spread are much smaller) with a conservative factor.
"""

from __future__ import annotations

import statistics
import time

from repro.bench import ascii_histogram, emit_artifact
from repro.queries.complex_reads import q5


def _runtimes(store, person_ids, min_date, repetitions=3):
    runtimes = []
    for person_id in person_ids:
        samples = []
        for __ in range(repetitions):
            with store.transaction() as txn:
                started = time.perf_counter()
                q5.run(txn, q5.Q5Params(person_id, min_date))
                samples.append(time.perf_counter() - started)
        runtimes.append(statistics.median(samples) * 1000)
    return runtimes


def _histogram(runtimes, buckets=8):
    top = max(runtimes)
    width = max(top / buckets, 1e-9)
    counts: dict[str, int] = {}
    for i in range(buckets):
        low, high = i * width, (i + 1) * width
        label = f"{low:.1f}-{high:.1f}ms"
        counts[label] = sum(1 for r in runtimes if low <= r < high)
    counts[label] += sum(1 for r in runtimes if r == top)
    return list(counts.items())


def test_figure5b_q5_runtime_variance(benchmark, bench_store,
                                      bench_curator, bench_params):
    min_date = bench_params.by_query[5][0].min_date
    uniform_ids = bench_curator.uniform_persons(5, 25)
    curated_ids = bench_curator.curated_persons(5, 25)
    uniform = benchmark.pedantic(
        _runtimes, args=(bench_store, uniform_ids, min_date),
        rounds=1, iterations=1)
    curated = _runtimes(bench_store, curated_ids, min_date)

    spread_uniform = max(uniform) / max(min(uniform), 1e-6)
    spread_curated = max(curated) / max(min(curated), 1e-6)
    var_uniform = statistics.pvariance(uniform)
    var_curated = statistics.pvariance(curated)
    artifact = "\n\n".join([
        ascii_histogram(_histogram(uniform),
                        title="Figure 5b — Q5 runtimes, uniform "
                              "parameters"),
        ascii_histogram(_histogram(curated),
                        title="Figure 5b' — Q5 runtimes, curated "
                              "parameters"),
        (f"max/min spread: uniform {spread_uniform:.1f}× vs curated "
         f"{spread_curated:.1f}×\n"
         f"variance (ms²): uniform {var_uniform:.3f} vs curated "
         f"{var_curated:.3f}"),
    ])
    emit_artifact("figure5b_q5_variance", artifact)

    # P1: curated variance is (much) lower.
    assert var_curated < var_uniform / 2
    assert spread_curated < spread_uniform
