"""Latency and throughput metrics for driver runs.

The paper's run rules: "it is required that latencies of the complex
read-only queries are stable as measured by a maximum latency on the 99th
percentile.  These latencies are reported as a result of the run."
:class:`LatencyRecorder` collects per-class latencies; per-window p99
series support the stability check.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

# The nearest-rank implementation lives with the telemetry histograms;
# re-exported here because this module is its historical home.
from ..telemetry.metrics import percentile

__all__ = [
    "ClassStats",
    "DriverMetrics",
    "LatencyRecorder",
    "percentile",
    "steady_state_ok",
]


@dataclass
class ClassStats:
    """Aggregate statistics of one operation class."""

    name: str
    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float


class LatencyRecorder:
    """Thread-safe per-class latency collection."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: dict[str, list[float]] = {}
        #: (class, wall-clock start offset, latency) for windowed series.
        self._timeline: list[tuple[str, float, float]] = []

    def record(self, op_class: str, latency_seconds: float,
               at_offset: float = 0.0) -> None:
        with self._lock:
            self._latencies.setdefault(op_class, []).append(
                latency_seconds)
            self._timeline.append((op_class, at_offset, latency_seconds))

    def stats(self) -> dict[str, ClassStats]:
        """Aggregate statistics per operation class."""
        with self._lock:
            snapshot = {name: list(vals)
                        for name, vals in self._latencies.items()}
        result = {}
        for name, values in snapshot.items():
            ms = [v * 1000.0 for v in values]
            result[name] = ClassStats(
                name=name,
                count=len(ms),
                mean_ms=sum(ms) / len(ms),
                p50_ms=percentile(ms, 0.50),
                p95_ms=percentile(ms, 0.95),
                p99_ms=percentile(ms, 0.99),
                max_ms=max(ms),
            )
        return result

    def p99_series(self, op_class: str, window_seconds: float,
                   ) -> list[float]:
        """Per-window p99 latencies (ms) — the steady-state series."""
        with self._lock:
            rows = [(offset, latency) for name, offset, latency
                    in self._timeline if name == op_class]
        if not rows:
            return []
        rows.sort()
        horizon = rows[-1][0]
        series = []
        start = 0.0
        while start <= horizon:
            window = [latency * 1000.0 for offset, latency in rows
                      if start <= offset < start + window_seconds]
            if window:
                series.append(percentile(window, 0.99))
            start += window_seconds
        return series

    @property
    def total_operations(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._latencies.values())


@dataclass
class DriverMetrics:
    """Final metrics of one driver run."""

    wall_seconds: float
    operations: int
    per_class: dict[str, ClassStats] = field(default_factory=dict)
    #: Fraction of operations that started late (behind the clock).
    late_fraction: float = 0.0
    #: Maximum observed scheduling lateness (seconds).
    max_lateness: float = 0.0

    @property
    def throughput(self) -> float:
        """Operations per second of wall-clock time."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.operations / self.wall_seconds


def steady_state_ok(p99_series: list[float],
                    tolerance_ratio: float = 3.0) -> bool:
    """Is the per-window p99 stable (max within ratio of median)?"""
    if len(p99_series) < 2:
        return True
    ordered = sorted(p99_series)
    median = ordered[len(ordered) // 2]
    if median <= 0:
        return True
    return max(p99_series) <= median * tolerance_ratio
