"""Simulation-to-real-time mapping and the acceleration factor.

Paper, Rules and Metrics: "A system may be able to execute the workload
faster in real time; for example, one hour of simulation time worth of
operations might be played against the database system in half an hour of
real time. ... This acceleration-factor (simulation time / real time) that
the system can sustain correlates with throughput of the system" — and is
the benchmark's headline metric.
"""

from __future__ import annotations

import time

from ..errors import DriverError

#: Sentinel acceleration: ignore due times, execute back-to-back.
AS_FAST_AS_POSSIBLE = float("inf")


class AccelerationClock:
    """Maps simulation due-times onto wall-clock deadlines.

    ``acceleration`` is simulation time over real time: 2.0 means one real
    second plays two simulated seconds; the paper's Sparksee run sustained
    0.1, the Virtuoso SF300 run 10/4 = 2.5 (reported as "10 units of
    simulation time per 4 of real time").
    """

    def __init__(self, simulation_start: int, acceleration: float,
                 real_start: float | None = None) -> None:
        if acceleration <= 0:
            raise DriverError(
                f"acceleration must be positive, got {acceleration}")
        self.simulation_start = simulation_start
        self.acceleration = acceleration
        self.real_start = time.monotonic() if real_start is None \
            else real_start

    @property
    def is_unthrottled(self) -> bool:
        return self.acceleration == AS_FAST_AS_POSSIBLE

    def real_deadline(self, due_time: int) -> float:
        """Wall-clock (monotonic) moment the operation is due."""
        if self.is_unthrottled:
            return self.real_start
        sim_elapsed_ms = due_time - self.simulation_start
        return self.real_start + sim_elapsed_ms / (1000.0
                                                   * self.acceleration)

    def wait_until_due(self, due_time: int) -> float:
        """Sleep until the operation's deadline; returns lateness seconds.

        Positive lateness means the operation started behind schedule —
        sustained growth of lateness is what "cannot maintain the
        acceleration factor" looks like.
        """
        if self.is_unthrottled:
            return 0.0
        deadline = self.real_deadline(due_time)
        now = time.monotonic()
        if now < deadline:
            time.sleep(deadline - now)
            return 0.0
        return now - deadline

    def simulation_now(self) -> float:
        """Current position on the simulation timeline."""
        if self.is_unthrottled:
            return float(self.simulation_start)
        elapsed = time.monotonic() - self.real_start
        return self.simulation_start + elapsed * 1000.0 * self.acceleration
