"""The multi-threaded partitioned workload scheduler (paper Figure 8).

Each partition of the operation stream runs on its own thread and follows
the paper's dependent-execution loop:

1. advance the stream's watermark to the operation's T_DUE;
2. if the operation is in *Dependencies*, add T_DUE to the stream's IT;
3. if it is in *Dependents*, wait until T_GC ≥ its T_DEP;
4. wait until the operation's real-time deadline (acceleration clock);
5. execute it against the connector;
6. if it was a dependency, move its timestamp from IT to CT.

The three execution modes differ in steps 2/3:

* PARALLEL tracks every dependency and waits on the full T_DEP;
* SEQUENTIAL (for forum-partitioned streams) relies on intra-partition
  due-time order for tree dependencies, tracks only person-graph
  operations, and waits only on the person-graph component of T_DEP;
* WINDOWED executes Dependents in T_SAFE-bounded windows, shuffled, with
  one T_GC synchronization per window instead of per operation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .. import telemetry
from ..datagen.update_stream import partition_updates
from ..errors import DriverError, OperationTimeoutError
from ..rng import RandomStream
from ..workload.operations import op_class_name as _op_class_name
from .clock import AS_FAST_AS_POSSIBLE, AccelerationClock
from .dependency import GlobalDependencyService, LocalDependencyService
from .metrics import DriverMetrics, LatencyRecorder
from .modes import ExecutionMode
from .resilience import (
    CircuitBreaker,
    CircuitOpenError,
    DegradePolicy,
    RetryPolicy,
    call_with_watchdog,
)

if TYPE_CHECKING:
    # Import-cycle free: the canonical contract lives in repro.core,
    # which (transitively) imports this module at runtime.
    from ..core.connector import ConnectorProtocol


@dataclass
class DriverConfig:
    """Knobs of a driver run."""

    num_partitions: int = 4
    mode: ExecutionMode = ExecutionMode.PARALLEL
    #: Simulation-time / real-time ratio; ``AS_FAST_AS_POSSIBLE`` ignores
    #: due times entirely (used by the scalability benches).
    acceleration: float = AS_FAST_AS_POSSIBLE
    #: Seconds a dependent op may wait on T_GC before the run is declared
    #: wedged (indicates a dependency-metadata bug, not normal operation).
    dependency_wait_timeout: float = 60.0
    #: Window length (simulation ms) for WINDOWED mode; must not exceed
    #: the dataset's T_SAFE.  ``None`` → the config owner supplies it.
    window_millis: int | None = None
    #: Real-time slack (seconds) before a behind-schedule operation
    #: counts as late.  Operations arrive in sub-millisecond clusters
    #: (a comment is due 1 ms after its post), so microsecond slippage
    #: is inherent; what "cannot sustain the acceleration factor" means
    #: is falling behind by more than this slack.
    lateness_tolerance: float = 1.0
    #: Transient connector failures (e.g. a deadlock-victim abort in a
    #: real SUT) are retried this many times before the run fails.
    #: Shorthand for the same field of :class:`RetryPolicy`; ignored
    #: when ``resilience`` is supplied.
    max_retries: int = 0
    #: Base backoff seconds between retries (shorthand for
    #: ``RetryPolicy.base_backoff``; ignored when ``resilience`` set).
    retry_backoff: float = 0.01
    #: Full resilience policy (retry classification, decorrelated-jitter
    #: backoff, watchdog timeouts, degradation, failure budget).  None
    #: derives a fail-fast policy from the two shorthand fields above.
    resilience: RetryPolicy | None = None
    seed: int = 0

    def effective_policy(self) -> RetryPolicy:
        """The resilience policy this run executes under."""
        if self.resilience is not None:
            return self.resilience
        return RetryPolicy(max_retries=self.max_retries,
                           base_backoff=self.retry_backoff,
                           max_backoff=max(self.retry_backoff, 1.0))


@dataclass
class DriverReport:
    """Outcome of one driver run."""

    metrics: DriverMetrics
    dependency_timeouts: int = 0
    per_partition_counts: list[int] = field(default_factory=list)
    #: Transient connector failures absorbed by the retry policy.
    retries: int = 0
    #: Retries broken down by operation class.
    retries_by_class: dict[str, int] = field(default_factory=dict)
    #: Operations abandoned after retry exhaustion under DEGRADE.
    skipped: int = 0
    skipped_by_class: dict[str, int] = field(default_factory=dict)
    #: Partitions whose failure budget was exceeded.
    breaker_trips: int = 0
    #: Watchdog attempt timeouts plus expired per-op budgets.
    op_timeouts: int = 0

    @property
    def ops_per_second(self) -> float:
        return self.metrics.throughput


class WorkloadDriver:
    """Executes a due-time-ordered operation stream against a connector."""

    def __init__(self, connector: ConnectorProtocol,
                 config: DriverConfig) -> None:
        self.connector = connector
        self.config = config
        self.gds = GlobalDependencyService()
        self.recorder = LatencyRecorder()
        self._policy = config.effective_policy()
        self._timeouts = 0
        #: Guards the dependency-timeout counter only.
        self._timeout_lock = threading.Lock()
        #: Guards every other run-statistics field below — retry/skip
        #: accounting must not contend with (or hide behind) the
        #: timeout counter's lock.
        self._stats_lock = threading.Lock()
        self._late_count = 0
        self._max_lateness = 0.0
        self._op_count = 0
        self._retries = 0
        self._retries_by_class: dict[str, int] = {}
        self._skipped = 0
        self._skipped_by_class: dict[str, int] = {}
        self._breaker_trips = 0
        self._op_timeouts = 0
        self._breakers: list[CircuitBreaker] = []
        self._backoff_streams: list[RandomStream] = []

    def run(self, operations: list) -> DriverReport:
        """Partition the stream, execute all partitions, report metrics."""
        config = self.config
        if config.mode is ExecutionMode.WINDOWED \
                and config.window_millis is None:
            raise DriverError("WINDOWED mode requires window_millis")
        partitions = partition_updates(operations, config.num_partitions)
        services = [LocalDependencyService() for __ in partitions]
        for lds in services:
            self.gds.register(lds)
        policy = self._policy
        self._breakers = [CircuitBreaker(i, policy.failure_budget)
                          for i in range(len(partitions))]
        self._backoff_streams = [
            RandomStream.for_key(config.seed, "retry-backoff", i)
            for i in range(len(partitions))]
        simulation_start = min((op.due_time for op in operations),
                               default=0)
        clock = AccelerationClock(simulation_start, config.acceleration)
        run_start = time.monotonic()

        errors: list[tuple[int, BaseException]] = []
        threads = []
        for index, (ops, lds) in enumerate(zip(partitions, services)):
            thread = threading.Thread(
                target=self._partition_main,
                args=(index, ops, lds, clock, run_start, errors),
                name=f"driver-partition-{index}", daemon=True)
            threads.append(thread)
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise self._aggregate_failures(errors)

        wall = time.monotonic() - run_start
        metrics = DriverMetrics(
            wall_seconds=wall,
            operations=self._op_count,
            per_class=self.recorder.stats(),
            late_fraction=(self._late_count / self._op_count
                           if self._op_count else 0.0),
            max_lateness=self._max_lateness,
        )
        report = DriverReport(
            metrics=metrics,
            dependency_timeouts=self._timeouts,
            per_partition_counts=[len(p) for p in partitions],
            retries=self._retries,
            retries_by_class=dict(self._retries_by_class),
            skipped=self._skipped,
            skipped_by_class=dict(self._skipped_by_class),
            breaker_trips=self._breaker_trips,
            op_timeouts=self._op_timeouts,
        )
        if telemetry.active:
            registry = telemetry.get_registry()
            telemetry.publish_driver_metrics(metrics, registry)
            telemetry.publish_resilience_report(report, registry)
        return report

    @staticmethod
    def _aggregate_failures(
            errors: list[tuple[int, BaseException]]) -> BaseException:
        """First partition failure, annotated with every other one.

        The original exception (type intact, so callers can still catch
        what the connector raised) carries all failures on a
        ``partition_failures`` attribute; when several partitions died,
        a summary of the others is appended to its message so nothing
        is silently discarded.
        """
        first_index, first_exc = errors[0]
        first_exc.partition_failures = [(index, exc)
                                        for index, exc in errors]
        if len(errors) > 1:
            others = "; ".join(
                f"partition {index}: {type(exc).__name__}: {exc}"
                for index, exc in errors[1:])
            note = (f"[driver: partition {first_index} failed first; "
                    f"+{len(errors) - 1} more partition failure(s): "
                    f"{others}]")
            if hasattr(first_exc, "add_note"):  # Python >= 3.11
                first_exc.add_note(note)
            else:  # pragma: no cover - 3.10 fallback
                first_exc.args = first_exc.args + (note,)
        return first_exc

    # ------------------------------------------------------------------
    # partition execution
    # ------------------------------------------------------------------

    def _partition_main(self, index, ops, lds, clock, run_start,
                        errors) -> None:
        try:
            if telemetry.active:
                with telemetry.span(f"scheduler.partition.{index}",
                                    mode=self.config.mode.value,
                                    operations=len(ops)):
                    self._run_partition(index, ops, lds, clock, run_start)
            else:
                self._run_partition(index, ops, lds, clock, run_start)
        except BaseException as exc:  # surfaced by run()
            errors.append((index, exc))
        finally:
            lds.finish()

    def _run_partition(self, index, ops, lds, clock, run_start) -> None:
        if self.config.mode is ExecutionMode.WINDOWED:
            self._run_windowed(index, ops, lds, clock, run_start)
        else:
            self._run_ordered(index, ops, lds, clock, run_start)

    def _tracks_dependencies(self, op) -> bool:
        """Does this op register in IT/CT under the current mode?"""
        if not op.is_dependency:
            return False
        if self.config.mode is ExecutionMode.PARALLEL:
            return True
        # SEQUENTIAL / WINDOWED: only person-graph operations (those
        # without a forum partition key) are tracked globally.
        return op.partition_key is None

    def _dependency_time(self, op) -> int:
        """The T_DEP this op must wait for under the current mode."""
        if not op.is_dependent:
            return 0
        if self.config.mode is ExecutionMode.PARALLEL:
            return op.depends_on_time
        return op.global_depends_on_time

    def _run_ordered(self, index, ops, lds, clock, run_start) -> None:
        """PARALLEL / SEQUENTIAL: the Figure 8 loop, in due-time order."""
        for op in ops:
            lds.advance_watermark(op.due_time)
            tracked = self._tracks_dependencies(op)
            if tracked:
                lds.initiate(op.due_time)
            self._wait_for_dependency(op, index)
            lateness = clock.wait_until_due(op.due_time)
            try:
                self._execute(op, run_start, lateness, index)
            finally:
                # A skipped (degraded) dependency still advances IT/CT:
                # downstream partitions must not wedge on a dead op.
                if tracked:
                    lds.complete(op.due_time)

    def _run_windowed(self, index, ops, lds, clock, run_start) -> None:
        """WINDOWED: batch Dependents into T_SAFE-bounded windows."""
        window_millis = self.config.window_millis
        # Seeded by the stable partition index so windowed runs are
        # reproducible given (config.seed, partitioning).
        stream = RandomStream.for_key(self.config.seed, "window-shuffle",
                                      index)
        window: list = []
        window_start: int | None = None

        def flush() -> None:
            nonlocal window, window_start
            if not window:
                return
            max_dep = max(self._dependency_time(op) for op in window)
            if max_dep > 0:
                self._wait_for_window(max_dep, index)
            lateness = clock.wait_until_due(window_start)
            stream.shuffle(window)
            # Consume the window as we go: if an op fails the partition
            # (fail-fast), the already-executed prefix stays counted and
            # a re-entrant flush cannot double-execute it.
            try:
                while window:
                    op = window.pop()
                    self._execute(op, run_start, lateness, index)
            finally:
                if not window:
                    window = []
                    window_start = None

        for op in ops:
            lds.advance_watermark(op.due_time)
            if self._tracks_dependencies(op):
                # Dependencies are never windowed: flush and run inline.
                flush()
                lds.initiate(op.due_time)
                self._wait_for_dependency(op, index)
                lateness = clock.wait_until_due(op.due_time)
                try:
                    self._execute(op, run_start, lateness, index)
                finally:
                    # Degraded-skip or failure: T_GC must still advance.
                    lds.complete(op.due_time)
                continue
            if window_start is None:
                window_start = op.due_time
            elif op.due_time - window_start >= window_millis:
                flush()
                window_start = op.due_time
            window.append(op)
        flush()

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _gc_wait(self, dep_time: int) -> bool:
        """Block on T_GC ≥ dep_time, timed into telemetry when active."""
        if not telemetry.active:
            return self.gds.wait_until(dep_time,
                                       self.config.dependency_wait_timeout)
        with telemetry.span("scheduler.wait.gc", dep_time=dep_time) as sp:
            started = time.perf_counter()
            arrived = self.gds.wait_until(
                dep_time, self.config.dependency_wait_timeout)
            waited = time.perf_counter() - started
            sp.set("timed_out", not arrived)
        telemetry.histogram(telemetry.GC_WAIT_HISTOGRAM).observe(waited)
        if not arrived:
            telemetry.counter(telemetry.GC_TIMEOUT_COUNTER).inc()
        return arrived

    def _wait_for_dependency(self, op, index: int) -> None:
        dep_time = self._dependency_time(op)
        if dep_time <= 0:
            return
        if not self._gc_wait(dep_time):
            with self._timeout_lock:
                self._timeouts += 1
            raise DriverError(
                f"partition {index}: dependency wait timed out: T_GC "
                f"stuck below {dep_time} for {op}")

    def _wait_for_window(self, max_dep: int, index: int) -> None:
        if not self._gc_wait(max_dep):
            with self._timeout_lock:
                self._timeouts += 1
            raise DriverError(
                f"partition {index}: windowed dependency wait timed out "
                f"at {max_dep}")

    def _execute(self, op, run_start, lateness: float,
                 partition: int) -> None:
        started = time.monotonic()
        if telemetry.active:
            with telemetry.span("op." + _op_class_name(op),
                                due_time=op.due_time,
                                lateness_seconds=lateness) as sp:
                executed = self._execute_with_retries(op, partition)
                sp.set("skipped", not executed)
        else:
            executed = self._execute_with_retries(op, partition)
        if not executed:
            return
        latency = time.monotonic() - started
        self.recorder.record(_op_class_name(op), latency,
                             started - run_start)
        with self._stats_lock:
            self._op_count += 1
            if lateness > self.config.lateness_tolerance:
                self._late_count += 1
            if lateness > self._max_lateness:
                self._max_lateness = lateness

    def _execute_with_retries(self, op, partition: int) -> bool:
        """Run one op under the resilience policy.

        Returns True when the operation executed, False when it was
        abandoned under :attr:`DegradePolicy.DEGRADE` (the caller still
        advances dependency tracking so downstream never wedges).
        Transient failures retry with decorrelated-jitter backoff up to
        ``max_retries`` within the per-op wall-clock budget; fatal
        (non-transient) failures never retry.
        """
        policy = self._policy
        stream = self._backoff_streams[partition]
        op_deadline = (time.monotonic() + policy.op_timeout
                       if policy.op_timeout is not None else None)
        attempt = 0
        backoff = policy.base_backoff
        while True:
            try:
                if policy.attempt_timeout is not None:
                    budget = policy.attempt_timeout
                    if op_deadline is not None:
                        budget = min(budget,
                                     op_deadline - time.monotonic())
                        if budget <= 0:
                            raise OperationTimeoutError(
                                f"per-op budget {policy.op_timeout:.3f}s "
                                f"exhausted before attempt {attempt + 1}")
                    call_with_watchdog(
                        lambda: self.connector.execute(op), budget)
                else:
                    self.connector.execute(op)
                return True
            except Exception as exc:
                if isinstance(exc, OperationTimeoutError):
                    with self._stats_lock:
                        self._op_timeouts += 1
                if not policy.is_transient(exc):
                    return self._exhausted(op, partition, exc)
                attempt += 1
                budget_expired = (op_deadline is not None
                                  and time.monotonic() >= op_deadline)
                if attempt > policy.max_retries or budget_expired:
                    return self._exhausted(op, partition, exc)
                op_class = _op_class_name(op)
                with self._stats_lock:
                    self._retries += 1
                    self._retries_by_class[op_class] = \
                        self._retries_by_class.get(op_class, 0) + 1
                backoff = policy.next_backoff(backoff, stream)
                if backoff > 0:
                    time.sleep(backoff)

    def _exhausted(self, op, partition: int, exc: Exception) -> bool:
        """Out of retries (or non-transient): degrade or fail fast."""
        if self._policy.on_exhaustion is not DegradePolicy.DEGRADE:
            raise exc
        op_class = _op_class_name(op)
        with self._stats_lock:
            self._skipped += 1
            self._skipped_by_class[op_class] = \
                self._skipped_by_class.get(op_class, 0) + 1
        if self._breakers[partition].record_skip():
            with self._stats_lock:
                self._breaker_trips += 1
            raise CircuitOpenError(
                f"partition {partition}: failure budget "
                f"{self._policy.failure_budget} exceeded "
                f"({self._breakers[partition].skips} ops skipped); "
                f"last failure: {type(exc).__name__}: {exc}") from exc
        return False


# _op_class_name is the shared repro.workload.operations.op_class_name
# helper (imported above), so the recorder's per-class labels — and the
# driver.latency_ms.* gauge names the telemetry bridge derives from them
# — always match the connector's span labels.
