"""Stream execution modes (paper §4.2).

* **PARALLEL** — the default: every Dependencies operation registers in
  IT/CT, every Dependents operation blocks on T_GC ≥ T_DEP.
* **SEQUENTIAL** — "instead of classifying stream operations as
  Dependent/Dependency, the same dependencies can be captured by executing
  that stream sequentially, thereby guaranteeing causal order".  Used for
  intra-forum trees (posts/comments/likes of one forum land in one
  partition, in due-time order); only the person-graph component of a
  dependency still synchronizes via T_GC.
* **WINDOWED** — operations are grouped by T_DUE into windows no longer
  than T_SAFE; inside a window they may run in any order, and T_GC is
  consulted only at window boundaries.  Sound because DATAGEN guarantees
  every Dependents operation trails its dependency by at least T_SAFE.
"""

from __future__ import annotations

from enum import Enum


class ExecutionMode(Enum):
    """How a partition's stream schedules its operations."""

    PARALLEL = "parallel"
    SEQUENTIAL = "sequential"
    WINDOWED = "windowed"
