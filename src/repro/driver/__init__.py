"""The SNB workload driver (paper §4.2).

"The SNB query driver solves the difficult task of generating a highly
parallel workload ... on a dataset that by its complex connected component
structure is impossible to partition."

Components:

* :mod:`repro.driver.dependency` — Local/Global Dependency Services
  (Figure 7): Initiated/Completed Times, T_LI / T_LC per stream, T_GI /
  T_GC globally;
* :mod:`repro.driver.modes` — the three execution modes: Parallel (GCT
  synchronization), Sequential (per-forum causal order), Windowed
  (T_SAFE-sized out-of-order windows);
* :mod:`repro.driver.clock` — simulation-to-real-time mapping and the
  acceleration factor (the benchmark's headline metric);
* :mod:`repro.driver.connectors` — the system-under-test interface,
  including the paper's sleeping dummy connector (Table 5) and the graph
  store connector;
* :mod:`repro.driver.scheduler` — multi-threaded partitioned execution
  (Figure 8's dependent-execution loop);
* :mod:`repro.driver.metrics` — latency/throughput recording, percentile
  and steady-state reporting.
"""

from .clock import AccelerationClock, AS_FAST_AS_POSSIBLE
from .connectors import (
    Connector,
    RecordingConnector,
    SleepingConnector,
    StoreConnector,
    SUTConnector,
)
from .dependency import GlobalDependencyService, LocalDependencyService
from .metrics import DriverMetrics, LatencyRecorder
from .modes import ExecutionMode
from .resilience import (
    CircuitBreaker,
    CircuitOpenError,
    DegradePolicy,
    RetryPolicy,
    default_is_transient,
)
from .scheduler import DriverConfig, DriverReport, WorkloadDriver

__all__ = [
    "AS_FAST_AS_POSSIBLE",
    "AccelerationClock",
    "CircuitBreaker",
    "CircuitOpenError",
    "Connector",
    "DegradePolicy",
    "DriverConfig",
    "DriverMetrics",
    "DriverReport",
    "ExecutionMode",
    "GlobalDependencyService",
    "LatencyRecorder",
    "LocalDependencyService",
    "RecordingConnector",
    "RetryPolicy",
    "SUTConnector",
    "SleepingConnector",
    "StoreConnector",
    "WorkloadDriver",
    "default_is_transient",
]
