"""System-under-test connectors.

The driver is SUT-agnostic: it hands each
:class:`~repro.datagen.update_stream.UpdateOperation` (or read operation)
to a connector.  Three implementations:

* :class:`SleepingConnector` — the paper's "dummy database connector that,
  rather than executing transactions against a database, simply sleeps for
  a configured duration" (Table 5 driver-scalability experiments);
* :class:`StoreConnector` — executes updates against the MVCC graph store;
* :class:`RecordingConnector` — records the execution order and T_GC at
  execution time, used by the dependency-correctness tests;
* :class:`DifferentialConnector` — drives two SUTs in lockstep, applying
  every update to both and diffing every read (validation harness).
"""

from __future__ import annotations

import threading
import time

from ..core.connector import ConnectorProtocol
from ..datagen.update_stream import UpdateOperation
from ..queries.updates import execute_update
from ..store.graph import GraphStore, IsolationLevel

#: Back-compat alias for the historical driver-local protocol; the
#: canonical contract now lives in :mod:`repro.core.connector`.
Connector = ConnectorProtocol


def _close_quietly(target) -> None:
    """Close a wrapped SUT/connector if it knows how to."""
    close = getattr(target, "close", None)
    if callable(close):
        close()


class SleepingConnector:
    """Sleeps a fixed duration per operation (the Table 5 dummy SUT)."""

    supports_reads = False
    is_remote = False

    def __init__(self, sleep_seconds: float) -> None:
        self.sleep_seconds = sleep_seconds
        self._count = 0
        self._lock = threading.Lock()

    def execute(self, operation: UpdateOperation) -> None:
        time.sleep(self.sleep_seconds)
        with self._lock:
            self._count += 1

    @property
    def executed(self) -> int:
        return self._count

    def close(self) -> None:
        pass


class StoreConnector:
    """Applies update operations to the graph store transactionally."""

    supports_reads = False
    is_remote = False

    def __init__(self, store: GraphStore,
                 isolation: IsolationLevel = IsolationLevel.SNAPSHOT,
                 ) -> None:
        self.store = store
        self.isolation = isolation

    def execute(self, operation: UpdateOperation) -> None:
        execute_update(self.store, operation, self.isolation)

    def close(self) -> None:
        pass


class SUTConnector:
    """Adapts any unified-API SUT (``execute(op) -> OperationResult``)
    to the driver's connector protocol.

    ``serialize=True`` funnels all calls through one lock — required
    for SUTs without internal concurrency control (the relational
    engine's catalog mutates bare lists), harmless for one-partition
    runs.
    """

    supports_reads = True

    def __init__(self, sut, serialize: bool = False) -> None:
        self.sut = sut
        self.is_remote = bool(getattr(sut, "is_remote", False))
        self._lock = threading.Lock() if serialize else None

    def execute(self, operation) -> None:
        from ..core.operation import as_operation  # import-cycle free

        op = as_operation(operation)
        if self._lock is not None:
            with self._lock:
                self.sut.execute(op)
        else:
            self.sut.execute(op)

    def close(self) -> None:
        _close_quietly(self.sut)


class ReadDisagreement:
    """One read whose results differed between the paired SUTs."""

    def __init__(self, label: str, params: object, diff: object) -> None:
        self.label = label
        self.params = params
        self.diff = diff

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReadDisagreement({self.label}, {self.params})"


class DifferentialConnector:
    """Drives two SUTs in lockstep and diffs every read result.

    Updates are applied to both systems under one lock, so each read
    (also under the lock) observes both systems after the *same* update
    prefix.  That makes the oracle strict only when the driver executes
    sequentially (one partition, sequential mode): with concurrent
    workers, reads racing updates can legitimately observe different
    prefixes and a disagreement is advisory, not a verdict.  The
    dependency-correctness tests run it sequentially.
    """

    supports_reads = True

    def __init__(self, primary, secondary) -> None:
        self.primary = primary
        self.secondary = secondary
        self.is_remote = bool(getattr(primary, "is_remote", False)
                              or getattr(secondary, "is_remote", False))
        self.disagreements: list[ReadDisagreement] = []
        self._lock = threading.Lock()

    def execute(self, operation) -> None:
        # Late imports: repro.core/validation import the driver package
        # indirectly; resolving the operation types at call time keeps
        # this module import-cycle free.
        from ..core.operation import ComplexRead, ShortRead, as_operation
        from ..validation.canonical import comparable, diff_results

        op = as_operation(operation)
        with self._lock:
            left = self.primary.execute(op).value
            right = self.secondary.execute(op).value
            if isinstance(op, (ComplexRead, ShortRead)):
                tag = "Q" if isinstance(op, ComplexRead) else "S"
                left_c = comparable(op.query_id, left)
                right_c = comparable(op.query_id, right)
                if left_c != right_c:
                    self.disagreements.append(ReadDisagreement(
                        f"{tag}{op.query_id}",
                        op.params if isinstance(op, ComplexRead)
                        else op.entity,
                        diff_results(left_c, right_c)))

    @property
    def agreed(self) -> bool:
        return not self.disagreements

    def close(self) -> None:
        _close_quietly(self.primary)
        _close_quietly(self.secondary)


class RecordingConnector:
    """Records (operation, T_GC at execution) for dependency tests."""

    supports_reads = False

    def __init__(self, gds=None, delegate=None) -> None:
        self.gds = gds
        self.delegate = delegate
        self.is_remote = bool(getattr(delegate, "is_remote", False))
        self.records: list[tuple[UpdateOperation, int]] = []
        self._lock = threading.Lock()

    def execute(self, operation: UpdateOperation) -> None:
        gct = self.gds.global_completion_time if self.gds is not None else 0
        with self._lock:
            self.records.append((operation, gct))
        if self.delegate is not None:
            self.delegate.execute(operation)

    def close(self) -> None:
        _close_quietly(self.delegate)
