"""Dependency tracking services (paper Figure 7).

The driver "tracks the latest point in time behind which every operation
has completed; every operation (i.e., dependency) with T_DUE lower or
equal to this time is guaranteed to have completed execution" — the Global
Completion Time (T_GC).

Each stream owns a :class:`LocalDependencyService` holding

* **IT** (Initiated Times): timestamps of dependency operations that have
  started but not yet finished.  "Timestamps must be added to IT in
  monotonically increasing order but can be removed in any order."
* **CT** (Completed Times): timestamps of completed dependency operations;
* **T_LI** (Local Initiation Time): the lowest timestamp in IT, or — when
  IT is empty — the stream's *watermark*: a promise that nothing with a
  lower timestamp will ever be initiated.  ("The rationale for exposing
  T_LI is that, as values added to IT are monotonically increasing, T_LI
  communicates that no lower value will be submitted in the future,
  enabling GDS to advance T_GC as soon as possible.")
* **T_LC** (Local Completion Time): the point behind which every
  dependency operation of this stream has completed.

Streams advance their watermark as they walk their (due-time-ordered)
operation list, so T_LI progresses even through stretches without
dependency operations — without this, a stream with no Dependencies would
pin T_GC forever.  :meth:`LocalDependencyService.finish` releases a
drained stream entirely.

The :class:`GlobalDependencyService` aggregates members into **T_GI** (min
of T_LI) and **T_GC** (min of T_LC).  It exposes the same two properties
itself, making it *composable*: a GDS can track other GDS instances "in
the same manner as it tracks LDS instances, enabling dependency tracking
in a hierarchical/distributed setting" — property-tested in the suite.
"""

from __future__ import annotations

import heapq
import threading
import time as _time

from ..errors import DriverError

#: Watermark value of a finished stream (beyond any simulation time).
STREAM_FINISHED = 2 ** 62


class LocalDependencyService:
    """Per-stream IT/CT tracking with monotone T_LI / T_LC."""

    def __init__(self, initial_time: int = 0) -> None:
        self._lock = threading.Lock()
        #: Min-heap of initiated-but-incomplete times (lazy deletion).
        self._initiated: list[int] = []
        self._removed: dict[int, int] = {}
        self._completed_count = 0
        self._last_completed = 0
        self._last_initiated = initial_time
        self._watermark = initial_time

    # -- mutation ----------------------------------------------------------

    def advance_watermark(self, due_time: int) -> None:
        """Promise that no operation below ``due_time`` will be initiated.

        Called by the executing stream for *every* operation (the stream
        is ordered by due time), letting T_LI/T_LC progress through
        non-dependency stretches.
        """
        with self._lock:
            if due_time > self._watermark:
                self._watermark = due_time

    def initiate(self, due_time: int) -> None:
        """Add a dependency operation's T_DUE to IT (monotone order)."""
        with self._lock:
            if due_time < self._last_initiated:
                raise DriverError(
                    f"IT additions must be monotone: {due_time} after "
                    f"{self._last_initiated}")
            if due_time < self._watermark:
                raise DriverError(
                    f"initiation at {due_time} below watermark "
                    f"{self._watermark}")
            self._last_initiated = due_time
            heapq.heappush(self._initiated, due_time)

    def complete(self, due_time: int) -> None:
        """Move a timestamp from IT to CT (removal in any order)."""
        with self._lock:
            self._removed[due_time] = self._removed.get(due_time, 0) + 1
            self._completed_count += 1
            self._last_completed = max(self._last_completed, due_time)
            self._prune()

    def finish(self) -> None:
        """Mark the stream drained: T_LI/T_LC jump beyond any time."""
        with self._lock:
            self._watermark = STREAM_FINISHED

    # -- views --------------------------------------------------------------

    @property
    def local_initiation_time(self) -> int:
        """T_LI: min(IT), or the watermark when IT is empty."""
        with self._lock:
            self._prune()
            if self._initiated:
                return self._initiated[0]
            return self._watermark

    @property
    def local_completion_time(self) -> int:
        """T_LC: every dependency op at or below this time has completed."""
        with self._lock:
            self._prune()
            if self._initiated:
                return self._initiated[0] - 1
            return self._watermark - 1 \
                if self._watermark < STREAM_FINISHED else STREAM_FINISHED

    @property
    def completed_count(self) -> int:
        """Number of completed dependency operations (CT cardinality)."""
        with self._lock:
            return self._completed_count

    # -- internals ------------------------------------------------------------

    def _prune(self) -> None:
        """Drop lazily deleted heads of the initiated heap (lock held)."""
        while self._initiated:
            head = self._initiated[0]
            pending = self._removed.get(head, 0)
            if not pending:
                break
            heapq.heappop(self._initiated)
            if pending == 1:
                del self._removed[head]
            else:
                self._removed[head] = pending - 1


class GlobalDependencyService:
    """Aggregates LDS (or nested GDS) instances into T_GI / T_GC."""

    #: Poll interval for blocking waits.  A condition-variable design was
    #: measured to serialize the partitions (every watermark advance had
    #: to take a global lock to notify); 1 ms polling keeps the hot path
    #: lock-free at a negligible wait-latency cost.
    POLL_SECONDS = 0.001

    def __init__(self) -> None:
        self._members: list = []

    def register(self, member) -> None:
        """Track a member exposing the two local time properties."""
        self._members.append(member)

    @property
    def global_initiation_time(self) -> int:
        """T_GI: the lowest T_LI across members."""
        members = self._members
        if not members:
            return 0
        return min(m.local_initiation_time for m in members)

    @property
    def global_completion_time(self) -> int:
        """T_GC: behind this, every member's dependency ops completed."""
        members = self._members
        if not members:
            return 0
        return min(m.local_completion_time for m in members)

    # -- blocking wait used by the scheduler ---------------------------------

    def wait_until(self, dep_time: int, timeout: float = 30.0) -> bool:
        """Block until T_GC ≥ ``dep_time``; False on timeout (deadlock)."""
        if self.global_completion_time >= dep_time:
            return True
        deadline = _time.monotonic() + timeout
        while self.global_completion_time < dep_time:
            if _time.monotonic() >= deadline:
                return False
            _time.sleep(self.POLL_SECONDS)
        return True

    # -- composability: a GDS can itself be tracked by another GDS ----------

    @property
    def local_initiation_time(self) -> int:
        return self.global_initiation_time

    @property
    def local_completion_time(self) -> int:
        return self.global_completion_time
