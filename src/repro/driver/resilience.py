"""The driver's resilience policy: retries, timeouts, degradation.

Real LDBC driver runs treat deadlock-victim aborts and slow operations
as expected events — the driver must "sustain the configured
acceleration" against a SUT that aborts, stalls or times out.  This
module packages that behavior as an explicit, testable policy:

* **classification** — only :class:`~repro.errors.TransientError`
  (plus the conventional OS-level ``ConnectionError``/``TimeoutError``)
  is retried; anything else — including
  :class:`~repro.errors.FatalSUTError` — surfaces immediately;
* **backoff** — exponential with *decorrelated jitter* (AWS
  architecture-blog variant): each sleep is drawn uniformly from
  ``[base, 3 * previous]``, capped, from a seeded
  :class:`~repro.rng.RandomStream` so runs are reproducible;
* **timeouts** — a per-attempt watchdog (the call runs on a helper
  thread that is abandoned on expiry) and a per-operation wall-clock
  budget spanning all attempts;
* **degradation** — when retries are exhausted, ``FAIL_FAST`` re-raises
  (today's behavior) while ``DEGRADE`` records the operation as
  *skipped* so the run — and dependency tracking — keeps going;
* a per-partition **circuit breaker**: a failure budget bounding how
  many operations one partition may skip before the run is declared
  unhealthy and aborted anyway.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from ..errors import (
    DriverError,
    FatalSUTError,
    OperationTimeoutError,
    TransientError,
)
from ..rng import RandomStream

__all__ = [
    "AbandonedAttemptError",
    "CircuitBreaker",
    "CircuitOpenError",
    "DegradePolicy",
    "RetryPolicy",
    "attempt_abandoned",
    "call_with_watchdog",
    "default_is_transient",
    "raise_if_abandoned",
]


def default_is_transient(exc: BaseException) -> bool:
    """Is this failure worth retrying?

    :class:`~repro.errors.FatalSUTError` wins over everything; the
    repo's own transients carry the :class:`TransientError` marker;
    ``ConnectionError`` / ``TimeoutError`` are the conventional shapes a
    real driver sees from a networked SUT's deadlock aborts and stalls.
    """
    if isinstance(exc, FatalSUTError):
        return False
    return isinstance(exc, (TransientError, ConnectionError, TimeoutError))


class DegradePolicy(Enum):
    """What to do when an operation exhausts its retry budget."""

    #: Re-raise the final exception, failing the partition (and run).
    FAIL_FAST = "fail-fast"
    #: Record the operation as skipped and keep the partition running;
    #: dependency tracking still advances past the dead operation.
    DEGRADE = "degrade"


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler executes one operation against the connector."""

    #: Retries after the first attempt (0 = single attempt).
    max_retries: int = 0
    #: Lower bound (seconds) of every backoff sleep.
    base_backoff: float = 0.01
    #: Upper cap (seconds) on any single backoff sleep.
    max_backoff: float = 1.0
    #: Wall-clock budget per attempt (watchdog-enforced); None = direct
    #: in-thread call with no timeout.
    attempt_timeout: float | None = None
    #: Wall-clock budget for the operation across all attempts;
    #: None = unbounded.
    op_timeout: float | None = None
    #: Behavior on retry exhaustion (or an expired op budget).
    on_exhaustion: DegradePolicy = DegradePolicy.FAIL_FAST
    #: Max operations one partition may skip under DEGRADE before its
    #: circuit breaker trips and the partition fails anyway.
    failure_budget: int = 25
    #: Override transient classification (tests / chaos canary); None
    #: uses :func:`default_is_transient`.
    classify: Callable[[BaseException], bool] | None = None

    def is_transient(self, exc: BaseException) -> bool:
        if self.classify is not None:
            return bool(self.classify(exc))
        return default_is_transient(exc)

    def next_backoff(self, previous: float, stream: RandomStream) -> float:
        """Decorrelated jitter: uniform in ``[base, 3*previous]``, capped."""
        low = self.base_backoff
        high = max(low, 3.0 * previous)
        sleep = low + (high - low) * stream.random()
        return min(self.max_backoff, sleep)


class CircuitOpenError(DriverError):
    """A partition exceeded its failure budget under DEGRADE."""


class CircuitBreaker:
    """Per-partition failure budget (thread-safe).

    Counts operations the partition gave up on; once the budget is
    exceeded the breaker *trips*: graceful degradation is meant to ride
    out scattered faults, not to silently discard an arbitrarily large
    slice of the workload.
    """

    def __init__(self, partition: int, budget: int) -> None:
        self.partition = partition
        self.budget = budget
        self._lock = threading.Lock()
        self._skips = 0
        self.tripped = False

    @property
    def skips(self) -> int:
        with self._lock:
            return self._skips

    def record_skip(self) -> bool:
        """Count one skipped operation; True when this one trips it."""
        with self._lock:
            self._skips += 1
            if not self.tripped and self._skips > self.budget:
                self.tripped = True
                return True
            return False


class AbandonedAttemptError(TransientError):
    """An attempt noticed (post-hoc) that its watchdog gave up on it.

    Raised *inside the abandoned helper thread* by connectors that call
    :func:`raise_if_abandoned` after a delay — the exception is
    discarded with the thread, but crucially the connector never
    reaches its delegation/side-effect step, so the retry the caller
    already started cannot be double-applied behind its back.
    """


#: Per-thread cancellation flag installed by :func:`call_with_watchdog`
#: on its helper thread and set when the watchdog expires.
_attempt_state = threading.local()


def attempt_abandoned() -> bool:
    """Has the watchdog abandoned the attempt running on this thread?

    Always False outside a watchdog-supervised attempt.
    """
    cancel = getattr(_attempt_state, "cancel", None)
    return cancel is not None and cancel.is_set()


def raise_if_abandoned() -> None:
    """Abort a side-effecting step the caller has already given up on.

    Connectors call this *after* any sleep/stall and *before*
    delegating to the SUT (or writing to the wire).  Without the check,
    an attempt abandoned mid-delay would still apply its update once it
    wakes — and so would the retry already issued by the scheduler:
    the classic double-apply.  The race window is the whole injected or
    network delay, not a scheduler tick, which is why the PR-4 fault
    injector's latency path and the remote connector's send path are
    both guarded.
    """
    if attempt_abandoned():
        raise AbandonedAttemptError(
            "attempt abandoned by its watchdog; refusing to proceed "
            "to the side-effecting step")


def call_with_watchdog(fn: Callable[[], object], timeout: float):
    """Run ``fn`` with a wall-clock deadline; raise on expiry.

    The call executes on a daemon helper thread joined with ``timeout``;
    on expiry the helper is *abandoned* (Python threads cannot be
    killed) and :class:`~repro.errors.OperationTimeoutError` is raised.
    Abandonment is *observable* from inside the helper: a per-thread
    cancellation flag is set before the timeout surfaces, and
    connectors consult it via :func:`raise_if_abandoned` before any
    side-effecting step, so hung or delayed calls stay side-effect
    free.  Telemetry spans opened inside ``fn`` land on the helper
    thread's context, detached from the partition's span tree.
    """
    box: list[tuple[str, object]] = []
    cancel = threading.Event()

    def runner() -> None:
        _attempt_state.cancel = cancel
        try:
            box.append(("ok", fn()))
        except BaseException as exc:  # re-raised on the caller thread
            box.append(("err", exc))
        finally:
            _attempt_state.cancel = None

    thread = threading.Thread(target=runner, daemon=True,
                              name="driver-watchdog-call")
    thread.start()
    thread.join(timeout)
    if not box:
        # Flag first, then surface: by the time the retry loop sees the
        # timeout, the abandoned helper is already cancellable.
        cancel.set()
        raise OperationTimeoutError(
            f"operation attempt exceeded {timeout:.3f}s watchdog budget")
    kind, value = box[0]
    if kind == "err":
        raise value  # type: ignore[misc]
    return value
