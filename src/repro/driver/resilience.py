"""The driver's resilience policy: retries, timeouts, degradation.

Real LDBC driver runs treat deadlock-victim aborts and slow operations
as expected events — the driver must "sustain the configured
acceleration" against a SUT that aborts, stalls or times out.  This
module packages that behavior as an explicit, testable policy:

* **classification** — only :class:`~repro.errors.TransientError`
  (plus the conventional OS-level ``ConnectionError``/``TimeoutError``)
  is retried; anything else — including
  :class:`~repro.errors.FatalSUTError` — surfaces immediately;
* **backoff** — exponential with *decorrelated jitter* (AWS
  architecture-blog variant): each sleep is drawn uniformly from
  ``[base, 3 * previous]``, capped, from a seeded
  :class:`~repro.rng.RandomStream` so runs are reproducible;
* **timeouts** — a per-attempt watchdog (the call runs on a helper
  thread that is abandoned on expiry) and a per-operation wall-clock
  budget spanning all attempts;
* **degradation** — when retries are exhausted, ``FAIL_FAST`` re-raises
  (today's behavior) while ``DEGRADE`` records the operation as
  *skipped* so the run — and dependency tracking — keeps going;
* a per-partition **circuit breaker**: a failure budget bounding how
  many operations one partition may skip before the run is declared
  unhealthy and aborted anyway.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from ..errors import (
    DriverError,
    FatalSUTError,
    OperationTimeoutError,
    TransientError,
)
from ..rng import RandomStream

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DegradePolicy",
    "RetryPolicy",
    "call_with_watchdog",
    "default_is_transient",
]


def default_is_transient(exc: BaseException) -> bool:
    """Is this failure worth retrying?

    :class:`~repro.errors.FatalSUTError` wins over everything; the
    repo's own transients carry the :class:`TransientError` marker;
    ``ConnectionError`` / ``TimeoutError`` are the conventional shapes a
    real driver sees from a networked SUT's deadlock aborts and stalls.
    """
    if isinstance(exc, FatalSUTError):
        return False
    return isinstance(exc, (TransientError, ConnectionError, TimeoutError))


class DegradePolicy(Enum):
    """What to do when an operation exhausts its retry budget."""

    #: Re-raise the final exception, failing the partition (and run).
    FAIL_FAST = "fail-fast"
    #: Record the operation as skipped and keep the partition running;
    #: dependency tracking still advances past the dead operation.
    DEGRADE = "degrade"


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler executes one operation against the connector."""

    #: Retries after the first attempt (0 = single attempt).
    max_retries: int = 0
    #: Lower bound (seconds) of every backoff sleep.
    base_backoff: float = 0.01
    #: Upper cap (seconds) on any single backoff sleep.
    max_backoff: float = 1.0
    #: Wall-clock budget per attempt (watchdog-enforced); None = direct
    #: in-thread call with no timeout.
    attempt_timeout: float | None = None
    #: Wall-clock budget for the operation across all attempts;
    #: None = unbounded.
    op_timeout: float | None = None
    #: Behavior on retry exhaustion (or an expired op budget).
    on_exhaustion: DegradePolicy = DegradePolicy.FAIL_FAST
    #: Max operations one partition may skip under DEGRADE before its
    #: circuit breaker trips and the partition fails anyway.
    failure_budget: int = 25
    #: Override transient classification (tests / chaos canary); None
    #: uses :func:`default_is_transient`.
    classify: Callable[[BaseException], bool] | None = None

    def is_transient(self, exc: BaseException) -> bool:
        if self.classify is not None:
            return bool(self.classify(exc))
        return default_is_transient(exc)

    def next_backoff(self, previous: float, stream: RandomStream) -> float:
        """Decorrelated jitter: uniform in ``[base, 3*previous]``, capped."""
        low = self.base_backoff
        high = max(low, 3.0 * previous)
        sleep = low + (high - low) * stream.random()
        return min(self.max_backoff, sleep)


class CircuitOpenError(DriverError):
    """A partition exceeded its failure budget under DEGRADE."""


class CircuitBreaker:
    """Per-partition failure budget (thread-safe).

    Counts operations the partition gave up on; once the budget is
    exceeded the breaker *trips*: graceful degradation is meant to ride
    out scattered faults, not to silently discard an arbitrarily large
    slice of the workload.
    """

    def __init__(self, partition: int, budget: int) -> None:
        self.partition = partition
        self.budget = budget
        self._lock = threading.Lock()
        self._skips = 0
        self.tripped = False

    @property
    def skips(self) -> int:
        with self._lock:
            return self._skips

    def record_skip(self) -> bool:
        """Count one skipped operation; True when this one trips it."""
        with self._lock:
            self._skips += 1
            if not self.tripped and self._skips > self.budget:
                self.tripped = True
                return True
            return False


def call_with_watchdog(fn: Callable[[], object], timeout: float):
    """Run ``fn`` with a wall-clock deadline; raise on expiry.

    The call executes on a daemon helper thread joined with ``timeout``;
    on expiry the helper is *abandoned* (Python threads cannot be
    killed) and :class:`~repro.errors.OperationTimeoutError` is raised.
    Connectors driven under a watchdog must therefore make hung calls
    side-effect free (the fault injector's hangs never mutate the SUT).
    Telemetry spans opened inside ``fn`` land on the helper thread's
    context, detached from the partition's span tree.
    """
    box: list[tuple[str, object]] = []

    def runner() -> None:
        try:
            box.append(("ok", fn()))
        except BaseException as exc:  # re-raised on the caller thread
            box.append(("err", exc))

    thread = threading.Thread(target=runner, daemon=True,
                              name="driver-watchdog-call")
    thread.start()
    thread.join(timeout)
    if not box:
        raise OperationTimeoutError(
            f"operation attempt exceeded {timeout:.3f}s watchdog budget")
    kind, value = box[0]
    if kind == "err":
        raise value  # type: ignore[misc]
    return value
