"""SNB-Interactive query implementations against the graph store.

Three query classes (paper §4):

* :mod:`repro.queries.complex_reads` — the 14 complex read-only queries
  (one module per query, ``q1`` … ``q14``), matching the appendix
  definitions;
* :mod:`repro.queries.short_reads` — the 7 simple read-only lookups
  (profile/post views and their satellites);
* :mod:`repro.queries.updates` — the 8 transactional update types, driven
  by :class:`~repro.datagen.update_stream.UpdateOperation` payloads.

All queries are implemented "Sparksee style": programs against the store's
native traversal API, inside a transaction, so they observe a consistent
snapshot while the update stream runs concurrently.
:mod:`repro.queries.registry` exposes a uniform callable registry used by
the workload mix and the driver.
"""

from .registry import (
    COMPLEX_QUERIES,
    SHORT_QUERIES,
    UPDATE_EXECUTORS,
    QueryRegistryEntry,
    complex_query,
    short_query,
)

__all__ = [
    "COMPLEX_QUERIES",
    "SHORT_QUERIES",
    "UPDATE_EXECUTORS",
    "QueryRegistryEntry",
    "complex_query",
    "short_query",
]
