"""Uniform registry over all SNB-Interactive queries.

The workload mix (:mod:`repro.workload`) and the benchmark harness need to
treat queries generically: look them up by number, know their parameter
shape, and know their complexity class (how many friendship hops they
touch — the paper scales complex-read frequencies by ``O(D^h log n)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import WorkloadError
from . import short_reads
from .complex_reads import (
    q1,
    q2,
    q3,
    q4,
    q5,
    q6,
    q7,
    q8,
    q9,
    q10,
    q11,
    q12,
    q13,
    q14,
)
from .updates import execute_update, executor_for


@dataclass(frozen=True)
class QueryRegistryEntry:
    """Metadata + executor of one complex read query."""

    query_id: int
    name: str
    run: Callable
    params_type: type
    #: Friendship hops the query touches (1, 2 or 3) — determines its
    #: ``O(D^hops · log n)`` complexity class (paper §4 "Scaling the
    #: workload").
    hops: int


COMPLEX_QUERIES: dict[int, QueryRegistryEntry] = {
    1: QueryRegistryEntry(1, "friends-with-name", q1.run, q1.Q1Params, 3),
    2: QueryRegistryEntry(2, "recent-messages", q2.run, q2.Q2Params, 1),
    3: QueryRegistryEntry(3, "friends-that-traveled", q3.run,
                          q3.Q3Params, 2),
    4: QueryRegistryEntry(4, "new-topics", q4.run, q4.Q4Params, 1),
    5: QueryRegistryEntry(5, "new-groups", q5.run, q5.Q5Params, 2),
    6: QueryRegistryEntry(6, "tag-cooccurrence", q6.run, q6.Q6Params, 2),
    7: QueryRegistryEntry(7, "recent-likes", q7.run, q7.Q7Params, 1),
    8: QueryRegistryEntry(8, "recent-replies", q8.run, q8.Q8Params, 1),
    9: QueryRegistryEntry(9, "latest-posts", q9.run, q9.Q9Params, 2),
    10: QueryRegistryEntry(10, "friend-recommendation", q10.run,
                           q10.Q10Params, 2),
    11: QueryRegistryEntry(11, "job-referral", q11.run, q11.Q11Params, 2),
    12: QueryRegistryEntry(12, "expert-search", q12.run, q12.Q12Params, 1),
    13: QueryRegistryEntry(13, "shortest-path", q13.run, q13.Q13Params, 3),
    14: QueryRegistryEntry(14, "weighted-paths", q14.run,
                           q14.Q14Params, 3),
}


@dataclass(frozen=True)
class ShortQueryEntry:
    """Metadata + executor of one short read query."""

    query_id: int
    name: str
    run: Callable
    #: "person" or "message" — which entity kind the lookup takes.
    input_kind: str


SHORT_QUERIES: dict[int, ShortQueryEntry] = {
    1: ShortQueryEntry(1, "person-profile", short_reads.s1_person_profile,
                       "person"),
    2: ShortQueryEntry(2, "person-recent-messages",
                       short_reads.s2_recent_messages, "person"),
    3: ShortQueryEntry(3, "person-friends", short_reads.s3_friends,
                       "person"),
    4: ShortQueryEntry(4, "message-content",
                       short_reads.s4_message_content, "message"),
    5: ShortQueryEntry(5, "message-creator",
                       short_reads.s5_message_creator, "message"),
    6: ShortQueryEntry(6, "message-forum", short_reads.s6_message_forum,
                       "message"),
    7: ShortQueryEntry(7, "message-replies",
                       short_reads.s7_message_replies, "message"),
}

#: Convenience re-exports for driver wiring.
UPDATE_EXECUTORS = {"execute": execute_update, "for_kind": executor_for}


def complex_query(query_id: int) -> QueryRegistryEntry:
    """Look up a complex query by its 1-14 number."""
    entry = COMPLEX_QUERIES.get(query_id)
    if entry is None:
        raise WorkloadError(f"unknown complex query Q{query_id}")
    return entry


def short_query(query_id: int) -> ShortQueryEntry:
    """Look up a short read by its 1-7 number."""
    entry = SHORT_QUERIES.get(query_id)
    if entry is None:
        raise WorkloadError(f"unknown short query S{query_id}")
    return entry
