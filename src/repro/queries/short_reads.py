"""The 7 simple read-only queries (paper §4, Table 7).

"The bulk of the user queries are simpler and perform lookups: (i) Profile
view ... (ii) Post view ..."  The SNB specification refines these views
into seven short reads, S1-S7; profile lookups provide inputs for post
lookups and vice versa, which the workload's random walk
(:mod:`repro.workload.random_walk`) exploits.

All are ``O(log n)`` point lookups plus constant-size neighborhoods.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ids import EntityKind, is_kind
from ..store.graph import Direction, Transaction
from ..store.loader import EdgeLabel, VertexLabel
from .helpers import creator_of, message_label, message_props, replies_of


@dataclass(frozen=True)
class S1Result:
    """S1 — person profile."""

    first_name: str
    last_name: str
    birthday: int
    location_ip: str
    browser_used: str
    city_id: int
    gender: str
    creation_date: int


def s1_person_profile(txn: Transaction, person_id: int) -> S1Result | None:
    """S1: basic profile of a person."""
    props = txn.vertex(VertexLabel.PERSON, person_id)
    if props is None:
        return None
    return S1Result(
        first_name=props["first_name"],
        last_name=props["last_name"],
        birthday=props["birthday"],
        location_ip=props["location_ip"],
        browser_used=props["browser_used"],
        city_id=props["city_id"],
        gender=props["gender"],
        creation_date=props["creation_date"],
    )


@dataclass(frozen=True)
class S2Result:
    """S2 — one recent message with its discussion root."""

    message_id: int
    content: str
    creation_date: int
    root_post_id: int
    root_author_id: int
    root_author_first_name: str
    root_author_last_name: str


def s2_recent_messages(txn: Transaction, person_id: int,
                       limit: int = 10) -> list[S2Result]:
    """S2: the person's 10 most recent messages with root-post info."""
    candidates = []
    for message_id, __ in txn.neighbors(EdgeLabel.HAS_CREATOR, person_id,
                                        Direction.IN):
        props = message_props(txn, message_id)
        if props is not None:
            candidates.append((-props["creation_date"], message_id, props))
    candidates.sort(key=lambda row: row[:2])
    results = []
    for neg_date, message_id, props in candidates[:limit]:
        if is_kind(message_id, EntityKind.POST):
            root_id = message_id
        else:
            root_id = props["root_post_id"]
        root_author = creator_of(txn, root_id)
        author = txn.require_vertex(VertexLabel.PERSON, root_author)
        results.append(S2Result(
            message_id=message_id,
            content=props["content"] or (props.get("image_file") or ""),
            creation_date=-neg_date,
            root_post_id=root_id,
            root_author_id=root_author,
            root_author_first_name=author["first_name"],
            root_author_last_name=author["last_name"],
        ))
    return results


@dataclass(frozen=True)
class S3Result:
    """S3 — one friend with the friendship date."""

    person_id: int
    first_name: str
    last_name: str
    friendship_date: int


def s3_friends(txn: Transaction, person_id: int) -> list[S3Result]:
    """S3: all friends, newest friendships first."""
    rows = []
    for friend_id, props in txn.neighbors(EdgeLabel.KNOWS, person_id):
        person = txn.require_vertex(VertexLabel.PERSON, friend_id)
        rows.append(S3Result(friend_id, person["first_name"],
                             person["last_name"], props["creation_date"]))
    rows.sort(key=lambda r: (-r.friendship_date, r.person_id))
    return rows


@dataclass(frozen=True)
class S4Result:
    """S4 — message content."""

    creation_date: int
    content: str


def s4_message_content(txn: Transaction, message_id: int) -> S4Result | None:
    """S4: creation date and content of a message."""
    props = message_props(txn, message_id)
    if props is None:
        return None
    return S4Result(props["creation_date"],
                    props["content"] or (props.get("image_file") or ""))


@dataclass(frozen=True)
class S5Result:
    """S5 — message creator."""

    person_id: int
    first_name: str
    last_name: str


def s5_message_creator(txn: Transaction, message_id: int) -> S5Result | None:
    """S5: the author of a message."""
    if txn.vertex(message_label(message_id), message_id) is None:
        return None
    author_id = creator_of(txn, message_id)
    person = txn.require_vertex(VertexLabel.PERSON, author_id)
    return S5Result(author_id, person["first_name"], person["last_name"])


@dataclass(frozen=True)
class S6Result:
    """S6 — forum of a message."""

    forum_id: int
    forum_title: str
    moderator_id: int
    moderator_first_name: str
    moderator_last_name: str


def s6_message_forum(txn: Transaction, message_id: int) -> S6Result | None:
    """S6: the forum containing the message's discussion."""
    props = message_props(txn, message_id)
    if props is None:
        return None
    if is_kind(message_id, EntityKind.POST):
        forum_id = props["forum_id"]
    else:
        root = txn.vertex(VertexLabel.POST, props["root_post_id"])
        if root is None:
            return None
        forum_id = root["forum_id"]
    forum = txn.require_vertex(VertexLabel.FORUM, forum_id)
    moderator = txn.require_vertex(VertexLabel.PERSON,
                                   forum["moderator_id"])
    return S6Result(forum_id, forum["title"], forum["moderator_id"],
                    moderator["first_name"], moderator["last_name"])


@dataclass(frozen=True)
class S7Result:
    """S7 — one reply with author and friendship flag."""

    comment_id: int
    content: str
    creation_date: int
    author_id: int
    author_first_name: str
    author_last_name: str
    #: Whether the reply author knows the original message's author.
    knows_original_author: bool


def s7_message_replies(txn: Transaction, message_id: int) -> list[S7Result]:
    """S7: direct replies to a message, newest first."""
    if txn.vertex(message_label(message_id), message_id) is None:
        return []
    original_author = creator_of(txn, message_id)
    author_friends = {other for other, __ in txn.neighbors(
        EdgeLabel.KNOWS, original_author)}
    rows = []
    for comment_id in replies_of(txn, message_id):
        comment = txn.require_vertex(VertexLabel.COMMENT, comment_id)
        author = txn.require_vertex(VertexLabel.PERSON,
                                    comment["author_id"])
        rows.append(S7Result(
            comment_id=comment_id,
            content=comment["content"],
            creation_date=comment["creation_date"],
            author_id=comment["author_id"],
            author_first_name=author["first_name"],
            author_last_name=author["last_name"],
            knows_original_author=comment["author_id"] in author_friends,
        ))
    rows.sort(key=lambda r: (-r.creation_date, r.author_id))
    return rows
