"""Q13 — Single shortest path.

"Given PersonX and PersonY, find the shortest path between them in the
subgraph induced by the Knows relationships.  Return the length of this
path."  Returns -1 if the persons are not connected.

Implemented as a bidirectional BFS — the classic optimization for
point-to-point shortest path in a small-diameter social graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...store.graph import Transaction
from ...store.loader import EdgeLabel

QUERY_ID = 13


@dataclass(frozen=True)
class Q13Params:
    """The two endpoints."""

    person_x_id: int
    person_y_id: int


@dataclass(frozen=True)
class Q13Result:
    """Shortest path length (-1 when unreachable)."""

    length: int


def run(txn: Transaction, params: Q13Params) -> list[Q13Result]:
    """Execute Q13: bidirectional BFS over *knows*."""
    source, target = params.person_x_id, params.person_y_id
    if source == target:
        return [Q13Result(0)]
    forward = {source: 0}
    backward = {target: 0}
    forward_frontier = [source]
    backward_frontier = [target]
    while forward_frontier and backward_frontier:
        # Expand the smaller frontier by one full level; only after the
        # level completes is the minimum crossing distance exact.
        if len(forward_frontier) <= len(backward_frontier):
            frontier, seen, other = forward_frontier, forward, backward
        else:
            frontier, seen, other = backward_frontier, backward, forward
        best: int | None = None
        next_frontier = []
        for person_id in frontier:
            for neighbor, __ in txn.neighbors(EdgeLabel.KNOWS, person_id):
                if neighbor in other:
                    candidate = seen[person_id] + 1 + other[neighbor]
                    if best is None or candidate < best:
                        best = candidate
                if neighbor not in seen:
                    seen[neighbor] = seen[person_id] + 1
                    next_frontier.append(neighbor)
        if best is not None:
            return [Q13Result(best)]
        frontier[:] = next_frontier
    return [Q13Result(-1)]
