"""Q1 — Extract description of friends with a given name.

"Given a person's firstName, return up to 20 people with the same first
name, sorted by increasing distance (max 3) from a given person, and for
people within the same distance sorted by last name.  Results should
include the list of workplaces and places of study."

Choke points: transitive expansion with early termination, index lookup
combined with traversal, multi-valued attribute retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...store.graph import Transaction
from ...store.loader import EdgeLabel, VertexLabel
from ..helpers import friends_within

QUERY_ID = 1
LIMIT = 20
MAX_DISTANCE = 3


@dataclass(frozen=True)
class Q1Params:
    """Query parameters: the start person and the first name to match."""

    person_id: int
    first_name: str


@dataclass(frozen=True)
class Q1Result:
    """One matching person with affiliation details."""

    person_id: int
    last_name: str
    distance: int
    birthday: int
    creation_date: int
    gender: str
    browser_used: str
    location_ip: str
    emails: tuple[str, ...]
    languages: tuple[str, ...]
    city_name: str
    universities: tuple[tuple[str, int, str], ...]
    companies: tuple[tuple[str, int, str], ...]


def run(txn: Transaction, params: Q1Params) -> list[Q1Result]:
    """Execute Q1: same-first-name persons by graph distance."""
    distances = friends_within(txn, params.person_id, MAX_DISTANCE)
    matches = []
    for person_id, distance in distances.items():
        props = txn.vertex(VertexLabel.PERSON, person_id)
        if props is None or props["first_name"] != params.first_name:
            continue
        matches.append((distance, props["last_name"], person_id, props))
    matches.sort(key=lambda row: row[:3])
    results = []
    for distance, last_name, person_id, props in matches[:LIMIT]:
        city = txn.require_vertex(VertexLabel.PLACE, props["city_id"])
        results.append(Q1Result(
            person_id=person_id,
            last_name=last_name,
            distance=distance,
            birthday=props["birthday"],
            creation_date=props["creation_date"],
            gender=props["gender"],
            browser_used=props["browser_used"],
            location_ip=props["location_ip"],
            emails=tuple(props["emails"]),
            languages=tuple(props["languages"]),
            city_name=city["name"],
            universities=_affiliations(txn, person_id, EdgeLabel.STUDY_AT,
                                       "class_year"),
            companies=_affiliations(txn, person_id, EdgeLabel.WORK_AT,
                                    "work_from"),
        ))
    return results


def _affiliations(txn: Transaction, person_id: int, edge_label: str,
                  year_prop: str) -> tuple[tuple[str, int, str], ...]:
    """(organisation name, year, place name) triples for a person."""
    rows = []
    for org_id, props in txn.neighbors(edge_label, person_id):
        org = txn.require_vertex(VertexLabel.ORGANISATION, org_id)
        place = txn.require_vertex(VertexLabel.PLACE, org["location_id"])
        rows.append((org["name"], props[year_prop], place["name"]))
    return tuple(sorted(rows))
