"""Q9 — Latest Posts.

"Find the most recent 20 posts and comments from all friends, or
friends-of-friends of Person, but created before a Date.  Return posts,
their creators and creation dates, sort descending by creation date."

The paper's Section 3 uses Q9 as the choke-point worked example (Fig. 4):
the intended plan expands the friendship circle with index-nested-loop
joins and switches to a hash join for the voluminous message join; picking
the wrong join type costs ~50%.  The relational engine's Q9 plan
(:mod:`repro.engine.snb_plans`) reproduces exactly that trade-off; this
module is the graph-API formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...store.graph import Transaction
from ...store.loader import VertexLabel
from ..helpers import is_post, message_props, messages_of, two_hop_circle

QUERY_ID = 9
LIMIT = 20


@dataclass(frozen=True)
class Q9Params:
    """Start person and exclusive upper bound on message creation date."""

    person_id: int
    max_date: int


@dataclass(frozen=True)
class Q9Result:
    """One message from the 2-hop circle."""

    person_id: int
    first_name: str
    last_name: str
    message_id: int
    content: str
    creation_date: int
    is_post: bool


def run(txn: Transaction, params: Q9Params) -> list[Q9Result]:
    """Execute Q9: newest 2-hop-circle messages before the date."""
    candidates: list[tuple[int, int, int]] = []  # (-date, id, author)
    for friend_id in two_hop_circle(txn, params.person_id):
        for message_id in messages_of(txn, friend_id):
            props = message_props(txn, message_id)
            if props is None or props["creation_date"] >= params.max_date:
                continue
            candidates.append((-props["creation_date"], message_id,
                               friend_id))
    candidates.sort()
    results = []
    for neg_date, message_id, author_id in candidates[:LIMIT]:
        person = txn.require_vertex(VertexLabel.PERSON, author_id)
        props = message_props(txn, message_id)
        results.append(Q9Result(
            person_id=author_id,
            first_name=person["first_name"],
            last_name=person["last_name"],
            message_id=message_id,
            content=props["content"] or (props.get("image_file") or ""),
            creation_date=-neg_date,
            is_post=is_post(message_id),
        ))
    return results
