"""Q2 — Find the newest 20 posts and comments from your friends.

"Given a start Person, find (most recent) Posts and Comments from all of
that Person's friends, that were created before (and including) a given
Date.  Return the top 20 Posts/Comments, and the Person that created each
of them.  Sort results descending by creation date, and then ascending by
Post identifier."

This is the running example of the paper's parameter-curation section
(Fig. 6): the intermediate result sizes are |friends| and |their posts|.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...store.graph import Transaction
from ..helpers import friends_of, is_post, message_props, messages_of

QUERY_ID = 2
LIMIT = 20


@dataclass(frozen=True)
class Q2Params:
    """Start person and inclusive upper bound on message creation date."""

    person_id: int
    max_date: int


@dataclass(frozen=True)
class Q2Result:
    """One message with its creator."""

    person_id: int
    first_name: str
    last_name: str
    message_id: int
    content: str
    creation_date: int
    is_post: bool


def run(txn: Transaction, params: Q2Params) -> list[Q2Result]:
    """Execute Q2: newest friend messages up to the date."""
    from ...store.loader import VertexLabel

    candidates: list[tuple[int, int, int]] = []  # (-date, id, friend)
    for friend_id in friends_of(txn, params.person_id):
        for message_id in messages_of(txn, friend_id):
            props = message_props(txn, message_id)
            if props is None or props["creation_date"] > params.max_date:
                continue
            candidates.append((-props["creation_date"], message_id,
                               friend_id))
    candidates.sort()
    results = []
    for neg_date, message_id, friend_id in candidates[:LIMIT]:
        person = txn.require_vertex(VertexLabel.PERSON, friend_id)
        props = message_props(txn, message_id)
        results.append(Q2Result(
            person_id=friend_id,
            first_name=person["first_name"],
            last_name=person["last_name"],
            message_id=message_id,
            content=props["content"] or (props.get("image_file") or ""),
            creation_date=-neg_date,
            is_post=is_post(message_id),
        ))
    return results
