"""Q6 — Tag co-occurrence.

"Given a start Person and some Tag, find the other Tags that occur
together with this Tag on Posts that were created by Person's friends and
friends of friends.  Return top 10 Tags, sorted descending by the count of
Posts that were created by these Persons, which contain both this Tag and
the given Tag."
"""

from __future__ import annotations

from dataclasses import dataclass

from ...ids import EntityKind, is_kind
from ...store.graph import Transaction
from ...store.loader import VertexLabel
from ..helpers import messages_of, tags_of, two_hop_circle

QUERY_ID = 6
LIMIT = 10


@dataclass(frozen=True)
class Q6Params:
    """Start person and the anchor tag."""

    person_id: int
    tag_id: int


@dataclass(frozen=True)
class Q6Result:
    """A co-occurring tag with its joint post count."""

    tag_name: str
    post_count: int


def run(txn: Transaction, params: Q6Params) -> list[Q6Result]:
    """Execute Q6: co-occurrence counts over the 2-hop circle's posts."""
    co_counts: dict[int, int] = {}
    for friend_id in two_hop_circle(txn, params.person_id):
        for message_id in messages_of(txn, friend_id):
            if not is_kind(message_id, EntityKind.POST):
                continue
            tags = tags_of(txn, message_id)
            if params.tag_id not in tags:
                continue
            for tag_id in tags:
                if tag_id != params.tag_id:
                    co_counts[tag_id] = co_counts.get(tag_id, 0) + 1
    rows = []
    for tag_id, count in co_counts.items():
        tag = txn.require_vertex(VertexLabel.TAG, tag_id)
        rows.append(Q6Result(tag["name"], count))
    rows.sort(key=lambda r: (-r.post_count, r.tag_name))
    return rows[:LIMIT]
