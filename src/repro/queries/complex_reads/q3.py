"""Q3 — Friends within 2 steps that recently traveled to countries X and Y.

"Find top 20 friends and friends of friends of a given Person who have
made a post or a comment in the foreign CountryX and CountryY within a
specified period of DurationInDays after a startDate.  Sorted results
descending by total number of posts."

"Foreign" means the message's country differs from the friend's home
country — the travel correlation the generator plants (a small fraction of
messages are geo-tagged abroad).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...sim_time import MILLIS_PER_DAY
from ...store.graph import Transaction
from ...store.loader import VertexLabel
from ..helpers import message_props, messages_of, two_hop_circle

QUERY_ID = 3
LIMIT = 20


@dataclass(frozen=True)
class Q3Params:
    """Start person, the two countries, and the time window."""

    person_id: int
    country_x_id: int
    country_y_id: int
    start_date: int
    duration_days: int

    @property
    def end_date(self) -> int:
        return self.start_date + self.duration_days * MILLIS_PER_DAY


@dataclass(frozen=True)
class Q3Result:
    """A traveler with message counts per country."""

    person_id: int
    first_name: str
    last_name: str
    x_count: int
    y_count: int

    @property
    def total(self) -> int:
        return self.x_count + self.y_count


def run(txn: Transaction, params: Q3Params) -> list[Q3Result]:
    """Execute Q3: two-country travelers in the 2-hop circle."""
    rows = []
    for friend_id in two_hop_circle(txn, params.person_id):
        person = txn.require_vertex(VertexLabel.PERSON, friend_id)
        home = person["country_id"]
        if home in (params.country_x_id, params.country_y_id):
            continue  # those countries would not be foreign
        x_count = 0
        y_count = 0
        for message_id in messages_of(txn, friend_id):
            props = message_props(txn, message_id)
            if props is None:
                continue
            when = props["creation_date"]
            if not params.start_date <= when < params.end_date:
                continue
            country = props["country_id"]
            if country == params.country_x_id:
                x_count += 1
            elif country == params.country_y_id:
                y_count += 1
        if x_count > 0 and y_count > 0:
            rows.append(Q3Result(friend_id, person["first_name"],
                                 person["last_name"], x_count, y_count))
    rows.sort(key=lambda r: (-(r.x_count + r.y_count), r.person_id))
    return rows[:LIMIT]
