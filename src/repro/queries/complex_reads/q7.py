"""Q7 — Recent likes.

"For the specified Person get the most recent likes of any of the person's
posts, and the latency between the corresponding post and the like.  Flag
Likes from outside the direct connections.  Return top 20 Likes, ordered
descending by creation date of the like."

Per the SNB specification only each liker's most recent like counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...sim_time import MILLIS_PER_MINUTE
from ...store.graph import Direction, Transaction
from ...store.loader import EdgeLabel, VertexLabel
from ..helpers import friends_of, message_props, messages_of

QUERY_ID = 7
LIMIT = 20


@dataclass(frozen=True)
class Q7Params:
    """The person whose content's likes are retrieved."""

    person_id: int


@dataclass(frozen=True)
class Q7Result:
    """One liker with their most recent like of the person's content."""

    liker_id: int
    first_name: str
    last_name: str
    like_date: int
    message_id: int
    message_content: str
    latency_minutes: int
    is_outside_connections: bool


def run(txn: Transaction, params: Q7Params) -> list[Q7Result]:
    """Execute Q7: most recent like per liker, friendship flagged."""
    friends = friends_of(txn, params.person_id)
    #: liker id → (like date, message id)
    latest: dict[int, tuple[int, int]] = {}
    for message_id in messages_of(txn, params.person_id):
        for liker_id, props in txn.neighbors(EdgeLabel.LIKES, message_id,
                                             Direction.IN):
            entry = (props["creation_date"], message_id)
            if liker_id not in latest or entry > latest[liker_id]:
                latest[liker_id] = entry
    rows = []
    for liker_id, (like_date, message_id) in latest.items():
        person = txn.require_vertex(VertexLabel.PERSON, liker_id)
        message = message_props(txn, message_id)
        latency = (like_date - message["creation_date"]) \
            // MILLIS_PER_MINUTE
        rows.append(Q7Result(
            liker_id=liker_id,
            first_name=person["first_name"],
            last_name=person["last_name"],
            like_date=like_date,
            message_id=message_id,
            message_content=message["content"]
            or (message.get("image_file") or ""),
            latency_minutes=latency,
            is_outside_connections=liker_id not in friends,
        ))
    rows.sort(key=lambda r: (-r.like_date, r.liker_id))
    return rows[:LIMIT]
