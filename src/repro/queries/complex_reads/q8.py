"""Q8 — Most recent replies.

"This query retrieves the 20 most recent reply comments to all the posts
and comments of Person, ordered descending by creation date."

The cheapest complex query (frequency 13 in Table 4): one hop to the
person's messages and one hop to their direct replies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...store.graph import Transaction
from ...store.loader import VertexLabel
from ..helpers import messages_of, replies_of

QUERY_ID = 8
LIMIT = 20


@dataclass(frozen=True)
class Q8Params:
    """The person whose content's replies are retrieved."""

    person_id: int


@dataclass(frozen=True)
class Q8Result:
    """One reply comment with its author."""

    comment_id: int
    creation_date: int
    content: str
    author_id: int
    first_name: str
    last_name: str


def run(txn: Transaction, params: Q8Params) -> list[Q8Result]:
    """Execute Q8: newest direct replies to the person's messages."""
    candidates: list[tuple[int, int]] = []  # (-date, comment id)
    for message_id in messages_of(txn, params.person_id):
        for comment_id in replies_of(txn, message_id):
            comment = txn.require_vertex(VertexLabel.COMMENT, comment_id)
            candidates.append((-comment["creation_date"], comment_id))
    candidates.sort()
    results = []
    for neg_date, comment_id in candidates[:LIMIT]:
        comment = txn.require_vertex(VertexLabel.COMMENT, comment_id)
        author = txn.require_vertex(VertexLabel.PERSON,
                                    comment["author_id"])
        results.append(Q8Result(
            comment_id=comment_id,
            creation_date=-neg_date,
            content=comment["content"],
            author_id=comment["author_id"],
            first_name=author["first_name"],
            last_name=author["last_name"],
        ))
    return results
