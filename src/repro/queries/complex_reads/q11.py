"""Q11 — Job referral.

"Find top 10 friends of the specified Person, or a friend of her friend
(excluding the specified person), who has long worked in a company in a
specified Country.  Sort ascending by start date, and then ascending by
person identifier."
"""

from __future__ import annotations

from dataclasses import dataclass

from ...store.graph import Transaction
from ...store.loader import EdgeLabel, VertexLabel
from ..helpers import two_hop_circle

QUERY_ID = 11
LIMIT = 10


@dataclass(frozen=True)
class Q11Params:
    """Start person, country of the workplace, and the year cutoff."""

    person_id: int
    country_id: int
    max_work_from: int


@dataclass(frozen=True)
class Q11Result:
    """A referral candidate with their workplace."""

    person_id: int
    first_name: str
    last_name: str
    organisation_name: str
    work_from: int


def run(txn: Transaction, params: Q11Params) -> list[Q11Result]:
    """Execute Q11: long-time employees in the country, 2-hop circle."""
    rows = []
    for friend_id in two_hop_circle(txn, params.person_id):
        for org_id, props in txn.neighbors(EdgeLabel.WORK_AT, friend_id):
            if props["work_from"] >= params.max_work_from:
                continue
            org = txn.require_vertex(VertexLabel.ORGANISATION, org_id)
            if org["location_id"] != params.country_id:
                continue
            person = txn.require_vertex(VertexLabel.PERSON, friend_id)
            rows.append(Q11Result(
                person_id=friend_id,
                first_name=person["first_name"],
                last_name=person["last_name"],
                organisation_name=org["name"],
                work_from=props["work_from"],
            ))
    rows.sort(key=lambda r: (r.work_from, r.person_id,
                             r.organisation_name))
    return rows[:LIMIT]
