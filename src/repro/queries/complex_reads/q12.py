"""Q12 — Expert Search.

"Find friends of a Person who have replied the most to posts with a tag in
a given TagCategory.  Return top 20 persons, sorted descending by number
of replies."

The tag category matches the tag's class or any descendant class
(the *isSubclassOf* hierarchy).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...ids import EntityKind, is_kind
from ...store.graph import Transaction
from ...store.loader import VertexLabel
from ..helpers import friends_of, messages_of, tags_of

QUERY_ID = 12
LIMIT = 20


@dataclass(frozen=True)
class Q12Params:
    """Start person and the tag class (category)."""

    person_id: int
    tag_class_id: int


@dataclass(frozen=True)
class Q12Result:
    """An expert friend with reply count and the tags they replied to."""

    person_id: int
    first_name: str
    last_name: str
    reply_count: int
    tag_names: tuple[str, ...]


def _descendant_classes(txn: Transaction, class_id: int) -> set[int]:
    """The class and every (transitive) subclass of it."""
    all_classes = {}
    # The hierarchy is small; materialize parent links once.
    for vid, props in txn.vertices(VertexLabel.TAG_CLASS):
        all_classes[vid] = props.get("parent_id")
    result = {class_id}
    changed = True
    while changed:
        changed = False
        for vid, parent in all_classes.items():
            if parent in result and vid not in result:
                result.add(vid)
                changed = True
    return result


def run(txn: Transaction, params: Q12Params) -> list[Q12Result]:
    """Execute Q12: friends ranked by replies to in-category posts."""
    classes = _descendant_classes(txn, params.tag_class_id)
    rows = []
    for friend_id in friends_of(txn, params.person_id):
        reply_count = 0
        tag_ids: set[int] = set()
        for message_id in messages_of(txn, friend_id):
            if not is_kind(message_id, EntityKind.COMMENT):
                continue
            comment = txn.require_vertex(VertexLabel.COMMENT, message_id)
            parent_id = comment["reply_of_id"]
            if not is_kind(parent_id, EntityKind.POST):
                continue  # only direct replies to posts count
            matching = set()
            for tag_id in tags_of(txn, parent_id):
                tag = txn.require_vertex(VertexLabel.TAG, tag_id)
                if tag["class_id"] in classes:
                    matching.add(tag_id)
            if matching:
                reply_count += 1
                tag_ids |= matching
        if reply_count > 0:
            person = txn.require_vertex(VertexLabel.PERSON, friend_id)
            names = tuple(sorted(
                txn.require_vertex(VertexLabel.TAG, t)["name"]
                for t in tag_ids))
            rows.append(Q12Result(friend_id, person["first_name"],
                                  person["last_name"], reply_count, names))
    rows.sort(key=lambda r: (-r.reply_count, r.person_id))
    return rows[:LIMIT]
