"""Q4 — New Topics.

"Given a start Person, find the top 10 most popular Tags (by total number
of posts with the tag) that are attached to Posts that were created by
that Person's friends within a given time interval."

Per the SNB specification, only *new* topics count: tags that appear on
friend posts inside the window but on none before it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...ids import EntityKind, is_kind
from ...sim_time import MILLIS_PER_DAY
from ...store.graph import Transaction
from ...store.loader import VertexLabel
from ..helpers import friends_of, message_props, messages_of, tags_of

QUERY_ID = 4
LIMIT = 10


@dataclass(frozen=True)
class Q4Params:
    """Start person and the [start, start + duration) window."""

    person_id: int
    start_date: int
    duration_days: int

    @property
    def end_date(self) -> int:
        return self.start_date + self.duration_days * MILLIS_PER_DAY


@dataclass(frozen=True)
class Q4Result:
    """A newly trending tag among the person's friends."""

    tag_name: str
    post_count: int


def run(txn: Transaction, params: Q4Params) -> list[Q4Result]:
    """Execute Q4: tags new to the window over friend posts."""
    in_window: dict[int, int] = {}
    before_window: set[int] = set()
    for friend_id in friends_of(txn, params.person_id):
        for message_id in messages_of(txn, friend_id):
            if not is_kind(message_id, EntityKind.POST):
                continue
            props = message_props(txn, message_id)
            if props is None:
                continue
            when = props["creation_date"]
            if when >= params.end_date:
                continue
            tags = tags_of(txn, message_id)
            if when < params.start_date:
                before_window |= tags
            else:
                for tag_id in tags:
                    in_window[tag_id] = in_window.get(tag_id, 0) + 1
    rows = []
    for tag_id, count in in_window.items():
        if tag_id in before_window:
            continue
        tag = txn.require_vertex(VertexLabel.TAG, tag_id)
        rows.append(Q4Result(tag["name"], count))
    rows.sort(key=lambda r: (-r.post_count, r.tag_name))
    return rows[:LIMIT]
