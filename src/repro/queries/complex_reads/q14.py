"""Q14 — Weighted paths.

"Given PersonX and PersonY, find all weighted paths of the shortest length
between them in the subgraph induced by the Knows relationship.  The
weight of the path takes into consideration amount of Posts/Comments
exchanged."

Weighting follows the SNB specification: every reply of one endpoint to a
*post* of the other contributes 1.0 to the pair's interaction weight,
every reply to a *comment* contributes 0.5; the path weight is the sum
over consecutive pairs.  Paths are returned sorted by weight descending.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ...ids import EntityKind, is_kind
from ...store.graph import Direction, Transaction
from ...store.loader import EdgeLabel, VertexLabel
from ..helpers import creator_of

QUERY_ID = 14
#: Safety valve: social graphs can hold combinatorially many equal-length
#: paths; the spec does not cap them, but an implementation must bound its
#: memory.  The cap is far above anything the benchmark produces.
MAX_PATHS = 1000


@dataclass(frozen=True)
class Q14Params:
    """The two endpoints."""

    person_x_id: int
    person_y_id: int


@dataclass(frozen=True)
class Q14Result:
    """One shortest path with its interaction weight."""

    path: tuple[int, ...]
    weight: float


def run(txn: Transaction, params: Q14Params) -> list[Q14Result]:
    """Execute Q14: enumerate all shortest paths and weight them."""
    source, target = params.person_x_id, params.person_y_id
    if source == target:
        return [Q14Result((source,), 0.0)]
    distances = _bfs_distances(txn, source, target)
    if target not in distances:
        return []
    paths = _enumerate_shortest_paths(txn, distances, source, target)
    weight_cache: dict[tuple[int, int], float] = {}
    results = [Q14Result(tuple(path),
                         _path_weight(txn, path, weight_cache))
               for path in paths]
    results.sort(key=lambda r: (-r.weight, r.path))
    return results


def _bfs_distances(txn: Transaction, source: int, target: int,
                   ) -> dict[int, int]:
    """BFS distances from source, stopping one level past the target."""
    distances = {source: 0}
    frontier = deque([source])
    target_depth: int | None = None
    while frontier:
        current = frontier.popleft()
        depth = distances[current]
        if target_depth is not None and depth >= target_depth:
            break
        for neighbor, __ in txn.neighbors(EdgeLabel.KNOWS, current):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
                if neighbor == target:
                    target_depth = depth + 1
    return distances


def _enumerate_shortest_paths(txn: Transaction, distances: dict[int, int],
                              source: int, target: int) -> list[list[int]]:
    """Walk backward from the target along strictly decreasing distances."""
    paths: list[list[int]] = []
    stack: list[list[int]] = [[target]]
    while stack and len(paths) < MAX_PATHS:
        partial = stack.pop()
        head = partial[-1]
        if head == source:
            paths.append(list(reversed(partial)))
            continue
        want = distances[head] - 1
        for neighbor, __ in txn.neighbors(EdgeLabel.KNOWS, head):
            if distances.get(neighbor) == want:
                stack.append(partial + [neighbor])
    return paths


def _path_weight(txn: Transaction, path: list[int],
                 cache: dict[tuple[int, int], float]) -> float:
    total = 0.0
    for a, b in zip(path, path[1:]):
        key = (min(a, b), max(a, b))
        if key not in cache:
            cache[key] = (_replies_weight(txn, a, b)
                          + _replies_weight(txn, b, a))
        total += cache[key]
    return total


def _replies_weight(txn: Transaction, replier: int, author: int) -> float:
    """Weight of all of ``replier``'s comments on ``author``'s messages."""
    weight = 0.0
    for message_id, __ in txn.neighbors(EdgeLabel.HAS_CREATOR, replier,
                                        Direction.IN):
        if not is_kind(message_id, EntityKind.COMMENT):
            continue
        comment = txn.require_vertex(VertexLabel.COMMENT, message_id)
        parent_id = comment["reply_of_id"]
        if creator_of(txn, parent_id) != author:
            continue
        weight += 1.0 if is_kind(parent_id, EntityKind.POST) else 0.5
    return weight
