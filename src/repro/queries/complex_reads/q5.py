"""Q5 — New groups.

"Given a start Person, find the top 20 Forums the friends and friends of
friends of that Person joined after a given Date.  Sort results descending
by the number of Posts in each Forum that were created by any of these
Persons."

This is the query the paper uses to demonstrate why parameter curation is
needed (Fig. 5): its cost is driven by the size of the 2-hop friendship
circle, which has a multimodal, high-variance distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...store.graph import Direction, Transaction
from ...store.loader import EdgeLabel, VertexLabel
from ..helpers import two_hop_circle

QUERY_ID = 5
LIMIT = 20


@dataclass(frozen=True)
class Q5Params:
    """Start person and the minimum join date."""

    person_id: int
    min_date: int


@dataclass(frozen=True)
class Q5Result:
    """A forum with the number of in-circle posts."""

    forum_id: int
    forum_title: str
    post_count: int


def run(txn: Transaction, params: Q5Params) -> list[Q5Result]:
    """Execute Q5: freshly joined forums ranked by in-circle posts.

    The three fan-outs — memberships of the 2-hop circle, posts of the
    joined forums, authors of those posts — go through the batched
    primitives, so the sharded store serves each as one scatter-gather
    with per-shard partial aggregation instead of a round trip per
    vertex (this is the Fig. 5a stress query).
    """
    circle = two_hop_circle(txn, params.person_id)
    memberships = txn.neighbors_many(EdgeLabel.HAS_MEMBER, list(circle),
                                     Direction.IN)
    joined_forums: set[int] = set()
    for friend_id in circle:
        for forum_id, props in memberships.get(friend_id, ()):
            if props["joined_date"] > params.min_date:
                joined_forums.add(forum_id)
    containers = txn.neighbors_many(EdgeLabel.CONTAINER_OF,
                                    list(joined_forums))
    post_ids = {post_id for posts in containers.values()
                for post_id, __ in posts}
    posts = txn.vertex_many(VertexLabel.POST, list(post_ids))
    rows = []
    for forum_id in joined_forums:
        post_count = 0
        for post_id, __ in containers.get(forum_id, ()):
            post = posts.get(post_id)
            if post is not None and post["author_id"] in circle:
                post_count += 1
        forum = txn.require_vertex(VertexLabel.FORUM, forum_id)
        rows.append(Q5Result(forum_id, forum["title"], post_count))
    rows.sort(key=lambda r: (-r.post_count, r.forum_id))
    return rows[:LIMIT]
