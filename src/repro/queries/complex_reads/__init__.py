"""The 14 complex read-only queries (paper appendix, one module each).

Every module exposes a ``run(txn, params) -> list[result dataclass]``
function plus a module-level ``QUERY_ID``.  The registry in
:mod:`repro.queries.registry` wires them to the workload mix.
"""

from . import (
    q1,
    q2,
    q3,
    q4,
    q5,
    q6,
    q7,
    q8,
    q9,
    q10,
    q11,
    q12,
    q13,
    q14,
)

ALL_COMPLEX = (q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11, q12, q13, q14)

__all__ = ["ALL_COMPLEX"] + [f"q{i}" for i in range(1, 15)]
