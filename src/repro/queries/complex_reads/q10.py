"""Q10 — Friend recommendation.

"Find top 10 friends of a friend who posts much about the interests of
Person and little about not interesting topics for the user.  The search
is restricted by the candidate's horoscopeSign.  Returns friends for whom
the difference between the total number of their posts about the interests
of the specified user and the total number of their posts about topics
that are not interests of the user, is as large as possible.  Sort the
result descending by this difference."

The horoscope restriction follows the SNB spec: the candidate's birthday
falls on or after the 21st of the given month or before the 22nd of the
next month.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...ids import EntityKind, is_kind
from ...sim_time import date_from_millis
from ...store.graph import Transaction
from ...store.loader import EdgeLabel, VertexLabel
from ..helpers import friends_of, messages_of, tags_of

QUERY_ID = 10
LIMIT = 10


@dataclass(frozen=True)
class Q10Params:
    """Start person and the horoscope month (1-12)."""

    person_id: int
    month: int


@dataclass(frozen=True)
class Q10Result:
    """A recommended friend-of-friend with the interest similarity score."""

    person_id: int
    first_name: str
    last_name: str
    similarity: int
    gender: str
    city_name: str


def _in_horoscope_window(birthday: int, month: int) -> bool:
    """Birthday on/after the 21st of ``month`` or before the 22nd of the
    following month."""
    moment = date_from_millis(birthday)
    next_month = month % 12 + 1
    if moment.month == month and moment.day >= 21:
        return True
    return moment.month == next_month and moment.day < 22


def run(txn: Transaction, params: Q10Params) -> list[Q10Result]:
    """Execute Q10: horoscope-restricted interest-based recommendation."""
    interests = {tag_id for tag_id, __ in txn.neighbors(
        EdgeLabel.HAS_INTEREST, params.person_id)}
    friends = friends_of(txn, params.person_id)
    candidates: set[int] = set()
    for friend_id in friends:
        for fof_id in friends_of(txn, friend_id):
            if fof_id != params.person_id and fof_id not in friends:
                candidates.add(fof_id)
    rows = []
    for candidate_id in candidates:
        person = txn.require_vertex(VertexLabel.PERSON, candidate_id)
        if not _in_horoscope_window(person["birthday"], params.month):
            continue
        common = 0
        uncommon = 0
        for message_id in messages_of(txn, candidate_id):
            if not is_kind(message_id, EntityKind.POST):
                continue
            if tags_of(txn, message_id) & interests:
                common += 1
            else:
                uncommon += 1
        city = txn.require_vertex(VertexLabel.PLACE, person["city_id"])
        rows.append(Q10Result(
            person_id=candidate_id,
            first_name=person["first_name"],
            last_name=person["last_name"],
            similarity=common - uncommon,
            gender=person["gender"],
            city_name=city["name"],
        ))
    rows.sort(key=lambda r: (-r.similarity, r.person_id))
    return rows[:LIMIT]
