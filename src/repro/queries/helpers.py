"""Shared traversal helpers for the SNB queries.

These are the building blocks the paper's complexity analysis refers to:
1-hop / 2-hop friendship circles (``O(D)`` / ``O(D²)`` neighborhoods),
message retrieval per creator, and discussion-tree navigation.
"""

from __future__ import annotations

from typing import Iterator

from ..ids import EntityKind, is_kind
from ..store.graph import Direction, Transaction
from ..store.loader import EdgeLabel, VertexLabel


def friends_of(txn: Transaction, person_id: int) -> set[int]:
    """Direct friends (1-hop circle)."""
    return {other for other, __ in txn.neighbors(EdgeLabel.KNOWS,
                                                 person_id)}


def friendship_dates(txn: Transaction, person_id: int,
                     ) -> dict[int, int]:
    """Friend id → friendship creation date."""
    return {other: props["creation_date"]
            for other, props in txn.neighbors(EdgeLabel.KNOWS, person_id)}


def friends_within(txn: Transaction, person_id: int, max_hops: int,
                   ) -> dict[int, int]:
    """BFS over *knows*: person id → distance, for 1 ≤ distance ≤ max_hops.

    The start person is excluded (distance 0 is not reported).
    Expands one whole frontier per level through
    :meth:`~repro.store.graph.Transaction.neighbors_many`, so on the
    sharded store each level costs one scatter-gather (the workers
    aggregate the adjacency of their owned slice of the frontier)
    instead of one round trip per person.
    """
    csr_snapshot = getattr(txn, "csr_snapshot", None)
    if csr_snapshot is not None:
        # Packed-adjacency fast path: frontier expansion as flat-array
        # slice+extend instead of per-record Python hops.  Available
        # only for head-snapshot, read-clean transactions on stores
        # with a CSR cache attached (csr_snapshot returns None
        # otherwise, and sharded connectors lack the method entirely).
        graph = csr_snapshot(EdgeLabel.KNOWS)
        if graph is not None:
            return graph.distances_from(person_id, max_hops)
    distances: dict[int, int] = {person_id: 0}
    frontier = [person_id]
    depth = 0
    while frontier and depth < max_hops:
        depth += 1
        adjacency = txn.neighbors_many(EdgeLabel.KNOWS, frontier)
        next_frontier: list[int] = []
        for current in frontier:
            for other, __ in adjacency.get(current, ()):
                if other not in distances:
                    distances[other] = depth
                    next_frontier.append(other)
        frontier = next_frontier
    distances.pop(person_id, None)
    return distances


def two_hop_circle(txn: Transaction, person_id: int) -> set[int]:
    """Friends and friends-of-friends, excluding the person."""
    return set(friends_within(txn, person_id, 2))


def messages_of(txn: Transaction, person_id: int) -> Iterator[int]:
    """Ids of posts and comments created by the person."""
    for message_id, __ in txn.neighbors(EdgeLabel.HAS_CREATOR, person_id,
                                        Direction.IN):
        yield message_id


def message_props(txn: Transaction, message_id: int) -> dict | None:
    """Properties of a post or comment, dispatching on the id space."""
    if is_kind(message_id, EntityKind.POST):
        return txn.vertex(VertexLabel.POST, message_id)
    return txn.vertex(VertexLabel.COMMENT, message_id)


def message_label(message_id: int) -> str:
    """Vertex label for a message id."""
    return (VertexLabel.POST if is_kind(message_id, EntityKind.POST)
            else VertexLabel.COMMENT)


def is_post(message_id: int) -> bool:
    return is_kind(message_id, EntityKind.POST)


def creator_of(txn: Transaction, message_id: int) -> int:
    """Author person id of a message."""
    for person_id, __ in txn.neighbors(EdgeLabel.HAS_CREATOR, message_id):
        return person_id
    raise LookupError(f"message {message_id} has no creator")


def replies_of(txn: Transaction, message_id: int) -> Iterator[int]:
    """Comment ids directly replying to the message."""
    for comment_id, __ in txn.neighbors(EdgeLabel.REPLY_OF, message_id,
                                        Direction.IN):
        yield comment_id


def tags_of(txn: Transaction, message_id: int) -> set[int]:
    """Tag ids attached to a message."""
    return {tag_id for tag_id, __ in txn.neighbors(EdgeLabel.HAS_TAG,
                                                   message_id)}


def person_name(txn: Transaction, person_id: int) -> tuple[str, str]:
    """(first name, last name) of a person."""
    props = txn.require_vertex(VertexLabel.PERSON, person_id)
    return props["first_name"], props["last_name"]


def top_k(rows: list, key, k: int) -> list:
    """Sort rows by ``key`` and keep the first ``k`` (stable)."""
    return sorted(rows, key=key)[:k]
