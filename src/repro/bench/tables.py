"""Aligned plain-text tables for bench output."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render rows as an aligned text table (numbers right-aligned)."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w)
                           for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) if _numeric(cell)
                               else cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _numeric(cell: str) -> bool:
    return cell.replace(".", "", 1).replace("-", "", 1).isdigit()
