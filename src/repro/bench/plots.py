"""ASCII plots: the figure artifacts of the paper, in terminal form."""

from __future__ import annotations

from typing import Sequence


def ascii_histogram(pairs: Sequence[tuple], width: int = 50,
                    title: str | None = None,
                    label_format: str = "{:>12}") -> str:
    """Horizontal bar chart of (label, count) pairs."""
    lines = [title] if title else []
    if not pairs:
        lines.append("(empty)")
        return "\n".join(lines)
    top = max(count for __, count in pairs) or 1
    for label, count in pairs:
        bar = "#" * max(1 if count else 0, round(count / top * width))
        lines.append(f"{label_format.format(label)} |{bar} {count}")
    return "\n".join(lines)


def ascii_series(values: Sequence[float], height: int = 12,
                 title: str | None = None) -> str:
    """Vertical sparkline-style chart of a numeric series."""
    lines = [title] if title else []
    if not values:
        lines.append("(empty)")
        return "\n".join(lines)
    top = max(values) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        row = "".join("█" if value >= threshold else " "
                      for value in values)
        rows.append(f"{threshold:10.1f} |{row}")
    rows.append(" " * 11 + "+" + "-" * len(values))
    lines.extend(rows)
    return "\n".join(lines)
