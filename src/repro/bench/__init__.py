"""Shared harness utilities for the paper-artifact benchmarks.

Every module in ``benchmarks/`` regenerates one table or figure of the
paper; these helpers render aligned text tables and ASCII plots so the
bench output can be compared side by side with the paper's artifact.
"""

from .artifacts import emit_artifact, emit_headline, headline_path
from .plots import ascii_histogram, ascii_series
from .tables import format_table
from .timing import median_seconds

__all__ = [
    "ascii_histogram",
    "ascii_series",
    "emit_artifact",
    "emit_headline",
    "format_table",
    "headline_path",
    "median_seconds",
]
