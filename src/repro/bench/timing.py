"""Timing helpers for the paper-artifact benchmarks."""

from __future__ import annotations

import statistics
import time
from typing import Callable


def median_seconds(run: Callable[[], object], repetitions: int = 5,
                   warmup: int = 1) -> float:
    """Median wall-clock seconds of ``run`` over several repetitions."""
    for __ in range(warmup):
        run()
    samples = []
    for __ in range(repetitions):
        started = time.perf_counter()
        run()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)
