"""Artifact sink for the paper-regeneration benches.

Every bench prints its table/figure and also writes it under
``benchmarks/output/`` so a run leaves a reviewable directory of
regenerated paper artifacts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


def artifact_dir() -> Path:
    """Directory artifacts are written to (override via REPRO_BENCH_OUT)."""
    root = os.environ.get("REPRO_BENCH_OUT")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[3] / "benchmarks" \
            / "output"
    path.mkdir(parents=True, exist_ok=True)
    return path


def emit_artifact(name: str, text: str) -> None:
    """Print an artifact and persist it as ``benchmarks/output/<name>``."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (artifact_dir() / f"{name}.txt").write_text(text + "\n",
                                                encoding="utf-8")


def headline_path(name: str) -> Path:
    """Repo-root path of a committed headline file (``BENCH_<name>.json``)."""
    root = os.environ.get("REPRO_BENCH_HEADLINES")
    base = Path(root) if root else Path(__file__).resolve().parents[3]
    return base / f"BENCH_{name}.json"


def emit_headline(name: str, payload: dict) -> Path:
    """Persist a bench's headline numbers as committed JSON.

    Unlike the per-run artifacts under ``benchmarks/output/`` these land
    at the repo root (``BENCH_<name>.json``) and are committed, forming
    the tracked perf trajectory: each run overwrites the file, so the
    diff IS the perf delta.  Payloads must record the machine shape
    (``cores``) — scale-up numbers are meaningless without it.
    """
    path = headline_path(name)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"headline numbers -> {path}")
    return path
