"""Artifact sink for the paper-regeneration benches.

Every bench prints its table/figure and also writes it under
``benchmarks/output/`` so a run leaves a reviewable directory of
regenerated paper artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path


def artifact_dir() -> Path:
    """Directory artifacts are written to (override via REPRO_BENCH_OUT)."""
    root = os.environ.get("REPRO_BENCH_OUT")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[3] / "benchmarks" \
            / "output"
    path.mkdir(parents=True, exist_ok=True)
    return path


def emit_artifact(name: str, text: str) -> None:
    """Print an artifact and persist it as ``benchmarks/output/<name>``."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (artifact_dir() / f"{name}.txt").write_text(text + "\n",
                                                encoding="utf-8")
