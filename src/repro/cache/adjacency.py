"""Versioned adjacency cache for the MVCC graph store.

Sparksee's role in the paper — serving traversals from warm adjacency
structures — is played here by materializing the *visible* neighbor list
of hot ``(edge label, vertex, direction)`` keys so repeated traversals
skip the per-record version check and tuple construction.

MVCC correctness rests on two store invariants (documented and upheld in
:mod:`repro.store.graph`):

* each physical adjacency list is **append-only and ordered by commit
  timestamp** — commits append under the commit lock with a strictly
  increasing timestamp;
* a commit's edges are fully applied **before** its timestamp is
  published, so a transaction whose snapshot includes timestamp ``t``
  can always see all records with ``ts <= t`` already in the list.

A cache entry therefore describes an exact snapshot range: it stores the
visible pairs at build snapshot ``B`` plus the physical prefix length it
scanned, and is valid for every snapshot ``S >= B`` as long as no record
beyond the scanned prefix has ``ts <= S``.  Serving checks that range:

* ``S >= B`` and no newer visible records → pure **hit**;
* ``S >= B`` with newer visible records → **extension**: the delta is
  appended (timestamp order makes this a prefix scan) and the refreshed
  entry replaces the old one;
* ``S < B`` (a reader older than the entry) → bypass; the entry may
  contain records invisible to that snapshot, so the store's uncached
  scan is used and the newer entry is kept.

Commits additionally *invalidate* entries for the keys they touch (via
:meth:`AdjacencyCache.invalidate`), which keeps the table from serving
ever-growing extension deltas; the snapshot-range check above is what
makes the cache correct even in the instant between a commit applying
its edges and the invalidation landing.
"""

from __future__ import annotations

import threading

from .stats import CacheStats


class _Entry:
    """Visible pairs at ``snapshot``, covering ``records[:scanned]``."""

    __slots__ = ("pairs", "snapshot", "scanned")

    def __init__(self, pairs: list, snapshot: int, scanned: int) -> None:
        self.pairs = pairs
        self.snapshot = snapshot
        self.scanned = scanned


class AdjacencyCache:
    """Materialized, snapshot-tagged neighbor lists."""

    def __init__(self, max_entries: int = 65536) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: dict[object, _Entry] = {}
        self.stats = CacheStats("adjacency")

    def lookup(self, key, records, snapshot: int) -> list:
        """The visible ``(other, props)`` pairs of one adjacency list.

        ``records`` is the store's physical list for ``key`` (objects
        with ``ts``/``other``/``props``, timestamp-ordered); ``snapshot``
        is the reading transaction's snapshot.  Never returns stale data:
        entries are only served inside their validity range.
        """
        entry = self._entries.get(key)
        if entry is not None and entry.snapshot <= snapshot \
                and entry.scanned >= len(records):
            # Pure hit — the dominant steady-state path, kept lean.
            self.stats.hits += 1
            return entry.pairs
        return self._lookup_slow(entry, key, records, snapshot)

    def _lookup_slow(self, entry, key, records, snapshot: int) -> list:
        """Extension, bypass, and cold-miss paths of :meth:`lookup`."""
        if entry is not None and entry.snapshot <= snapshot:
            length = len(records)
            # Records appended since the entry was built; extend with
            # the ones visible to this snapshot (ts-ordered prefix).
            scanned = entry.scanned
            extended = None
            while scanned < length:
                record = records[scanned]
                if record.ts > snapshot:
                    break
                if extended is None:
                    extended = list(entry.pairs)
                extended.append((record.other, record.props))
                scanned += 1
            if extended is None:
                # Everything new is above our snapshot: still a hit.
                self.stats.hits += 1
                return entry.pairs
            self.stats.extensions += 1
            self._entries[key] = _Entry(extended, snapshot, scanned)
            return extended
        # Miss — either no entry, or the entry was built at a newer
        # snapshot than ours (bypassed; the newer entry is kept).
        self.stats.misses += 1
        pairs: list = []
        scanned = 0
        length = len(records)
        while scanned < length:
            record = records[scanned]
            if record.ts > snapshot:
                break
            pairs.append((record.other, record.props))
            scanned += 1
        if entry is None:
            if len(self._entries) >= self.max_entries:
                self._evict()
            self._entries[key] = _Entry(pairs, snapshot, scanned)
        return pairs

    def invalidate(self, keys) -> None:
        """Drop the entries a commit's edges touched (called under the
        store's commit lock, before the commit timestamp is published)."""
        entries = self._entries
        for key in keys:
            if entries.pop(key, None) is not None:
                self.stats.invalidations += 1

    def _evict(self) -> None:
        """Drop the oldest half of the table (insertion order)."""
        with self._lock:
            if len(self._entries) < self.max_entries:
                return
            drop = len(self._entries) // 2
            for key in list(self._entries)[:drop]:
                self._entries.pop(key, None)
            self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
