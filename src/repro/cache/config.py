"""Configuration of the hot-path caching layer.

One :class:`CacheConfig` value is threaded from the CLI (``--cache``)
through :class:`~repro.core.benchmark.BenchmarkConfig` down to the three
caches it governs:

* ``plan`` — the relational engine's query-plan cache;
* ``adjacency`` — the graph store's versioned adjacency cache;
* ``memo`` — the connector's short-read memo for the random-walk phase.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Component names accepted by :meth:`CacheConfig.from_spec`.
COMPONENTS = ("plan", "adjacency", "memo")


@dataclass(frozen=True)
class CacheConfig:
    """Which caches are enabled, and their capacity bounds."""

    plan: bool = True
    adjacency: bool = True
    memo: bool = True
    plan_max_entries: int = 256
    adjacency_max_entries: int = 65536
    memo_max_entries: int = 16384

    @property
    def any_enabled(self) -> bool:
        return self.plan or self.adjacency or self.memo

    @classmethod
    def enabled(cls) -> "CacheConfig":
        """All three caches on (the ``--cache all`` setting)."""
        return cls()

    @classmethod
    def none(cls) -> "CacheConfig":
        """Caching fully off — the seed behaviour, and the default."""
        return cls(plan=False, adjacency=False, memo=False)

    @classmethod
    def from_spec(cls, spec: str) -> "CacheConfig":
        """Parse a CLI spec: ``all``, ``none``, or ``plan,adjacency``."""
        normalized = (spec or "").strip().lower()
        if normalized in ("all", "on"):
            return cls.enabled()
        if normalized in ("", "none", "off"):
            return cls.none()
        selected = {part.strip() for part in normalized.split(",")
                    if part.strip()}
        unknown = selected.difference(COMPONENTS)
        if unknown:
            raise ValueError(
                f"unknown cache component(s) {sorted(unknown)}; "
                f"expected 'all', 'none', or a comma list of "
                f"{', '.join(COMPONENTS)}")
        return cls(plan="plan" in selected,
                   adjacency="adjacency" in selected,
                   memo="memo" in selected)

    def describe(self) -> str:
        """Human-readable summary (``plan+adjacency+memo`` or ``none``)."""
        parts = [name for name in COMPONENTS if getattr(self, name)]
        return "+".join(parts) if parts else "none"
