"""Hit/miss accounting shared by every cache in :mod:`repro.cache`.

Counting happens on plain instance integers (lock-free under the GIL —
these are hot-path increments), and :meth:`CacheStats.publish` exports
the totals as monotonic counters into a telemetry
:class:`~repro.telemetry.metrics.MetricRegistry`, so cache behaviour
shows up in the same metric table as driver latencies and T_GC waits.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters of one cache: hits, misses, extensions, invalidations.

    ``extensions`` are the adjacency cache's partial hits — a cached list
    served after appending the delta committed since it was built.
    ``evictions`` counts capacity resets, ``invalidations`` entries
    dropped for correctness (commit / update touching them).
    """

    name: str
    hits: int = 0
    misses: int = 0
    extensions: int = 0
    invalidations: int = 0
    evictions: int = 0
    #: (registry id, metric name) → value already pushed as a counter.
    _published: dict = field(default_factory=dict, repr=False)

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.extensions

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (extensions count)."""
        requests = self.requests
        if requests == 0:
            return 0.0
        return (self.hits + self.extensions) / requests

    def publish(self, registry) -> None:
        """Export totals as ``cache.<name>.*`` counters in a registry.

        Idempotent per registry: repeated publishes only push the delta
        accumulated since the previous publish into that registry.
        """
        for metric in ("hits", "misses", "extensions", "invalidations",
                       "evictions"):
            value = getattr(self, metric)
            key = (id(registry), metric)
            delta = value - self._published.get(key, 0)
            if delta > 0:
                registry.counter(f"cache.{self.name}.{metric}").inc(delta)
            self._published[key] = value
        registry.gauge(f"cache.{self.name}.hit_rate").set(self.hit_rate)

    def as_row(self) -> dict[str, object]:
        """Summary mapping for reports and bench tables."""
        return {
            "cache": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "extensions": self.extensions,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
