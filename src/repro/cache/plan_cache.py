"""Query-plan cache for the relational engine.

The paper's Virtuoso runs amortize optimization by compiling each query
template once and reusing the plan for every binding; our cost-based
:class:`~repro.engine.optimizer.Optimizer` historically re-planned every
execution.  This cache stores the optimizer's *decisions* (the join
algorithm chosen per step, with the costs that justified it) keyed by
``(query id, catalog version)``:

* the **query id** identifies the query shape — every binding of one
  template produces the same :class:`~repro.engine.optimizer.JoinSpec`
  structure, only the source keys differ, and those are not part of the
  cached decisions;
* the **catalog version** is the statistics epoch.  Inserts do not bump
  it; an explicit :meth:`~repro.engine.catalog.Catalog.refresh_stats`
  does, after which the next execution re-optimizes against fresh
  statistics under a new key.

Physical operator trees are *not* cached — they embed per-binding probe
keys — so a hit rebuilds the (cheap) operator chain from the cached
algorithm choices and skips cardinality estimation and costing entirely.
"""

from __future__ import annotations

import threading

from .stats import CacheStats


class PlanCache:
    """(query id, catalog version) → planner decisions."""

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._decisions: dict[tuple[int, int], tuple] = {}
        self.stats = CacheStats("plan")

    def get(self, query_id: int, catalog_version: int):
        """Cached decisions for the key, or None (counted as a miss)."""
        decisions = self._decisions.get((query_id, catalog_version))
        if decisions is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return decisions

    def put(self, query_id: int, catalog_version: int,
            decisions) -> None:
        """Store a freshly planned query's decisions."""
        with self._lock:
            if len(self._decisions) >= self.max_entries:
                # Plans are tiny and replanning is cheap; a wholesale
                # reset keeps the bookkeeping trivial.
                self._decisions.clear()
                self.stats.evictions += 1
            self._decisions[(query_id, catalog_version)] = tuple(decisions)

    def invalidate(self) -> None:
        """Drop every cached plan (e.g. after a schema change)."""
        with self._lock:
            if self._decisions:
                self.stats.invalidations += len(self._decisions)
                self._decisions.clear()

    def __len__(self) -> int:
        return len(self._decisions)
