"""Hot-path caching layer: plan cache, adjacency cache, short-read memo.

All three caches are off by default (``CacheConfig.none()`` reproduces
the seed behaviour) and are enabled per-component via ``--cache`` on the
CLI.  Each exports hit/miss counters through
:meth:`~repro.cache.stats.CacheStats.publish` into the telemetry metric
registry.
"""

from .adjacency import AdjacencyCache
from .config import COMPONENTS, CacheConfig
from .memo import (FRIENDSHIP_SENSITIVE, MemoToken, ShortReadMemo,
                   touched_refs)
from .plan_cache import PlanCache
from .stats import CacheStats

__all__ = [
    "AdjacencyCache",
    "COMPONENTS",
    "CacheConfig",
    "CacheStats",
    "FRIENDSHIP_SENSITIVE",
    "MemoToken",
    "PlanCache",
    "ShortReadMemo",
    "touched_refs",
]
