"""Short-read memo for the random-walk phase.

The walk re-visits hot entities constantly — complex-read results seed
it with the same curated persons and their newest messages — so the
connector can memoize short-read results keyed by
``(query id, EntityRef)`` (the frozen ref is the hash key).

Invalidation is by *touched entity*: every update names the refs whose
short reads it can change (:func:`touched_refs`), and the memo drops
exactly those keys.  SNB-Interactive updates are pure inserts, which
makes the dependency analysis exact:

* person/message attributes never change after insert, so S1/S4/S5/S6
  depend only on their target ref (invalidated when the entity itself is
  inserted, which also clears negative results memoized before the
  insert committed);
* a new message invalidates its author's S2 (and the parent message's
  S7 for comments);
* S3 (friend list) and S7's ``knows_original_author`` flag read the
  friendship graph, whose edges connect persons *not named in the memo
  key*; those two queries are additionally guarded by a **friendship
  epoch** bumped on every ADD_FRIENDSHIP — an entry only serves while
  its epoch is current.

Concurrent drivers interleave reads and updates from different
partitions, so a result computed against a pre-update snapshot could be
stored *after* the update invalidated its key.  :meth:`ShortReadMemo.begin`
hands out a generation token; :meth:`ShortReadMemo.put` refuses the
store when the target ref was invalidated at or after that generation,
and epoch-guarded entries stored with a stale epoch simply never serve.
"""

from __future__ import annotations

import threading
from typing import NamedTuple

from ..datagen.update_stream import UpdateKind, UpdateOperation
from ..workload.operations import EntityRef
from .stats import CacheStats

#: Short reads whose results depend on the friendship graph (guarded by
#: the friendship epoch in addition to their target ref).
FRIENDSHIP_SENSITIVE = frozenset({3, 7})

#: All short-read query ids (for per-ref key enumeration).
SHORT_QUERY_IDS = tuple(range(1, 8))


def touched_refs(operation: UpdateOperation) -> tuple[EntityRef, ...]:
    """The entity refs whose memoized short reads an update can change."""
    kind = operation.kind
    payload = operation.payload
    if kind is UpdateKind.ADD_PERSON:
        return (EntityRef.person(payload.id),)
    if kind is UpdateKind.ADD_FRIENDSHIP:
        return (EntityRef.person(payload.person1_id),
                EntityRef.person(payload.person2_id))
    if kind is UpdateKind.ADD_POST:
        return (EntityRef.person(payload.author_id),
                EntityRef.message(payload.id))
    if kind is UpdateKind.ADD_COMMENT:
        return (EntityRef.person(payload.author_id),
                EntityRef.message(payload.id),
                EntityRef.message(payload.reply_of_id))
    # ADD_FORUM / ADD_FORUM_MEMBERSHIP / ADD_LIKE_*: no short read
    # observes forums a person moderates, memberships, or likes.
    return ()


class MemoToken(NamedTuple):
    """Read-begin marker consumed by :meth:`ShortReadMemo.put`."""

    generation: int
    epoch: int


class ShortReadMemo:
    """Memoized short-read results with per-entity invalidation."""

    def __init__(self, max_entries: int = 16384) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: dict[tuple[int, EntityRef], tuple] = {}
        #: ref → generation of its most recent invalidation.
        self._invalidated_at: dict[EntityRef, int] = {}
        self._generation = 0
        self._friend_epoch = 0
        self.stats = CacheStats("memo")

    # -- read side ---------------------------------------------------------

    def begin(self, query_id: int, ref: EntityRef):
        """Look up a memoized result before executing a short read.

        Returns ``(result, None)`` on a hit.  On a miss, returns
        ``(None, token)`` — execute the query and hand the token back to
        :meth:`put` with the result.
        """
        entry = self._entries.get((query_id, ref))
        if entry is not None:
            result, epoch = entry
            if query_id not in FRIENDSHIP_SENSITIVE \
                    or epoch == self._friend_epoch:
                self.stats.hits += 1
                return result, None
        self.stats.misses += 1
        return None, MemoToken(self._generation, self._friend_epoch)

    def put(self, query_id: int, ref: EntityRef, result,
            token: MemoToken) -> None:
        """Store a computed result, unless it raced an invalidation.

        A token issued at generation G proves the read began after every
        invalidation up to G, so only a strictly newer invalidation of
        the target ref makes the result untrustworthy.
        """
        if self._invalidated_at.get(ref, 0) > token.generation:
            return
        with self._lock:
            if len(self._entries) >= self.max_entries:
                self._entries.clear()
                self.stats.evictions += 1
            self._entries[(query_id, ref)] = (result, token.epoch)

    # -- write side --------------------------------------------------------

    def note_update(self, operation: UpdateOperation) -> None:
        """Invalidate after an update committed (order matters: the
        caller must apply the update first, then note it here)."""
        refs = touched_refs(operation)
        with self._lock:
            self._generation += 1
            generation = self._generation
            if operation.kind is UpdateKind.ADD_FRIENDSHIP:
                self._friend_epoch = generation
            for ref in refs:
                self._invalidated_at[ref] = generation
                for query_id in SHORT_QUERY_IDS:
                    if self._entries.pop((query_id, ref), None) \
                            is not None:
                        self.stats.invalidations += 1
            if len(self._invalidated_at) > 4 * self.max_entries:
                # The generation map only matters for in-flight reads;
                # clearing it (with the entries) is always safe.
                self._entries.clear()
                self._invalidated_at.clear()
                self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)
