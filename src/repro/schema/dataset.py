"""In-memory container for a generated social network.

:class:`SocialNetwork` is the hand-off format between DATAGEN and every
consumer (bulk loader, curation, statistics, serializer).  It is a plain
collection of entity lists plus id-keyed lookup maps; it has no query or
transaction semantics of its own — those live in :mod:`repro.store`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .entities import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Organisation,
    Person,
    Place,
    Post,
    Tag,
    TagClass,
)


@dataclass
class SocialNetwork:
    """All entities of one generated network, in creation-time order."""

    persons: list[Person] = field(default_factory=list)
    knows: list[Knows] = field(default_factory=list)
    forums: list[Forum] = field(default_factory=list)
    memberships: list[ForumMembership] = field(default_factory=list)
    posts: list[Post] = field(default_factory=list)
    comments: list[Comment] = field(default_factory=list)
    likes: list[Like] = field(default_factory=list)
    tags: list[Tag] = field(default_factory=list)
    tag_classes: list[TagClass] = field(default_factory=list)
    places: list[Place] = field(default_factory=list)
    organisations: list[Organisation] = field(default_factory=list)

    def person_by_id(self) -> dict[int, Person]:
        """Id → person map (built on demand; cache at call sites)."""
        return {p.id: p for p in self.persons}

    def forum_by_id(self) -> dict[int, Forum]:
        return {f.id: f for f in self.forums}

    def post_by_id(self) -> dict[int, Post]:
        return {p.id: p for p in self.posts}

    def comment_by_id(self) -> dict[int, Comment]:
        return {c.id: c for c in self.comments}

    def tag_by_id(self) -> dict[int, Tag]:
        return {t.id: t for t in self.tags}

    def place_by_id(self) -> dict[int, Place]:
        return {p.id: p for p in self.places}

    def organisation_by_id(self) -> dict[int, Organisation]:
        return {o.id: o for o in self.organisations}

    def friendships_of(self) -> dict[int, list[Knows]]:
        """Person id → list of incident friendship edges."""
        adj: dict[int, list[Knows]] = {p.id: [] for p in self.persons}
        for edge in self.knows:
            adj[edge.person1_id].append(edge)
            adj[edge.person2_id].append(edge)
        return adj

    def messages(self) -> Iterator[Post | Comment]:
        """All messages (posts then comments)."""
        yield from self.posts
        yield from self.comments

    @property
    def num_nodes(self) -> int:
        """Vertex count across all entity kinds (paper Table 3 'Nodes')."""
        return (len(self.persons) + len(self.forums) + len(self.posts)
                + len(self.comments) + len(self.tags) + len(self.tag_classes)
                + len(self.places) + len(self.organisations))

    @property
    def num_edges(self) -> int:
        """Edge count across all relation kinds (paper Table 3 'Edges')."""
        person_edges = sum(
            len(p.interests) + len(p.study_at) + len(p.work_at) + 1  # +city
            for p in self.persons)
        forum_edges = sum(1 + len(f.tag_ids) for f in self.forums)  # moderator
        post_edges = sum(3 + len(p.tag_ids) for p in self.posts)
        # creator + container + country (+tags)
        comment_edges = sum(3 + len(c.tag_ids) for c in self.comments)
        # creator + replyOf + country (+tags)
        tag_edges = len(self.tags)  # hasType
        tagclass_edges = sum(1 for tc in self.tag_classes
                             if tc.parent_id is not None)
        place_edges = sum(1 for pl in self.places if pl.part_of is not None)
        return (len(self.knows) + len(self.memberships) + len(self.likes)
                + person_edges + forum_edges + post_edges + comment_edges
                + tag_edges + tagclass_edges + place_edges)

    def summary(self) -> dict[str, int]:
        """Entity counts by kind, for stats tables and quick inspection."""
        return {
            "persons": len(self.persons),
            "knows": len(self.knows),
            "forums": len(self.forums),
            "memberships": len(self.memberships),
            "posts": len(self.posts),
            "comments": len(self.comments),
            "likes": len(self.likes),
            "tags": len(self.tags),
            "tag_classes": len(self.tag_classes),
            "places": len(self.places),
            "organisations": len(self.organisations),
            "nodes": self.num_nodes,
            "edges": self.num_edges,
        }
