"""Referential-integrity and temporal-ordering validation for a network.

The paper's Table 1 lists temporal correlation rules ("left determines
right"): a person's creation date must exceed the birth date, messages must
be created after their author joined, comments after their parent, likes
after the liked message and after the liker befriended (or equals) the
author's social context, memberships after both forum and person exist.
:func:`validate_network` checks all of them and returns a report; DATAGEN is
tested to always produce a clean report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dataset import SocialNetwork


@dataclass
class IntegrityReport:
    """Outcome of validating a :class:`SocialNetwork`."""

    violations: list[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        # Cap retained messages so a badly broken network does not blow up
        # memory; the count is what tests assert on.
        if len(self.violations) < 1000:
            self.violations.append(message)
        else:
            self.violations[-1] = "... further violations suppressed"


def validate_network(network: SocialNetwork) -> IntegrityReport:
    """Run all referential and temporal checks; return the report."""
    report = IntegrityReport()
    persons = network.person_by_id()
    forums = network.forum_by_id()
    posts = network.post_by_id()
    comments = network.comment_by_id()
    tags = network.tag_by_id()
    places = network.place_by_id()
    organisations = network.organisation_by_id()

    _check_persons(network, report, places, organisations, tags)
    _check_knows(network, report, persons)
    _check_forums(network, report, persons, forums, tags)
    _check_messages(network, report, persons, forums, posts, comments, tags)
    _check_likes(network, report, persons, posts, comments)
    return report


def _check_persons(network, report, places, organisations, tags) -> None:
    seen: set[int] = set()
    for person in network.persons:
        report.checked += 1
        if person.id in seen:
            report.add(f"duplicate person id {person.id}")
        seen.add(person.id)
        if person.creation_date <= person.birthday:
            report.add(f"person {person.id} created before birth")
        if person.city_id not in places:
            report.add(f"person {person.id} city {person.city_id} missing")
        for interest in person.interests:
            if interest not in tags:
                report.add(f"person {person.id} interest {interest} missing")
        for study in person.study_at:
            if study.organisation_id not in organisations:
                report.add(f"person {person.id} university missing")
        for work in person.work_at:
            if work.organisation_id not in organisations:
                report.add(f"person {person.id} company missing")


def _check_knows(network, report, persons) -> None:
    seen: set[tuple[int, int]] = set()
    for edge in network.knows:
        report.checked += 1
        if edge.person1_id >= edge.person2_id:
            report.add(f"knows edge not normalized: {edge}")
        key = (edge.person1_id, edge.person2_id)
        if key in seen:
            report.add(f"duplicate knows edge {key}")
        seen.add(key)
        p1 = persons.get(edge.person1_id)
        p2 = persons.get(edge.person2_id)
        if p1 is None or p2 is None:
            report.add(f"knows edge {key} references missing person")
            continue
        if edge.creation_date < max(p1.creation_date, p2.creation_date):
            report.add(f"friendship {key} predates a member joining")


def _check_forums(network, report, persons, forums, tags) -> None:
    for forum in network.forums:
        report.checked += 1
        moderator = persons.get(forum.moderator_id)
        if moderator is None:
            report.add(f"forum {forum.id} moderator missing")
        elif forum.creation_date < moderator.creation_date:
            report.add(f"forum {forum.id} predates its moderator")
        for tag_id in forum.tag_ids:
            if tag_id not in tags:
                report.add(f"forum {forum.id} tag {tag_id} missing")
    for membership in network.memberships:
        report.checked += 1
        forum = forums.get(membership.forum_id)
        member = persons.get(membership.person_id)
        if forum is None or member is None:
            report.add(f"membership {membership} references missing entity")
            continue
        if membership.joined_date < forum.creation_date:
            report.add(f"membership in {forum.id} predates the forum")
        if membership.joined_date < member.creation_date:
            report.add(f"membership of {member.id} predates the person")


def _check_messages(network, report, persons, forums, posts, comments,
                    tags) -> None:
    for post in network.posts:
        report.checked += 1
        author = persons.get(post.author_id)
        forum = forums.get(post.forum_id)
        if author is None:
            report.add(f"post {post.id} author missing")
        elif post.creation_date < author.creation_date:
            report.add(f"post {post.id} predates its author")
        if forum is None:
            report.add(f"post {post.id} forum missing")
        elif post.creation_date < forum.creation_date:
            report.add(f"post {post.id} predates its forum")
        if post.length != len(post.content):
            report.add(f"post {post.id} length mismatch")
        for tag_id in post.tag_ids:
            if tag_id not in tags:
                report.add(f"post {post.id} tag {tag_id} missing")
    for comment in network.comments:
        report.checked += 1
        author = persons.get(comment.author_id)
        if author is None:
            report.add(f"comment {comment.id} author missing")
        elif comment.creation_date < author.creation_date:
            report.add(f"comment {comment.id} predates its author")
        root = posts.get(comment.root_post_id)
        if root is None:
            report.add(f"comment {comment.id} root post missing")
        parent_ts = None
        if comment.reply_of_id in posts:
            parent_ts = posts[comment.reply_of_id].creation_date
        elif comment.reply_of_id in comments:
            parent_ts = comments[comment.reply_of_id].creation_date
        else:
            report.add(f"comment {comment.id} parent missing")
        if parent_ts is not None and comment.creation_date <= parent_ts:
            report.add(f"comment {comment.id} not after its parent")
        if comment.length != len(comment.content):
            report.add(f"comment {comment.id} length mismatch")


def _check_likes(network, report, persons, posts, comments) -> None:
    seen: set[tuple[int, int]] = set()
    for like in network.likes:
        report.checked += 1
        key = (like.person_id, like.message_id)
        if key in seen:
            report.add(f"duplicate like {key}")
        seen.add(key)
        liker = persons.get(like.person_id)
        if liker is None:
            report.add(f"like {key} liker missing")
            continue
        message = posts.get(like.message_id) if like.is_post \
            else comments.get(like.message_id)
        if message is None:
            report.add(f"like {key} message missing")
            continue
        if like.creation_date <= message.creation_date:
            report.add(f"like {key} not after the message")
        if like.creation_date < liker.creation_date:
            report.add(f"like {key} predates the liker")
