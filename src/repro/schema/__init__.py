"""SNB schema: the 11 entities and 20 relations of the benchmark dataset.

The schema follows the LDBC SNB specification as summarized in Section 2 of
the paper: Persons, Tags (with TagClasses), Forums, Messages (Posts,
Comments, Photos-as-posts), Likes, Organisations and Places, connected by
relations such as *knows*, *hasInterest*, *studyAt*, *workAt*, *hasMember*,
*containerOf*, *hasCreator*, *replyOf*, *hasTag* and *likes*.
"""

from .entities import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Organisation,
    OrganisationType,
    Person,
    Place,
    PlaceType,
    Post,
    Tag,
    TagClass,
)
from .dataset import SocialNetwork
from .validation import IntegrityReport, validate_network

__all__ = [
    "Comment",
    "Forum",
    "ForumMembership",
    "IntegrityReport",
    "Knows",
    "Like",
    "Organisation",
    "OrganisationType",
    "Person",
    "Place",
    "PlaceType",
    "Post",
    "SocialNetwork",
    "Tag",
    "TagClass",
    "validate_network",
]
