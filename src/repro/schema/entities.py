"""Entity dataclasses of the SNB schema.

All timestamps are simulation-time integer milliseconds (see
:mod:`repro.sim_time`).  All cross-entity references are by id.  Entities
are plain data: generation logic lives in :mod:`repro.datagen` and storage
concerns in :mod:`repro.store`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class PlaceType(str, Enum):
    """Kind of place in the place hierarchy (city ⊂ country ⊂ continent)."""

    CITY = "city"
    COUNTRY = "country"
    CONTINENT = "continent"


class OrganisationType(str, Enum):
    """Kind of organisation a person studies at or works for."""

    UNIVERSITY = "university"
    COMPANY = "company"


@dataclass(frozen=True)
class Place:
    """A city, country or continent; cities/countries nest via ``part_of``."""

    id: int
    name: str
    type: PlaceType
    part_of: int | None = None
    #: Z-order curve coordinate of the place (used for the study-location
    #: correlation dimension, bits 31-24 of the composite key).
    z_order: int = 0


@dataclass(frozen=True)
class Organisation:
    """A university (located in a city) or company (located in a country)."""

    id: int
    name: str
    type: OrganisationType
    location_id: int


@dataclass(frozen=True)
class TagClass:
    """Category of tags; classes form a small subclass hierarchy."""

    id: int
    name: str
    parent_id: int | None = None


@dataclass(frozen=True)
class Tag:
    """A topic persons are interested in and messages are about."""

    id: int
    name: str
    class_id: int


@dataclass(frozen=True)
class StudyAt:
    """Person studied at a university, graduating in ``class_year``."""

    organisation_id: int
    class_year: int


@dataclass(frozen=True)
class WorkAt:
    """Person works at a company since ``work_from`` (a year)."""

    organisation_id: int
    work_from: int


@dataclass
class Person:
    """A member of the social network."""

    id: int
    first_name: str
    last_name: str
    gender: str
    birthday: int
    creation_date: int
    location_ip: str
    browser_used: str
    city_id: int
    country_id: int
    languages: tuple[str, ...] = ()
    emails: tuple[str, ...] = ()
    interests: tuple[int, ...] = ()
    study_at: tuple[StudyAt, ...] = ()
    work_at: tuple[WorkAt, ...] = ()


@dataclass(frozen=True)
class Knows:
    """Undirected friendship edge; stored once with ``person1 < person2``."""

    person1_id: int
    person2_id: int
    creation_date: int
    #: Which correlation dimension produced the edge (0 = study location,
    #: 1 = interest, 2 = random); kept for datagen validation benches.
    dimension: int = 0

    def other(self, person_id: int) -> int:
        """The endpoint that is not ``person_id``."""
        if person_id == self.person1_id:
            return self.person2_id
        if person_id == self.person2_id:
            return self.person1_id
        raise ValueError(f"person {person_id} is not an endpoint")


@dataclass
class Forum:
    """A discussion container: a person's wall, a group, or a photo album."""

    id: int
    title: str
    creation_date: int
    moderator_id: int
    tag_ids: tuple[int, ...] = ()


@dataclass(frozen=True)
class ForumMembership:
    """Person joined forum at ``joined_date``."""

    forum_id: int
    person_id: int
    joined_date: int


@dataclass
class Post:
    """A root message of a discussion tree; photos are posts with an image."""

    id: int
    creation_date: int
    author_id: int
    forum_id: int
    content: str
    length: int
    language: str
    country_id: int
    tag_ids: tuple[int, ...] = ()
    image_file: str | None = None
    location_ip: str = ""
    browser_used: str = ""
    #: Photo geolocation (Table 1: post.photoLocation matches the
    #: location) — None for text posts.
    latitude: float | None = None
    longitude: float | None = None

    @property
    def is_photo(self) -> bool:
        return self.image_file is not None


@dataclass
class Comment:
    """A reply to a post or to another comment (forms discussion trees)."""

    id: int
    creation_date: int
    author_id: int
    content: str
    length: int
    country_id: int
    #: Root post of the discussion tree this comment belongs to.
    root_post_id: int
    #: Direct parent: a post id or a comment id.
    reply_of_id: int
    tag_ids: tuple[int, ...] = ()
    location_ip: str = ""
    browser_used: str = ""


@dataclass(frozen=True)
class Like:
    """Person liked a message (post or comment) at ``creation_date``."""

    person_id: int
    message_id: int
    creation_date: int
    is_post: bool = True


#: Names of the 20 relations of the schema, for documentation/validation.
RELATION_NAMES: tuple[str, ...] = (
    "knows",                 # person  - person
    "hasInterest",           # person  - tag
    "studyAt",               # person  - university
    "workAt",                # person  - company
    "personIsLocatedIn",     # person  - city
    "forumHasModerator",     # forum   - person
    "forumHasMember",        # forum   - person
    "forumHasTag",           # forum   - tag
    "containerOf",           # forum   - post
    "postHasCreator",        # post    - person
    "postHasTag",            # post    - tag
    "postIsLocatedIn",       # post    - country
    "commentHasCreator",     # comment - person
    "commentHasTag",         # comment - tag
    "commentIsLocatedIn",    # comment - country
    "replyOf",               # comment - message
    "likes",                 # person  - message
    "hasType",               # tag     - tagclass
    "isSubclassOf",          # tagclass- tagclass
    "isPartOf",              # place   - place
)
