"""Simulation-time calendar for the SNB dataset.

All timestamps in the generated network are integer **milliseconds since the
Unix epoch**, in simulation time.  The standard network covers three years
(the paper: "a standard scale factor covers three years. Of this 32 months
are bulkloaded at benchmark start, whereas the data from the last 4 months is
added using individual DML statements").
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

MILLIS_PER_SECOND = 1_000
MILLIS_PER_MINUTE = 60 * MILLIS_PER_SECOND
MILLIS_PER_HOUR = 60 * MILLIS_PER_MINUTE
MILLIS_PER_DAY = 24 * MILLIS_PER_HOUR
#: Average month length used for the 32/36 bulk-load split.
MILLIS_PER_MONTH = int(30.4375 * MILLIS_PER_DAY)
MILLIS_PER_YEAR = 12 * MILLIS_PER_MONTH


def millis_from_date(year: int, month: int, day: int,
                     hour: int = 0, minute: int = 0, second: int = 0) -> int:
    """Convert a calendar date (UTC) to simulation milliseconds."""
    moment = _dt.datetime(year, month, day, hour, minute, second,
                          tzinfo=_dt.timezone.utc)
    return int(moment.timestamp() * 1000)


def date_from_millis(ts: int) -> _dt.datetime:
    """Convert simulation milliseconds back to an aware UTC datetime."""
    return _dt.datetime.fromtimestamp(ts / 1000.0, tz=_dt.timezone.utc)


def iso(ts: int) -> str:
    """Human-readable ISO rendering of a simulation timestamp."""
    return date_from_millis(ts).strftime("%Y-%m-%dT%H:%M:%SZ")


#: Start of the simulated network (persons may join from here on).
NETWORK_START = millis_from_date(2010, 1, 1)
#: End of the simulated period (3 years later).
NETWORK_END = millis_from_date(2013, 1, 1)
#: Total simulated span in ms.
NETWORK_SPAN = NETWORK_END - NETWORK_START


def bulk_load_cut(start: int = NETWORK_START, end: int = NETWORK_END) -> int:
    """Timestamp splitting bulk-loaded data (before) from the update stream.

    The paper bulk-loads the first 32 of 36 months; the final 4 months
    become the transactional update stream.
    """
    return start + (end - start) * 32 // 36


@dataclass(frozen=True)
class SimulationWindow:
    """A contiguous span of simulation time ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"window end {self.end} before start {self.start}")

    @property
    def span(self) -> int:
        return self.end - self.start

    def contains(self, ts: int) -> bool:
        return self.start <= ts < self.end

    def clamp(self, ts: int) -> int:
        """Clamp a timestamp into the window (end-exclusive)."""
        return min(max(ts, self.start), self.end - 1)

    def at_fraction(self, fraction: float) -> int:
        """Timestamp at a fractional position within the window."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0,1], got {fraction}")
        return self.start + int(self.span * fraction)


#: The default three-year window the benchmark generates data for.
DEFAULT_WINDOW = SimulationWindow(NETWORK_START, NETWORK_END)
