"""Full-disclosure report rendering.

"The full disclosure further breaks down the composition of the metric
into its constituent parts, e.g. single query execution times."  This is
the human-readable rendering of a :class:`~.benchmark.BenchmarkReport`,
laid out like the paper's Tables 6, 7 and 9 plus the headline metrics.
"""

from __future__ import annotations

from ..datagen.update_stream import UpdateKind
from .benchmark import BenchmarkReport


def _latency_table(title: str, stats, names: list[str]) -> list[str]:
    lines = [title]
    widths = [max(8, len(name) + 2) for name in names]
    lines.append("  " + "".join(name.rjust(width)
                                for name, width in zip(names, widths)))
    row = []
    for name, width in zip(names, widths):
        entry = stats.get(name)
        row.append(f"{entry.mean_ms:.1f}".rjust(width) if entry
                   else "—".rjust(width))
    lines.append("  " + "".join(row))
    return lines


def render_report(report: BenchmarkReport) -> str:
    """Render the full-disclosure report as plain text."""
    lines = [
        f"SNB-Interactive run — SUT: {report.sut_name}",
        f"  acceleration target : {report.acceleration_target}",
        f"  sustained           : {report.sustained}"
        f" (late fraction {report.late_fraction:.1%})",
        f"  steady state (p99)  : {report.steady_state}",
        f"  wall seconds        : {report.wall_seconds:.2f}",
        f"  driver operations   : {report.operations}",
        f"  throughput          : {report.throughput:.0f} ops/s",
        f"  short reads         : {report.short_reads}",
        "",
    ]
    lines += _latency_table(
        "mean runtime of complex read-only queries (ms)  [Table 6]",
        report.complex_stats, [f"Q{i}" for i in range(1, 15)])
    lines.append("")
    lines += _latency_table(
        "mean runtime of simple read-only queries (ms)   [Table 7]",
        report.short_stats, [f"S{i}" for i in range(1, 8)])
    lines.append("")
    update_names = [kind.name for kind in UpdateKind]
    lines += _latency_table(
        "mean runtime of transactional updates (ms)      [Table 9]",
        report.update_stats, update_names)
    if report.cache_stats:
        lines.append("")
        lines.append("hot-path caches")
        for row in report.cache_stats:
            lines.append(
                f"  {row['cache']:<10} hits {row['hits']:>7}  "
                f"misses {row['misses']:>7}  "
                f"ext {row['extensions']:>6}  "
                f"inval {row['invalidations']:>6}  "
                f"hit rate {row['hit_rate']:.1%}")
    return "\n".join(lines)
