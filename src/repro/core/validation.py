"""Cross-SUT validation mode (read-only checker).

The official LDBC driver ships a validation mode: run the workload's
queries against a system and compare every result with a known-good
reference.  Here the two built-in SUTs validate each other: every
complex read and short read is executed on both the graph store and the
relational engine over curated parameters, and any disagreement is
reported with the binding that produced it plus a structured per-column
diff of the first differing rows.

Result canonicalization is shared with the full validation subsystem
(:mod:`repro.validation.canonical`), so this checker, the update-aware
differential runner, and golden datasets all agree on what "equal"
means.  For update-aware validation, state checkpoints, and replayable
counterexamples, see :mod:`repro.validation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..curation.curator import CuratedWorkloadParams, ParameterCurator
from ..schema.dataset import SocialNetwork
from ..validation.canonical import ResultDiff, comparable, diff_results
from ..workload.operations import EntityRef
from .operation import ComplexRead, ShortRead
from .sut import EngineSUT, StoreSUT

#: Mismatches rendered in full before the summary tail line.
RENDER_LIMIT = 20


@dataclass
class Mismatch:
    """One disagreement between the two systems."""

    query: str
    params: object
    store_rows: int
    engine_rows: int
    detail: str
    #: Structured per-column diff of the first differing rows.
    diff: ResultDiff | None = field(default=None, repr=False)


@dataclass
class ValidationReport:
    """Outcome of a cross-validation run."""

    queries_checked: int = 0
    executions: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def cross_validate(network: SocialNetwork,
                   params: CuratedWorkloadParams | None = None,
                   bindings_per_query: int = 5,
                   seed: int = 0) -> ValidationReport:
    """Validate the two SUTs against each other on one network."""
    from ..queries.registry import COMPLEX_QUERIES, SHORT_QUERIES

    if params is None:
        params = ParameterCurator(network, seed=seed).curate(
            bindings_per_query)
    store = StoreSUT.for_network(network)
    engine = EngineSUT.for_network(network)
    report = ValidationReport()

    for query_id in sorted(COMPLEX_QUERIES):
        report.queries_checked += 1
        for binding in params.by_query.get(query_id, ()):
            report.executions += 1
            op = ComplexRead(query_id, binding)
            store_rows = store.execute(op).value
            engine_rows = engine.execute(op).value
            left = comparable(query_id, store_rows)
            right = comparable(query_id, engine_rows)
            if left != right:
                report.mismatches.append(Mismatch(
                    query=f"Q{query_id}", params=binding,
                    store_rows=len(store_rows),
                    engine_rows=len(engine_rows),
                    detail="complex read results differ",
                    diff=diff_results(left, right)))

    person_inputs = [EntityRef.person(p.id)
                     for p in network.persons[:10]]
    message_inputs = [EntityRef.message(m.id)
                      for m in network.posts[:5]] \
        + [EntityRef.message(c.id) for c in network.comments[:5]]
    for query_id, entry in sorted(SHORT_QUERIES.items()):
        report.queries_checked += 1
        inputs = person_inputs if entry.input_kind == "person" \
            else message_inputs
        for entity in inputs:
            report.executions += 1
            op = ShortRead(query_id, entity)
            store_rows = store.execute(op).value
            engine_rows = engine.execute(op).value
            left = comparable(query_id, store_rows)
            right = comparable(query_id, engine_rows)
            if left != right:
                report.mismatches.append(Mismatch(
                    query=f"S{query_id}", params=entity,
                    store_rows=1, engine_rows=1,
                    detail="short read results differ",
                    diff=diff_results(left, right)))
    return report


def render_validation(report: ValidationReport) -> str:
    """Human-readable validation summary.

    Every rendered mismatch includes the first differing row's columns;
    mismatches beyond :data:`RENDER_LIMIT` are counted explicitly rather
    than silently dropped.
    """
    lines = [
        f"cross-SUT validation: {report.queries_checked} query "
        f"templates, {report.executions} executions",
        f"result: {'OK — systems agree' if report.ok else 'MISMATCHES'}",
    ]
    for mismatch in report.mismatches[:RENDER_LIMIT]:
        lines.append(f"  {mismatch.query} {mismatch.detail}: "
                     f"store={mismatch.store_rows} rows, "
                     f"engine={mismatch.engine_rows} rows, "
                     f"params={mismatch.params}")
        if mismatch.diff is not None:
            lines.append("    " + mismatch.diff.describe(
                "store", "engine").replace("\n", "\n    "))
    hidden = len(report.mismatches) - RENDER_LIMIT
    if hidden > 0:
        lines.append(f"  (+{hidden} more mismatches)")
    return "\n".join(lines)
