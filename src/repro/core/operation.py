"""The typed operation union of the unified SUT API.

A system under test executes exactly one method —
``execute(op: Operation) -> OperationResult`` — over three operation
shapes mirroring the workload's three operation classes (paper §3):

* :class:`ComplexRead` — a complex read-only query Q1–Q14;
* :class:`ShortRead` — a short lookup S1–S7 on one entity;
* :class:`Update` — one insert from the update stream.

:func:`as_operation` coerces the legacy shapes still produced by the
driver (``ReadOperation`` stream items, raw ``UpdateOperation`` values)
so connectors can accept both during the deprecation window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..datagen.update_stream import UpdateOperation
from ..workload.operations import EntityRef, ReadOperation


@dataclass(frozen=True)
class ComplexRead:
    """One complex read: query id and its parameter binding."""

    query_id: int
    params: object
    #: Seed for the short-read walk the connector runs on the result.
    walk_seed: int = 0

    @property
    def op_class(self) -> str:
        return f"Q{self.query_id}"


@dataclass(frozen=True)
class ShortRead:
    """One short read against a single entity."""

    query_id: int
    entity: EntityRef

    @property
    def op_class(self) -> str:
        return f"S{self.query_id}"


@dataclass(frozen=True)
class Update:
    """One transactional update from the update stream."""

    operation: UpdateOperation

    @property
    def op_class(self) -> str:
        return self.operation.kind.name


Operation = Union[ComplexRead, ShortRead, Update]


@dataclass(frozen=True)
class OperationResult:
    """What ``execute`` returns: the operation and its value.

    ``value`` holds the result rows for reads and ``None`` for updates.
    ``cached`` marks results served from the short-read memo without
    touching the SUT.
    """

    op_class: str
    value: object = None
    cached: bool = False


def as_operation(raw) -> Operation:
    """Coerce any legacy operation shape into the typed union."""
    if isinstance(raw, (ComplexRead, ShortRead, Update)):
        return raw
    if isinstance(raw, UpdateOperation):
        return Update(raw)
    if isinstance(raw, ReadOperation):
        return ComplexRead(raw.query_id, raw.params, raw.walk_seed)
    raise TypeError(f"unsupported operation {type(raw).__name__}")
