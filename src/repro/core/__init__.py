"""The SNB-Interactive benchmark core: orchestration, rules, reporting.

Gluing everything together the way the paper's "Rules and Metrics"
prescribe: generate the dataset, bulk-load the first 32 months, curate
query parameters, interleave the Table 4 query mix with the 4-month
update stream, play it against a system under test at a chosen
acceleration factor, and report sustained-acceleration + per-query
latencies (the full-disclosure breakdown).
"""

from .benchmark import BenchmarkConfig, BenchmarkReport, InteractiveBenchmark
from .connector import InteractiveConnector
from .operation import (
    ComplexRead,
    Operation,
    OperationResult,
    ShortRead,
    Update,
    as_operation,
)
from .report import render_report
from .sut import BaseSUT, EngineSUT, StoreSUT, SystemUnderTest
from .validation import (
    Mismatch,
    ValidationReport,
    cross_validate,
    render_validation,
)

__all__ = [
    "BaseSUT",
    "BenchmarkConfig",
    "BenchmarkReport",
    "ComplexRead",
    "EngineSUT",
    "InteractiveBenchmark",
    "InteractiveConnector",
    "Mismatch",
    "Operation",
    "OperationResult",
    "ShortRead",
    "StoreSUT",
    "SystemUnderTest",
    "Update",
    "as_operation",
    "ValidationReport",
    "cross_validate",
    "render_report",
    "render_validation",
]
