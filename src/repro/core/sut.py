"""System-under-test adapters.

The benchmark core is SUT-agnostic: any object implementing
``execute(op: Operation) -> OperationResult`` can be measured.  Two
built-in SUTs mirror the paper's evaluation: the native-API graph store
(Sparksee's role) and the relational engine with explicit plans
(Virtuoso's role).

Both extend :class:`BaseSUT`, which owns the dispatch over the typed
operation union and the telemetry span bracketing; subclasses implement
the three private hooks.  The historical ``run_complex`` /
``run_short`` / ``run_update`` deprecation shims are gone: ``execute``
over the typed operation union is the only entry point, and — via
:mod:`repro.net.codec` — its canonical serialized form on the wire.
"""

from __future__ import annotations

from typing import Protocol

from .. import telemetry
from ..datagen.update_stream import UpdateOperation
from ..engine.catalog import Catalog
from ..engine import snb_queries as engine_queries
from ..errors import WorkloadError
from ..queries.registry import COMPLEX_QUERIES, SHORT_QUERIES
from ..queries.updates import execute_update
from ..store.graph import GraphStore
from ..workload.operations import EntityRef
from .operation import (
    ComplexRead,
    Operation,
    OperationResult,
    ShortRead,
    Update,
    as_operation,
)


class SystemUnderTest(Protocol):
    """What the benchmark requires of a system."""

    name: str

    def execute(self, op: Operation) -> OperationResult:
        """Execute one operation of any class; returns its result."""
        ...


class BaseSUT:
    """Dispatch over the typed operation union, with span bracketing.

    In-process SUTs satisfy the connector contract directly (that is
    what lets :class:`repro.net.client.RemoteConnector` stand in for
    one): full read support, local, nothing to release on ``close``.
    """

    name = "base"
    supports_reads = True
    is_remote = False

    def execute(self, op: Operation) -> OperationResult:
        op = as_operation(op)
        if isinstance(op, ComplexRead):
            label = f"query.Q{op.query_id}"
        elif isinstance(op, ShortRead):
            label = f"query.S{op.query_id}"
        elif isinstance(op, Update):
            label = f"update.{op.operation.kind.name}"
        else:  # pragma: no cover - as_operation already rejects these
            raise TypeError(f"unsupported operation {type(op).__name__}")
        if telemetry.active:
            with telemetry.span(label, sut=self.name):
                value = self._run(op)
        else:
            value = self._run(op)
        return OperationResult(op.op_class, value)

    def _run(self, op: Operation):
        if isinstance(op, ComplexRead):
            return self._complex(op.query_id, op.params)
        if isinstance(op, ShortRead):
            return self._short(op.query_id, op.entity)
        self._update(op.operation)
        return None

    # -- subclass hooks ----------------------------------------------------

    def _complex(self, query_id: int, params: object):
        raise NotImplementedError

    def _short(self, query_id: int, entity: EntityRef):
        raise NotImplementedError

    def _update(self, operation: UpdateOperation) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """In-process SUTs hold no external resources."""


class StoreSUT(BaseSUT):
    """The MVCC property-graph store (native-API implementation)."""

    name = "graph-store"

    def __init__(self, store: GraphStore) -> None:
        self.store = store

    @classmethod
    def for_network(cls, network) -> "StoreSUT":
        """A fresh store SUT bulk-loaded with a generated network."""
        from ..store.loader import load_network

        return cls(load_network(network))

    def _complex(self, query_id: int, params: object):
        entry = COMPLEX_QUERIES.get(query_id)
        if entry is None:
            raise WorkloadError(f"unknown complex query Q{query_id}")
        with self.store.transaction() as txn:
            return entry.run(txn, params)

    def _short(self, query_id: int, entity: EntityRef):
        entry = SHORT_QUERIES.get(query_id)
        if entry is None:
            raise WorkloadError(f"unknown short query S{query_id}")
        with self.store.transaction() as txn:
            return entry.run(txn, entity.id)

    def _update(self, operation: UpdateOperation) -> None:
        execute_update(self.store, operation)


class EngineSUT(BaseSUT):
    """The relational volcano engine (explicit-plan implementation)."""

    name = "relational-engine"

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    @classmethod
    def for_network(cls, network) -> "EngineSUT":
        """A fresh engine SUT bulk-loaded with a generated network."""
        from ..engine.catalog import load_catalog

        return cls(load_catalog(network))

    def _complex(self, query_id: int, params: object):
        run = engine_queries.ENGINE_COMPLEX.get(query_id)
        if run is None:
            raise WorkloadError(f"unknown complex query Q{query_id}")
        return run(self.catalog, params)

    def _short(self, query_id: int, entity: EntityRef):
        run = engine_queries.ENGINE_SHORT.get(query_id)
        if run is None:
            raise WorkloadError(f"unknown short query S{query_id}")
        return run(self.catalog, entity.id)

    def _update(self, operation: UpdateOperation) -> None:
        engine_queries.execute_engine_update(self.catalog, operation)
