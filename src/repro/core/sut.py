"""System-under-test adapters.

The benchmark core is SUT-agnostic: any object implementing the three
``run_*`` methods can be measured.  Two built-in SUTs mirror the paper's
evaluation: the native-API graph store (Sparksee's role) and the
relational engine with explicit plans (Virtuoso's role).
"""

from __future__ import annotations

from typing import Protocol

from .. import telemetry
from ..datagen.update_stream import UpdateOperation
from ..engine.catalog import Catalog
from ..engine import snb_queries as engine_queries
from ..errors import WorkloadError
from ..queries.registry import COMPLEX_QUERIES, SHORT_QUERIES
from ..queries.updates import execute_update
from ..store.graph import GraphStore


class SystemUnderTest(Protocol):
    """What the benchmark requires of a system."""

    name: str

    def run_complex(self, query_id: int, params: object) -> object:
        """Execute one complex read; returns its result rows."""
        ...

    def run_short(self, query_id: int, entity: tuple[str, int]) -> object:
        """Execute one short read on a (kind, id) entity."""
        ...

    def run_update(self, operation: UpdateOperation) -> None:
        """Apply one update transactionally."""
        ...


class StoreSUT:
    """The MVCC property-graph store (native-API implementation)."""

    name = "graph-store"

    def __init__(self, store: GraphStore) -> None:
        self.store = store

    def run_complex(self, query_id: int, params: object) -> object:
        entry = COMPLEX_QUERIES.get(query_id)
        if entry is None:
            raise WorkloadError(f"unknown complex query Q{query_id}")
        if telemetry.active:
            with telemetry.span(f"query.Q{query_id}", sut=self.name):
                with self.store.transaction() as txn:
                    return entry.run(txn, params)
        with self.store.transaction() as txn:
            return entry.run(txn, params)

    def run_short(self, query_id: int, entity: tuple[str, int]) -> object:
        entry = SHORT_QUERIES.get(query_id)
        if entry is None:
            raise WorkloadError(f"unknown short query S{query_id}")
        if telemetry.active:
            with telemetry.span(f"query.S{query_id}", sut=self.name):
                with self.store.transaction() as txn:
                    return entry.run(txn, entity[1])
        with self.store.transaction() as txn:
            return entry.run(txn, entity[1])

    def run_update(self, operation: UpdateOperation) -> None:
        if telemetry.active:
            with telemetry.span(f"update.{operation.kind.name}",
                                sut=self.name):
                execute_update(self.store, operation)
            return
        execute_update(self.store, operation)


class EngineSUT:
    """The relational volcano engine (explicit-plan implementation)."""

    name = "relational-engine"

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def run_complex(self, query_id: int, params: object) -> object:
        run = engine_queries.ENGINE_COMPLEX.get(query_id)
        if run is None:
            raise WorkloadError(f"unknown complex query Q{query_id}")
        if telemetry.active:
            with telemetry.span(f"query.Q{query_id}", sut=self.name):
                return run(self.catalog, params)
        return run(self.catalog, params)

    def run_short(self, query_id: int, entity: tuple[str, int]) -> object:
        run = engine_queries.ENGINE_SHORT.get(query_id)
        if run is None:
            raise WorkloadError(f"unknown short query S{query_id}")
        if telemetry.active:
            with telemetry.span(f"query.S{query_id}", sut=self.name):
                return run(self.catalog, entity[1])
        return run(self.catalog, entity[1])

    def run_update(self, operation: UpdateOperation) -> None:
        if telemetry.active:
            with telemetry.span(f"update.{operation.kind.name}",
                                sut=self.name):
                engine_queries.execute_engine_update(self.catalog,
                                                     operation)
            return
        engine_queries.execute_engine_update(self.catalog, operation)
