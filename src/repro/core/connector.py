"""The connector contract, and the interactive-workload connector.

:class:`ConnectorProtocol` is the formal, runtime-checkable statement
of what every layer between the driver and a SUT implements: the
scheduler's retry loop, the fault injector, the differential oracle,
the remote wire client — all are connectors, all compose.  The
contract is ``execute`` plus ``close`` plus two capability flags:

* ``supports_reads`` — whether ``execute`` meaningfully runs read
  operations (the sleeping dummy and the raw store connector are
  update-only);
* ``is_remote`` — whether calls leave the process (so failures may be
  wire failures and timed-out attempts may still execute server-side).

:class:`InteractiveConnector` is the full-workload implementation:
updates pass straight through; complex reads additionally trigger the
short-read random walk seeded from their results, with each short read
timed into a dedicated recorder (the driver times the update/complex-read
operation itself).

Every operation — whatever legacy shape the driver hands over — is
coerced into the typed :mod:`repro.core.operation` union and dispatched
through the SUT's single ``execute`` entry point.  When a
:class:`~repro.cache.memo.ShortReadMemo` is attached, walk short reads
consult it first and updates invalidate the entities they touch.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from .. import telemetry
from ..driver.metrics import LatencyRecorder
from ..rng import RandomStream
from ..workload.operations import EntityRef, op_class_name
from ..workload.random_walk import (
    RandomWalkConfig,
    extract_entities,
    run_walk,
)
from .operation import ComplexRead, ShortRead, Update, as_operation
from .sut import SystemUnderTest


@runtime_checkable
class ConnectorProtocol(Protocol):
    """What the driver (and every wrapping layer) requires of a connector.

    ``isinstance`` checks member *presence* only; the capability flags
    are class attributes on every conforming implementation.
    """

    #: Whether ``execute`` meaningfully runs read operations.
    supports_reads: bool
    #: Whether calls leave the process (wire failures become possible).
    is_remote: bool

    def execute(self, operation) -> object:
        """Run one operation to completion (raising on failure)."""
        ...

    def close(self) -> None:
        """Release held resources (sockets, delegates); idempotent."""
        ...


class InteractiveConnector:
    """Dispatches driver operations to a system under test."""

    supports_reads = True
    is_remote = False

    def __init__(self, sut: SystemUnderTest,
                 walk: RandomWalkConfig | None = None,
                 seed: int = 0,
                 memo=None) -> None:
        self.sut = sut
        # Wrapping a RemoteConnector-as-SUT makes this connector remote.
        self.is_remote = bool(getattr(sut, "is_remote", False))
        self.walk = walk or RandomWalkConfig()
        self.seed = seed
        #: Optional ShortReadMemo consulted by the walk's short reads.
        self.memo = memo
        #: Short-read latencies, recorded per S-class.
        self.short_recorder = LatencyRecorder()
        self.short_reads_executed = 0

    def execute(self, operation) -> None:
        op = as_operation(operation)
        if telemetry.active:
            with telemetry.span("connector.execute",
                                operation=op_class_name(op)):
                self._dispatch(op)
        else:
            self._dispatch(op)

    def _dispatch(self, op) -> None:
        result = self.sut.execute(op)
        if isinstance(op, Update):
            if self.memo is not None:
                self.memo.note_update(op.operation)
            return
        if isinstance(op, ComplexRead):
            self._run_short_walk(op, result.value)

    def _run_short_walk(self, operation: ComplexRead,
                        result: object) -> None:
        seeds = extract_entities(result)
        if not seeds:
            return
        stream = RandomStream.for_key(self.seed, "walk",
                                      operation.walk_seed)
        self.short_reads_executed += run_walk(
            self._execute_short, seeds, self.walk, stream)

    def _execute_short(self, query_id: int, entity):
        ref = EntityRef.of(entity)
        started = time.perf_counter()
        if self.memo is not None:
            value, token = self.memo.begin(query_id, ref)
            if token is None:
                self.short_recorder.record(
                    f"S{query_id}", time.perf_counter() - started)
                return value
            value = self.sut.execute(ShortRead(query_id, ref)).value
            self.memo.put(query_id, ref, value, token)
        else:
            value = self.sut.execute(ShortRead(query_id, ref)).value
        self.short_recorder.record(f"S{query_id}",
                                   time.perf_counter() - started)
        return value

    def close(self) -> None:
        close = getattr(self.sut, "close", None)
        if callable(close):
            close()
