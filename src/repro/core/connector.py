"""Driver connector executing the full interactive workload on a SUT.

Updates pass straight through; complex reads additionally trigger the
short-read random walk seeded from their results, with each short read
timed into a dedicated recorder (the driver times the update/complex-read
operation itself).
"""

from __future__ import annotations

import time

from .. import telemetry
from ..datagen.update_stream import UpdateOperation
from ..driver.metrics import LatencyRecorder
from ..rng import RandomStream
from ..workload.operations import ReadOperation
from ..workload.random_walk import (
    RandomWalkConfig,
    extract_entities,
    run_walk,
)
from .sut import SystemUnderTest


class InteractiveConnector:
    """Dispatches driver operations to a system under test."""

    def __init__(self, sut: SystemUnderTest,
                 walk: RandomWalkConfig | None = None,
                 seed: int = 0) -> None:
        self.sut = sut
        self.walk = walk or RandomWalkConfig()
        self.seed = seed
        #: Short-read latencies, recorded per S-class.
        self.short_recorder = LatencyRecorder()
        self.short_reads_executed = 0

    def execute(self, operation) -> None:
        if telemetry.active:
            with telemetry.span("connector.execute",
                                operation=type(operation).__name__):
                self._dispatch(operation)
        else:
            self._dispatch(operation)

    def _dispatch(self, operation) -> None:
        if isinstance(operation, UpdateOperation):
            self.sut.run_update(operation)
            return
        if isinstance(operation, ReadOperation):
            result = self.sut.run_complex(operation.query_id,
                                          operation.params)
            self._run_short_walk(operation, result)
            return
        raise TypeError(f"unsupported operation {type(operation)}")

    def _run_short_walk(self, operation: ReadOperation,
                        result: object) -> None:
        seeds = extract_entities(result)
        if not seeds:
            return
        stream = RandomStream.for_key(self.seed, "walk",
                                      operation.walk_seed)

        def execute_short(query_id: int, entity: tuple[str, int]):
            started = time.perf_counter()
            short_result = self.sut.run_short(query_id, entity)
            self.short_recorder.record(f"S{query_id}",
                                       time.perf_counter() - started)
            return short_result

        self.short_reads_executed += run_walk(
            execute_short, seeds, self.walk, stream)
