"""Driver connector executing the full interactive workload on a SUT.

Updates pass straight through; complex reads additionally trigger the
short-read random walk seeded from their results, with each short read
timed into a dedicated recorder (the driver times the update/complex-read
operation itself).

Every operation — whatever legacy shape the driver hands over — is
coerced into the typed :mod:`repro.core.operation` union and dispatched
through the SUT's single ``execute`` entry point.  When a
:class:`~repro.cache.memo.ShortReadMemo` is attached, walk short reads
consult it first and updates invalidate the entities they touch.
"""

from __future__ import annotations

import time

from .. import telemetry
from ..driver.metrics import LatencyRecorder
from ..rng import RandomStream
from ..workload.operations import EntityRef, op_class_name
from ..workload.random_walk import (
    RandomWalkConfig,
    extract_entities,
    run_walk,
)
from .operation import ComplexRead, ShortRead, Update, as_operation
from .sut import SystemUnderTest


class InteractiveConnector:
    """Dispatches driver operations to a system under test."""

    def __init__(self, sut: SystemUnderTest,
                 walk: RandomWalkConfig | None = None,
                 seed: int = 0,
                 memo=None) -> None:
        self.sut = sut
        self.walk = walk or RandomWalkConfig()
        self.seed = seed
        #: Optional ShortReadMemo consulted by the walk's short reads.
        self.memo = memo
        #: Short-read latencies, recorded per S-class.
        self.short_recorder = LatencyRecorder()
        self.short_reads_executed = 0

    def execute(self, operation) -> None:
        op = as_operation(operation)
        if telemetry.active:
            with telemetry.span("connector.execute",
                                operation=op_class_name(op)):
                self._dispatch(op)
        else:
            self._dispatch(op)

    def _dispatch(self, op) -> None:
        result = self.sut.execute(op)
        if isinstance(op, Update):
            if self.memo is not None:
                self.memo.note_update(op.operation)
            return
        if isinstance(op, ComplexRead):
            self._run_short_walk(op, result.value)

    def _run_short_walk(self, operation: ComplexRead,
                        result: object) -> None:
        seeds = extract_entities(result)
        if not seeds:
            return
        stream = RandomStream.for_key(self.seed, "walk",
                                      operation.walk_seed)
        self.short_reads_executed += run_walk(
            self._execute_short, seeds, self.walk, stream)

    def _execute_short(self, query_id: int, entity):
        ref = EntityRef.of(entity)
        started = time.perf_counter()
        if self.memo is not None:
            value, token = self.memo.begin(query_id, ref)
            if token is None:
                self.short_recorder.record(
                    f"S{query_id}", time.perf_counter() - started)
                return value
            value = self.sut.execute(ShortRead(query_id, ref)).value
            self.memo.put(query_id, ref, value, token)
        else:
            value = self.sut.execute(ShortRead(query_id, ref)).value
        self.short_recorder.record(f"S{query_id}",
                                   time.perf_counter() - started)
        return value
