"""End-to-end SNB-Interactive benchmark orchestration.

Mirrors the paper's run procedure:

1. DATAGEN generates the three-year network;
2. the first 32 months are bulk-loaded into the SUT, the last 4 months
   become the transactional update stream;
3. parameters are curated from generation statistics;
4. the Table 4 query mix is interleaved into the update stream;
5. the driver plays the stream at the chosen acceleration factor;
6. the run reports sustained-acceleration status, throughput, and the
   per-query latency breakdown (the full-disclosure tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import telemetry
from ..cache import AdjacencyCache, CacheConfig, PlanCache, ShortReadMemo
from ..curation.curator import CuratedWorkloadParams, ParameterCurator
from ..datagen.config import DatagenConfig
from ..datagen.pipeline import generate
from ..datagen.stats import FrequencyStatistics
from ..datagen.update_stream import SplitDataset, split_network
from ..driver.clock import AS_FAST_AS_POSSIBLE
from ..driver.metrics import ClassStats, steady_state_ok
from ..driver.modes import ExecutionMode
from ..driver.scheduler import DriverConfig, WorkloadDriver
from ..engine.catalog import load_catalog
from ..errors import BenchmarkError
from ..schema.dataset import SocialNetwork
from ..store.loader import load_network
from ..workload.mix import QueryMix, build_mixed_stream
from ..workload.random_walk import RandomWalkConfig
from .connector import InteractiveConnector
from .sut import EngineSUT, StoreSUT, SystemUnderTest


@dataclass
class BenchmarkConfig:
    """Everything a benchmark run depends on."""

    num_persons: int = 300
    seed: int = 42
    #: "store" (native graph API) or "engine" (relational plans).
    sut: str = "store"
    acceleration: float = AS_FAST_AS_POSSIBLE
    num_partitions: int = 4
    mode: ExecutionMode = ExecutionMode.SEQUENTIAL
    bindings_per_query: int = 10
    walk: RandomWalkConfig = field(default_factory=RandomWalkConfig)
    #: Complex-read frequencies; None → the paper's Table 4.
    frequencies: dict[int, int] | None = None
    #: Use uniform random parameters instead of curated ones (the
    #: Fig. 5 baseline).
    uniform_parameters: bool = False
    #: Hot-path caching layer; off by default (the seed behaviour).
    cache: CacheConfig = field(default_factory=CacheConfig.none)
    #: ``host:port`` of a ``repro serve`` instance; when set, the
    #: driver executes over the wire instead of loading a local SUT
    #: (the server must be loaded with the same persons/seed for
    #: digests to agree).
    remote: str | None = None
    #: > 0 partitions the store SUT across this many worker processes
    #: behind the shard router (``--shards``); 0 keeps the store
    #: in-process.
    shards: int = 0


@dataclass
class BenchmarkReport:
    """Full-disclosure outcome of one run."""

    sut_name: str
    acceleration_target: float
    wall_seconds: float
    operations: int
    throughput: float
    complex_stats: dict[str, ClassStats]
    short_stats: dict[str, ClassStats]
    update_stats: dict[str, ClassStats]
    short_reads: int
    late_fraction: float
    #: Whether p99 complex-read latency stayed stable (run validity).
    steady_state: bool
    #: Whether the run kept up with the target acceleration.
    sustained: bool
    #: One :meth:`repro.cache.CacheStats.as_row` dict per active cache.
    cache_stats: list[dict] = field(default_factory=list)

    def mean_latency_row(self, stats: dict[str, ClassStats],
                         prefix: str, count: int) -> list[float]:
        """Mean latencies in ms ordered Q1..Qn / S1..Sn (0 if absent)."""
        row = []
        for index in range(1, count + 1):
            entry = stats.get(f"{prefix}{index}")
            row.append(entry.mean_ms if entry else 0.0)
        return row


class InteractiveBenchmark:
    """Prepares and runs the SNB-Interactive workload on one SUT."""

    def __init__(self, config: BenchmarkConfig) -> None:
        self.config = config
        self.network: SocialNetwork | None = None
        self.split: SplitDataset | None = None
        self.params: CuratedWorkloadParams | None = None
        self.sut: SystemUnderTest | None = None
        self.stream: list | None = None
        self.connector: InteractiveConnector | None = None

    # -- preparation -------------------------------------------------------

    def prepare(self) -> None:
        """Generate, split, bulk-load, curate, and build the op stream."""
        config = self.config
        datagen = DatagenConfig(num_persons=config.num_persons,
                                seed=config.seed)
        self.network = generate(datagen)
        self.split = split_network(self.network)
        self.sut = self._load_sut(self.split.bulk)
        stats = FrequencyStatistics.of(self.network)
        curator = ParameterCurator(self.network, stats, seed=config.seed)
        self.params = curator.curate(config.bindings_per_query,
                                     uniform=config.uniform_parameters)
        mix = QueryMix(config.frequencies)
        self.stream = build_mixed_stream(self.split.updates, self.params,
                                         mix, walk_seed=config.seed)
        memo = ShortReadMemo(config.cache.memo_max_entries) \
            if config.cache.memo else None
        self.connector = InteractiveConnector(self.sut, config.walk,
                                              seed=config.seed, memo=memo)

    def _load_sut(self, bulk: SocialNetwork) -> SystemUnderTest:
        if self.config.remote is not None:
            # The wire client is a SUT: execute(op) -> OperationResult.
            # The server owns the bulk-loaded state; nothing is loaded
            # locally.
            from ..net.client import RemoteConnector

            return RemoteConnector.parse(self.config.remote)
        cache = self.config.cache
        if self.config.shards > 0:
            if self.config.sut != "store":
                raise BenchmarkError(
                    "--shards partitions the graph store; combine it "
                    "with --sut store")
            from ..shard import ShardedStoreSUT

            return ShardedStoreSUT.for_network(bulk, self.config.shards)
        if self.config.sut == "store":
            store = load_network(bulk)
            if cache.adjacency:
                store.adjacency_cache = AdjacencyCache(
                    cache.adjacency_max_entries)
                # The packed-adjacency BFS fast path rides the same
                # cache switch (it is the adjacency cache's whole-label
                # counterpart, invalidated by edge-append counters).
                from ..store.csr import CSRCache

                store.csr_cache = CSRCache()
            return StoreSUT(store)
        if self.config.sut == "engine":
            catalog = load_catalog(bulk)
            if cache.plan:
                catalog.plan_cache = PlanCache(cache.plan_max_entries)
            return EngineSUT(catalog)
        raise BenchmarkError(f"unknown SUT {self.config.sut!r}")

    def cache_stats(self) -> list:
        """CacheStats of every cache active in this run."""
        stats = []
        sut = self.sut
        if isinstance(sut, StoreSUT) \
                and sut.store.adjacency_cache is not None:
            stats.append(sut.store.adjacency_cache.stats)
        if isinstance(sut, EngineSUT) \
                and sut.catalog.plan_cache is not None:
            stats.append(sut.catalog.plan_cache.stats)
        if self.connector is not None \
                and self.connector.memo is not None:
            stats.append(self.connector.memo.stats)
        return stats

    def final_state_digest(self) -> str:
        """Canonical digest of the SUT's state after the run.

        The remote/in-process equivalence oracle: a loopback ``--remote``
        run against a server loaded with the same (persons, seed) must
        report the byte-identical digest an in-process run reports.
        """
        from ..validation.snapshot import (
            snapshot_catalog,
            snapshot_digest,
            snapshot_store,
        )

        sut = self.sut
        if sut is None:
            raise BenchmarkError("run the benchmark before digesting")
        digest = getattr(sut, "digest", None)
        if callable(digest):  # the remote client's admin round-trip
            return digest()
        if isinstance(sut, StoreSUT):
            return snapshot_digest(snapshot_store(sut.store))
        if isinstance(sut, EngineSUT):
            return snapshot_digest(snapshot_catalog(sut.catalog))
        raise BenchmarkError(
            f"no digest strategy for SUT {type(sut).__name__}")

    def close(self) -> None:
        """Release SUT resources (shard workers, wire connections)."""
        close = getattr(self.sut, "close", None)
        if callable(close):
            close()

    # -- the measured run ---------------------------------------------------

    def run(self) -> BenchmarkReport:
        """Play the mixed stream through the driver; build the report."""
        if self.stream is None:
            self.prepare()
        config = self.config
        driver_config = DriverConfig(
            num_partitions=config.num_partitions,
            mode=config.mode,
            acceleration=config.acceleration,
        )
        driver = WorkloadDriver(self.connector, driver_config)
        report = driver.run(self.stream)
        per_class = report.metrics.per_class
        complex_stats = {name: stats for name, stats in per_class.items()
                        if name.startswith("Q")}
        update_stats = {name: stats for name, stats in per_class.items()
                        if name.startswith("ADD_")}
        short_stats = self.connector.short_recorder.stats()
        p99_series = []
        for name in complex_stats:
            p99_series.extend(
                driver.recorder.p99_series(name, window_seconds=2.0))
        cache_rows = []
        for stats in self.cache_stats():
            if telemetry.active:
                stats.publish(telemetry.get_registry())
            cache_rows.append(stats.as_row())
        return BenchmarkReport(
            sut_name=self.sut.name,
            acceleration_target=config.acceleration,
            wall_seconds=report.metrics.wall_seconds,
            operations=report.metrics.operations,
            throughput=report.metrics.throughput,
            complex_stats=complex_stats,
            short_stats=short_stats,
            update_stats=update_stats,
            short_reads=self.connector.short_reads_executed,
            late_fraction=report.metrics.late_fraction,
            steady_state=steady_state_ok(p99_series),
            sustained=report.metrics.late_fraction < 0.05,
            cache_stats=cache_rows,
        )
