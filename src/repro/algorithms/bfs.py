"""Breadth-first search (the Graph-500-style kernel the paper cites)."""

from __future__ import annotations

from collections import deque

from ..rng import RandomStream


def bfs_levels(adjacency: dict[int, set[int]], source: int,
               ) -> dict[int, int]:
    """Node → BFS level from ``source`` (source at level 0)."""
    levels = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in levels:
                levels[neighbor] = levels[node] + 1
                frontier.append(neighbor)
    return levels


def graph500_bfs_sample(adjacency: dict[int, set[int]], num_roots: int,
                        seed: int = 0) -> list[tuple[int, int, int]]:
    """Graph-500-style BFS sweep: random roots, report coverage.

    Returns ``(root, reached nodes, eccentricity)`` per root — the
    traversed-edges-per-second kernel the paper mentions Graph-500
    measures, minus the timing (the bench adds that).
    """
    nodes = sorted(adjacency)
    stream = RandomStream.for_key(seed, "graph500-roots")
    results = []
    for __ in range(num_roots):
        root = nodes[stream.randint(0, len(nodes) - 1)]
        levels = bfs_levels(adjacency, root)
        results.append((root, len(levels),
                        max(levels.values()) if levels else 0))
    return results
