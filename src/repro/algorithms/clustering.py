"""Clustering coefficients of the friendship graph.

The generator's homophily passes should produce clustering well above a
degree-matched random graph — the "community-like structure" property
the paper cites [13] as DATAGEN's distinguishing realism.
"""

from __future__ import annotations


def local_clustering(adjacency: dict[int, set[int]], node: int) -> float:
    """Fraction of a node's neighbor pairs that are themselves linked."""
    friends = adjacency[node]
    k = len(friends)
    if k < 2:
        return 0.0
    links = 0
    friend_list = sorted(friends)
    for i, a in enumerate(friend_list):
        neighbors_of_a = adjacency[a]
        for b in friend_list[i + 1:]:
            if b in neighbors_of_a:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(adjacency: dict[int, set[int]]) -> float:
    """Mean local clustering coefficient over all nodes."""
    if not adjacency:
        return 0.0
    total = sum(local_clustering(adjacency, node) for node in adjacency)
    return total / len(adjacency)
