"""PageRank over the friendship graph (power iteration)."""

from __future__ import annotations

from ..errors import ReproError


def pagerank(adjacency: dict[int, set[int]], damping: float = 0.85,
             max_iterations: int = 100, tolerance: float = 1e-8,
             ) -> dict[int, float]:
    """PageRank scores summing to 1.0.

    Standard power iteration with uniform teleport; dangling nodes
    (no friends) redistribute their mass uniformly.  Converges when the
    L1 change drops below ``tolerance``.
    """
    if not adjacency:
        return {}
    if not 0.0 < damping < 1.0:
        raise ReproError(f"damping must be in (0,1), got {damping}")
    n = len(adjacency)
    rank = {node: 1.0 / n for node in adjacency}
    base = (1.0 - damping) / n
    for __ in range(max_iterations):
        dangling_mass = sum(rank[node] for node, friends
                            in adjacency.items() if not friends)
        next_rank = {node: base + damping * dangling_mass / n
                     for node in adjacency}
        for node, friends in adjacency.items():
            if not friends:
                continue
            share = damping * rank[node] / len(friends)
            for friend in friends:
                next_rank[friend] += share
        change = sum(abs(next_rank[node] - rank[node])
                     for node in adjacency)
        rank = next_rank
        if change < tolerance:
            break
    return rank
