"""SNB-Algorithms workload preview (paper §1, third workload).

"SNB-Algorithms ... is planned to consist of a handful of often-used
graph analysis algorithms, including PageRank, Community Detection,
Clustering and Breadth First Search."  The workload was under
construction when the paper was published; this package implements the
four named algorithms over the *knows* graph of a generated network, so
all three SNB workloads can run on one dataset as the paper intends
("we specifically aim to run all three benchmarks on the same dataset").

All algorithms are pure Python over an adjacency-set view
(:func:`knows_graph`); the test suite cross-validates them against
networkx.
"""

from .graph_view import knows_graph
from .bfs import bfs_levels, graph500_bfs_sample
from .clustering import average_clustering, local_clustering
from .community import community_sizes, label_propagation
from .pagerank import pagerank

__all__ = [
    "average_clustering",
    "bfs_levels",
    "community_sizes",
    "graph500_bfs_sample",
    "knows_graph",
    "label_propagation",
    "local_clustering",
    "pagerank",
]
