"""Community detection via label propagation.

The classic semi-synchronous label propagation algorithm: every node
adopts the most frequent label among its neighbors until a fixed point
(or iteration cap).  Deterministic given the seed: nodes are visited in
a seeded shuffle order each round, ties broken by the smallest label.
"""

from __future__ import annotations

from collections import Counter

from ..rng import RandomStream


def label_propagation(adjacency: dict[int, set[int]],
                      max_iterations: int = 50,
                      seed: int = 0) -> dict[int, int]:
    """Node → community label (labels are representative node ids)."""
    labels = {node: node for node in adjacency}
    order = sorted(adjacency)
    stream = RandomStream.for_key(seed, "label-propagation")
    for __ in range(max_iterations):
        stream.shuffle(order)
        changed = 0
        for node in order:
            friends = adjacency[node]
            if not friends:
                continue
            counts = Counter(labels[f] for f in friends)
            top = max(counts.values())
            best = min(label for label, count in counts.items()
                       if count == top)
            if best != labels[node]:
                labels[node] = best
                changed += 1
        if changed == 0:
            break
    return labels


def community_sizes(labels: dict[int, int]) -> dict[int, int]:
    """Community label → member count, largest first."""
    counts = Counter(labels.values())
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))
