"""Adjacency view over the *knows* graph of a network."""

from __future__ import annotations

from ..schema.dataset import SocialNetwork


def knows_graph(network: SocialNetwork) -> dict[int, set[int]]:
    """Person id → set of friend ids (every person present, even
    isolated ones)."""
    adjacency: dict[int, set[int]] = {p.id: set()
                                      for p in network.persons}
    for edge in network.knows:
        adjacency[edge.person1_id].add(edge.person2_id)
        adjacency[edge.person2_id].add(edge.person1_id)
    return adjacency
