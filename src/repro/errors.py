"""Exception hierarchy for the SNB Interactive reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.  Subsystems
define narrower classes below; modules should raise the most specific type
that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TransientError(ReproError):
    """Marker: a failure that is expected to clear on retry.

    Deadlock-victim aborts, snapshot write-write conflicts and injected
    chaos aborts are transient: the LDBC driver treats them as normal
    events and replays the operation.  The scheduler's retry policy
    retries *only* exceptions classified transient (this marker, plus
    the conventional OS-level ``ConnectionError`` / ``TimeoutError``).
    """


class FatalSUTError(ReproError):
    """Marker: the system under test failed unrecoverably.

    Never retried, regardless of the retry budget: retrying a fatal
    error only delays surfacing it (and can mask data loss).
    """


class SchemaError(ReproError):
    """An entity or relation violates the SNB schema."""


class DatagenError(ReproError):
    """The data generator was configured or driven incorrectly."""


class StoreError(ReproError):
    """Base class for graph-store errors."""


class TransactionError(StoreError):
    """A transaction could not proceed (conflict, aborted, misuse)."""


class WriteConflictError(TransactionError, TransientError):
    """First-committer-wins conflict under snapshot isolation.

    Also a :class:`TransientError`: the losing transaction can simply
    run again against the newer snapshot, which is exactly what the
    driver's retry policy does.
    """


class TransactionStateError(TransactionError):
    """Operation on a transaction in the wrong state (e.g. after commit)."""


class NotFoundError(StoreError):
    """A vertex, edge or index entry does not exist."""


class DuplicateError(StoreError):
    """An entity with the same key already exists."""


class ShardError(StoreError):
    """Base class for sharded-store (router/worker) errors."""


class ShardTimeoutError(ShardError, TransientError):
    """A shard worker did not answer within the router's budget.

    Transient: the worker is serial, so its (late) response is drained
    and the retried operation is deduplicated by op key — the retry can
    never double-apply.
    """


class ShardConnectionError(ShardError, FatalSUTError):
    """A shard worker process died or its pipe closed.

    Fatal: without supervision (no per-shard WAL to replay) a lost
    shard means lost state, and with supervision it is raised only
    once the restart budget is exhausted — either way retrying cannot
    recover it.  The payload identifies the failure precisely: which
    shard died, the stable op key of the request that was in flight
    (``None`` for reads and control-plane RPCs), and how many requests
    were queued against the shard at the time.
    """

    def __init__(self, message: str, *, shard_index: int | None = None,
                 op_key: str | None = None,
                 pending: int | None = None) -> None:
        detail = []
        if shard_index is not None:
            detail.append(f"shard={shard_index}")
        if op_key is not None:
            detail.append(f"op_key={op_key}")
        if pending is not None:
            detail.append(f"pending={pending}")
        if detail:
            message = f"{message} [{' '.join(detail)}]"
        super().__init__(message)
        self.shard_index = shard_index
        self.op_key = op_key
        self.pending = pending


class ShardRecoveringError(ShardError, TransientError):
    """A shard worker died and its supervised recovery is in progress.

    Transient: the supervisor is respawning the worker and replaying
    its WAL; the retried operation lands once recovery completes and
    the per-shard applied-table keeps the retry exactly-once.
    """

    def __init__(self, message: str,
                 *, shard_index: int | None = None) -> None:
        super().__init__(message)
        self.shard_index = shard_index


class EngineError(ReproError):
    """Base class for relational-engine errors."""


class PlanError(EngineError):
    """A logical or physical plan is malformed."""


class CurationError(ReproError):
    """Parameter curation failed (e.g. not enough distinct bindings)."""


class DriverError(ReproError):
    """The workload driver was misconfigured or violated a dependency."""


class DependencyViolationError(DriverError):
    """An operation executed before one of its dependencies completed."""


class OperationTimeoutError(DriverError, TransientError):
    """An operation attempt exceeded its wall-clock budget.

    Raised by the resilience policy's watchdog.  Transient: the attempt
    is abandoned and the operation may be retried within its remaining
    per-operation budget.
    """


class WorkloadError(ReproError):
    """Workload definition or query-mix configuration error."""


class BenchmarkError(ReproError):
    """Benchmark orchestration error (invalid run rules, missing data)."""
