"""Deterministic, splittable random number generation.

The paper stresses that DATAGEN output is *deterministic regardless of the
Hadoop configuration* (number of nodes / mappers / reducers).  We obtain the
same property by never sharing one sequential RNG across entities: every
random decision is made by a stream keyed on ``(seed, purpose, entity id)``.
Re-partitioning the work across workers then cannot change which stream any
decision draws from.

The implementation uses SplitMix64 to hash keys into a 64-bit seed and a
small xoshiro256** generator for the stream itself.  Both are well-known,
compact, and fully reproducible across platforms (pure integer arithmetic).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, TypeVar

_MASK64 = (1 << 64) - 1

T = TypeVar("T")


def splitmix64(state: int) -> tuple[int, int]:
    """Advance a SplitMix64 state; return ``(new_state, output)``."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return state, z


def mix_key(*parts: int | str) -> int:
    """Hash a heterogeneous key tuple into a single 64-bit value.

    Strings are folded byte-by-byte so the result does not depend on
    Python's randomized ``hash()``.
    """
    state = 0x8BADF00D_DEADBEEF
    for part in parts:
        if isinstance(part, str):
            for byte in part.encode("utf-8"):
                state, _ = splitmix64(state ^ byte)
        else:
            state, _ = splitmix64(state ^ (part & _MASK64))
    _, out = splitmix64(state)
    return out


class RandomStream:
    """A small, fast, deterministic random stream (xoshiro256**).

    The API mirrors the parts of :class:`random.Random` the generator
    needs, plus a few distribution helpers used throughout DATAGEN.
    """

    __slots__ = ("_s0", "_s1", "_s2", "_s3")

    def __init__(self, seed: int) -> None:
        state = seed & _MASK64
        state, self._s0 = splitmix64(state)
        state, self._s1 = splitmix64(state)
        state, self._s2 = splitmix64(state)
        state, self._s3 = splitmix64(state)

    @classmethod
    def for_key(cls, *parts: int | str) -> "RandomStream":
        """Build a stream keyed on an arbitrary tuple (seed, purpose, id...)."""
        return cls(mix_key(*parts))

    def next_u64(self) -> int:
        """Return the next raw 64-bit output."""
        s0, s1, s2, s3 = self._s0, self._s1, self._s2, self._s3
        result = ((s1 * 5) & _MASK64)
        result = (((result << 7) | (result >> 57)) & _MASK64)
        result = (result * 9) & _MASK64
        t = (s1 << 17) & _MASK64
        s2 ^= s0
        s3 ^= s1
        s1 ^= s2
        s0 ^= s3
        s2 ^= t
        s3 = ((s3 << 45) | (s3 >> 19)) & _MASK64
        self._s0, self._s1, self._s2, self._s3 = s0, s1, s2, s3
        return result

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.next_u64() % len(seq)]

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements (order of discovery)."""
        n = len(seq)
        if k > n:
            raise ValueError(f"sample size {k} exceeds population {n}")
        picked: list[T] = []
        chosen: set[int] = set()
        while len(picked) < k:
            idx = self.next_u64() % n
            if idx not in chosen:
                chosen.add(idx)
                picked.append(seq[idx])
        return picked

    def shuffle(self, items: list[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_u64() % (i + 1)
            items[i], items[j] = items[j], items[i]

    def geometric(self, p: float) -> int:
        """Number of failures before the first success; support ``{0,1,..}``."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"geometric probability must be in (0,1], got {p}")
        if p == 1.0:
            return 0
        u = self.random()
        # Guard against log(0).
        u = max(u, 1e-300)
        return int(math.log(u) / math.log(1.0 - p))

    def exponential(self, mean: float) -> float:
        """Exponentially distributed float with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        u = max(self.random(), 1e-300)
        return -mean * math.log(u)

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Index in ``[0, n)`` following an (approximate) Zipf law.

        Uses the inverse-CDF of the continuous bounded Pareto approximation,
        which is accurate enough for dictionary-rank selection and O(1).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if n == 1:
            return 0
        if skew == 1.0:
            # Harmonic-law inverse: rank ~ exp(U * ln(n+1)) - 1
            u = self.random()
            rank = math.exp(u * math.log(n + 1.0)) - 1.0
        else:
            one_minus = 1.0 - skew
            u = self.random()
            hi = (n + 1.0) ** one_minus
            rank = (u * (hi - 1.0) + 1.0) ** (1.0 / one_minus) - 1.0
        idx = int(rank)
        return min(max(idx, 0), n - 1)

    def weighted_choice(self, weights: Sequence[float]) -> int:
        """Pick an index with probability proportional to its weight."""
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        target = self.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if target < acc:
                return i
        return len(weights) - 1


class ZipfSampler:
    """Table-driven Zipf-rank sampler: O(1) per draw.

    Precomputes the inverse CDF of :meth:`RandomStream.zipf_index` at a
    fixed resolution; each draw costs one raw u64 plus a table lookup.
    Used on hot paths (message text generation draws millions of
    Zipf-ranked words).
    """

    __slots__ = ("n", "table")

    def __init__(self, n: int, skew: float = 1.0,
                 resolution: int = 1024) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        table = []
        for i in range(resolution):
            u = (i + 0.5) / resolution
            if n == 1:
                rank = 0.0
            elif skew == 1.0:
                rank = math.exp(u * math.log(n + 1.0)) - 1.0
            else:
                one_minus = 1.0 - skew
                hi = (n + 1.0) ** one_minus
                rank = (u * (hi - 1.0) + 1.0) ** (1.0 / one_minus) - 1.0
            table.append(min(max(int(rank), 0), n - 1))
        self.table = table

    def sample(self, stream: RandomStream) -> int:
        """Draw one Zipf-distributed index in ``[0, n)``."""
        table = self.table
        return table[stream.next_u64() % len(table)]


def interleave_streams(streams: Iterable[RandomStream], n: int) -> list[int]:
    """Draw ``n`` values round-robin from the given streams (test helper)."""
    outputs: list[int] = []
    pool = list(streams)
    i = 0
    while len(outputs) < n:
        outputs.append(pool[i % len(pool)].next_u64())
        i += 1
    return outputs
