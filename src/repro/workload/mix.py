"""The SNB-Interactive query mix (paper Table 4).

"the definition of the query mix is done by setting relative frequencies
of read queries (e.g., Query 1 should be performed once in every 132
update operations)".  :data:`TABLE4_FREQUENCIES` is the paper's Table 4
verbatim; :func:`build_mixed_stream` interleaves complex reads into an
update stream at those frequencies, giving each read a due time (and thus
a position on the simulation timeline) right after the update it trails.
"""

from __future__ import annotations

from ..curation.curator import CuratedWorkloadParams
from ..datagen.update_stream import UpdateOperation
from ..errors import WorkloadError
from .operations import ReadOperation

#: Paper Table 4: number of update operations per execution of each
#: complex read-only query.
TABLE4_FREQUENCIES: dict[int, int] = {
    1: 132, 2: 240, 3: 550, 4: 161, 5: 534, 6: 1615, 7: 144, 8: 13,
    9: 1425, 10: 217, 11: 133, 12: 238, 13: 57, 14: 144,
}


class QueryMix:
    """Relative complex-read frequencies plus iteration helpers."""

    def __init__(self, frequencies: dict[int, int] | None = None) -> None:
        self.frequencies = dict(frequencies or TABLE4_FREQUENCIES)
        for query_id, frequency in self.frequencies.items():
            if frequency < 1:
                raise WorkloadError(
                    f"frequency for Q{query_id} must be >= 1")

    def due_queries(self, update_index: int) -> list[int]:
        """Complex queries scheduled at this update position (1-based)."""
        if update_index <= 0:
            return []
        return [query_id for query_id, frequency
                in sorted(self.frequencies.items())
                if update_index % frequency == 0]

    def executions_in(self, num_updates: int) -> dict[int, int]:
        """Expected execution counts of each query over a stream."""
        return {query_id: num_updates // frequency
                for query_id, frequency in self.frequencies.items()}

    def reads_per_update(self) -> float:
        """Average complex reads interleaved per update operation."""
        return sum(1.0 / f for f in self.frequencies.values())


def build_mixed_stream(updates: list[UpdateOperation],
                       params: CuratedWorkloadParams,
                       mix: QueryMix | None = None,
                       walk_seed: int = 0) -> list:
    """Interleave complex reads into an update stream (due-time order).

    Query *i* fires after every ``frequencies[i]``-th update, with a due
    time one millisecond after that update, cycling through its curated
    parameter bindings.
    """
    mix = mix or QueryMix()
    cursor: dict[int, int] = {query_id: 0 for query_id in mix.frequencies}
    combined: list = []
    for index, update in enumerate(updates, start=1):
        combined.append(update)
        for query_id in mix.due_queries(index):
            bindings = params.by_query.get(query_id)
            if not bindings:
                raise WorkloadError(
                    f"no parameter bindings for Q{query_id}")
            binding = bindings[cursor[query_id] % len(bindings)]
            cursor[query_id] += 1
            combined.append(ReadOperation(
                query_id=query_id,
                params=binding,
                due_time=update.due_time + 1,
                walk_seed=walk_seed + index))
    # A read trailing update k by 1 ms can land past update k+1's due
    # time; re-sort (stable, so reads stay after their anchor update) to
    # keep every partition's stream monotone in T_DUE.
    combined.sort(key=lambda op: op.due_time)
    return combined
