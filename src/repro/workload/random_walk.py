"""Short-read random walk (paper §4, "Simple read-only queries").

"We connect simple with complex read-only queries using a random walk:
results of the latter queries (typically a small set of users or posts)
become input for simple read-only queries, where Profile lookup provides
an input for Post lookup, and vice versa.  This chain of operations is
governed by two parameters: the probability to pick an element from the
previous iteration P, and the step Δ with which this probability is
decreased at every iteration."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import WorkloadError
from ..rng import RandomStream
from .operations import EntityRef


@dataclass(frozen=True)
class RandomWalkConfig:
    """The (P, Δ) pair governing the short-read chain."""

    probability: float = 0.8
    delta: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise WorkloadError("walk probability must be in [0,1]")
        if self.delta <= 0:
            raise WorkloadError("walk delta must be positive "
                                "(else the chain never terminates)")


#: Short queries applicable per entity kind (S1-S3 take persons,
#: S4-S7 take messages).
PERSON_SHORTS = (1, 2, 3)
MESSAGE_SHORTS = (4, 5, 6, 7)

_PERSON_ATTRS = ("person_id", "author_id", "liker_id",
                 "root_author_id", "moderator_id")
_MESSAGE_ATTRS = ("message_id", "comment_id", "root_post_id")

#: Per row class: which of the seed attributes it actually declares.
_attr_plans: dict[type, tuple[tuple[str, ...], tuple[str, ...]]] = {}


def _attr_plan(cls: type) -> tuple[tuple[str, ...], tuple[str, ...]]:
    plan = _attr_plans.get(cls)
    if plan is None:
        fields = getattr(cls, "__dataclass_fields__", None) \
            or getattr(cls, "_fields", None)
        if fields is None:
            # Unknown row shape: probe every attribute, as before.
            plan = (_PERSON_ATTRS, _MESSAGE_ATTRS)
        else:
            plan = (tuple(a for a in _PERSON_ATTRS if a in fields),
                    tuple(a for a in _MESSAGE_ATTRS if a in fields))
        _attr_plans[cls] = plan
    return plan


def extract_entities(result: object) -> list[EntityRef]:
    """Pull :class:`EntityRef` seeds out of any query result object.

    Works structurally over the result dataclasses: any attribute named
    ``person_id``/``author_id``/``liker_id`` seeds a profile lookup, any
    ``message_id``/``comment_id``/``post_id``-like attribute seeds a
    message lookup.
    """
    entities: list[EntityRef] = []
    rows = result if isinstance(result, (list, tuple)) else [result]
    for row in rows:
        if row is None:
            continue
        person_attrs, message_attrs = _attr_plan(row.__class__)
        for attribute in person_attrs:
            value = getattr(row, attribute, None)
            if isinstance(value, int):
                entities.append(EntityRef.person(value))
        for attribute in message_attrs:
            value = getattr(row, attribute, None)
            if isinstance(value, int):
                entities.append(EntityRef.message(value))
    return entities


def run_walk(execute_short: Callable[[int, EntityRef], object],
             seeds: list, config: RandomWalkConfig,
             stream: RandomStream,
             on_latency: Callable[[int, float], None] | None = None,
             ) -> int:
    """Run one short-read chain; returns the number of short reads.

    ``execute_short(query_id, ref)`` runs one short read on an
    :class:`EntityRef` and returns its result, whose entities feed the
    next step.  Legacy ``(kind, id)`` tuple seeds are coerced.  The chain
    terminates because P decreases by Δ every iteration.
    """
    probability = config.probability
    pool = [EntityRef.of(seed) for seed in seeds]
    executed = 0
    while pool and probability > 0:
        if stream.random() >= probability:
            break
        ref = pool[stream.randint(0, len(pool) - 1)]
        choices = PERSON_SHORTS if ref.is_person else MESSAGE_SHORTS
        query_id = choices[stream.randint(0, len(choices) - 1)]
        result = execute_short(query_id, ref)
        executed += 1
        next_entities = extract_entities(result)
        if next_entities:
            pool = next_entities
        probability -= config.delta
    return executed
