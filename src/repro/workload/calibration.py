"""Query-mix calibration (paper §4, "Query Mix" and "Scaling the workload").

Two jobs:

1. **Frequency calibration** — given measured mean runtimes, set each
   complex query's frequency (updates per execution) so the target CPU
   split holds: "10% of total runtime to be taken by update queries, 50%
   of time take complex read-only queries, and 40% for the simple
   read-only queries.  Within the corresponding shares of time, we make
   sure each query type takes approximately equal amount of CPU time."
2. **Frequency scaling** — complex reads cost ``O(D^h · log n)`` while
   updates/short reads cost ``O(log n)``; as the dataset grows the reads
   get relatively heavier, so their frequencies are reduced by the
   corresponding factor to keep the CPU split.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError
from ..queries.registry import COMPLEX_QUERIES

#: The paper's target CPU-time split.
TARGET_UPDATE_SHARE = 0.10
TARGET_COMPLEX_SHARE = 0.50
TARGET_SHORT_SHARE = 0.40


@dataclass
class CalibrationResult:
    """Output of frequency calibration."""

    frequencies: dict[int, int]
    #: Expected short reads to run per update operation.
    short_reads_per_update: float
    #: Walk probability achieving that rate (with the given Δ).
    walk_probability: float
    walk_delta: float


def calibrate_frequencies(complex_means: dict[int, float],
                          update_mean: float, short_mean: float,
                          walk_delta: float = 0.2) -> CalibrationResult:
    """Compute Table 4-style frequencies from measured runtimes.

    With update share 10%, the total budget per update is
    ``update_mean / 0.10``; each of the 14 complex queries receives an
    equal slice of the 50% complex budget, and query *i*'s frequency is
    how many updates pass between executions so its slice is respected.
    """
    if update_mean <= 0 or short_mean <= 0:
        raise WorkloadError("mean runtimes must be positive")
    total_per_update = update_mean / TARGET_UPDATE_SHARE
    complex_budget = total_per_update * TARGET_COMPLEX_SHARE
    per_query_budget = complex_budget / len(complex_means)
    frequencies = {}
    for query_id, mean in complex_means.items():
        if mean <= 0:
            raise WorkloadError(f"Q{query_id} mean must be positive")
        frequencies[query_id] = max(1, round(mean / per_query_budget))
    short_budget = total_per_update * TARGET_SHORT_SHARE
    short_per_update = short_budget / short_mean
    # Short reads ride on complex reads: per-update walk budget is split
    # over the expected number of complex reads per update.
    complex_per_update = sum(1.0 / f for f in frequencies.values())
    per_walk = short_per_update / max(complex_per_update, 1e-9)
    probability = solve_walk_probability(per_walk, walk_delta)
    return CalibrationResult(frequencies, short_per_update, probability,
                             walk_delta)


def expected_walk_length(probability: float, delta: float) -> float:
    """Expected short reads of one walk with parameters (P, Δ).

    The walk executes step ``k`` (0-based) iff every Bernoulli draw with
    probabilities P, P-Δ, ..., P-kΔ succeeded.
    """
    expected = 0.0
    survive = 1.0
    step = 0
    while True:
        p = probability - step * delta
        if p <= 0 or survive < 1e-12:
            break
        survive *= min(p, 1.0)
        expected += survive
        step += 1
    return expected


def solve_walk_probability(target_length: float, delta: float,
                           ) -> float:
    """Find P such that the expected walk length hits the target.

    Determined "experimentally for each supported scale factor" in the
    paper; here a bisection over the monotone expected-length function.
    Clamped to [0, 1] — the walk cannot produce more than ~1/Δ reads.
    """
    low, high = 0.0, 1.0
    if expected_walk_length(1.0, delta) <= target_length:
        return 1.0
    for __ in range(60):
        mid = (low + high) / 2
        if expected_walk_length(mid, delta) < target_length:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def scale_frequencies(frequencies: dict[int, int], old_persons: int,
                      new_persons: int, old_degree: float,
                      new_degree: float) -> dict[int, int]:
    """Rescale frequencies when moving to a different scale factor.

    A query touching ``h`` hops costs ``O(D^h · log n)``; updates cost
    ``O(log n)``.  The ratio of a query's cost to an update's is then
    ``D^h``, so frequencies grow with ``(new_D / old_D)^h`` — the reads
    are "reduced by the logarithmic factor as the scale factor grows".
    """
    if old_persons <= 1 or new_persons <= 1:
        raise WorkloadError("person counts must exceed 1")
    scaled = {}
    for query_id, frequency in frequencies.items():
        hops = COMPLEX_QUERIES[query_id].hops
        growth = (new_degree / old_degree) ** hops
        scaled[query_id] = max(1, round(frequency * growth))
    return scaled
