"""Read operations for the mixed workload stream.

The driver is operation-agnostic: anything exposing due/dependency times
and the Dependencies/Dependents flags schedules identically.  Reads
depend on nothing and nothing depends on them ("as they contain no
inter-dependencies, executing the read queries in parallel is trivial" —
paper §4.2), so both flags are off and the dependency metadata is zero.

This module is also home to the two pieces of operation *identity* shared
across layers:

* :class:`EntityRef` — the typed reference to a person/message entity
  that short reads take as input (and the short-read memo uses as key);
* :func:`op_class_name` — the one mapping from any operation object to
  its latency/span class label (``Q9``, ``S3``, ``ADD_POST``, ...), used
  by the driver scheduler, the connector spans and the telemetry metrics
  bridge so per-class labels agree everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

PERSON_KIND = "person"
MESSAGE_KIND = "message"


@dataclass(frozen=True, eq=False)
class EntityRef:
    """A typed, hashable reference to a workload entity.

    Replaces the raw ``(kind, id)`` tuples historically passed to short
    reads.  Hashable (so it doubles as the short-read memo key) and
    tuple-compatible for the transition: it unpacks (``kind, eid = ref``),
    indexes (``ref[1]``), and compares equal to the tuple it replaces.
    """

    kind: str
    id: int

    @classmethod
    def person(cls, entity_id: int) -> "EntityRef":
        return cls(PERSON_KIND, entity_id)

    @classmethod
    def message(cls, entity_id: int) -> "EntityRef":
        return cls(MESSAGE_KIND, entity_id)

    @classmethod
    def of(cls, value) -> "EntityRef":
        """Coerce an EntityRef or legacy ``(kind, id)`` tuple."""
        if isinstance(value, EntityRef):
            return value
        kind, entity_id = value
        return cls(kind, entity_id)

    @property
    def is_person(self) -> bool:
        return self.kind == PERSON_KIND

    def as_json(self) -> list:
        """JSON-able ``[kind, id]`` form (round-trips through :meth:`of`)."""
        return [self.kind, self.id]

    def __iter__(self):
        yield self.kind
        yield self.id

    def __getitem__(self, index: int):
        return (self.kind, self.id)[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, EntityRef):
            return self.kind == other.kind and self.id == other.id
        if isinstance(other, tuple):
            return tuple(self) == other
        return NotImplemented

    def __hash__(self) -> int:
        # Same hash as the tuple it replaces, so refs and legacy tuples
        # address the same dict slots during the deprecation window.
        return hash((self.kind, self.id))


def op_class_name(op) -> str:
    """The latency/span class of an operation (``Q9``, ``ADD_POST``, ...).

    Works over every operation shape in the system: driver stream
    operations (``op_class`` property), update operations (``kind``
    enum), and the typed :mod:`repro.core.operation` union.  The driver
    scheduler and the connector both label spans and latency records
    through this one helper, so the per-class names in
    :func:`repro.telemetry.publish_driver_metrics` gauges always match
    the scheduler's span names.
    """
    op_class = getattr(op, "op_class", None) or getattr(op, "kind", None)
    return op_class.name if hasattr(op_class, "name") \
        else str(op_class or type(op).__name__)


@dataclass(frozen=True)
class ReadOperation:
    """One scheduled complex read (with its short-read walk)."""

    query_id: int
    params: object
    due_time: int
    #: Seed for the short-read random walk run after this query.
    walk_seed: int = 0

    depends_on_time: int = 0
    global_depends_on_time: int = 0
    partition_key: int | None = None

    @property
    def is_dependency(self) -> bool:
        return False

    @property
    def is_dependent(self) -> bool:
        return False

    @property
    def op_class(self) -> str:
        return f"Q{self.query_id}"
