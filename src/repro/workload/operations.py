"""Read operations for the mixed workload stream.

The driver is operation-agnostic: anything exposing due/dependency times
and the Dependencies/Dependents flags schedules identically.  Reads
depend on nothing and nothing depends on them ("as they contain no
inter-dependencies, executing the read queries in parallel is trivial" —
paper §4.2), so both flags are off and the dependency metadata is zero.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReadOperation:
    """One scheduled complex read (with its short-read walk)."""

    query_id: int
    params: object
    due_time: int
    #: Seed for the short-read random walk run after this query.
    walk_seed: int = 0

    depends_on_time: int = 0
    global_depends_on_time: int = 0
    partition_key: int | None = None

    @property
    def is_dependency(self) -> bool:
        return False

    @property
    def is_dependent(self) -> bool:
        return False

    @property
    def op_class(self) -> str:
        return f"Q{self.query_id}"
