"""Workload definition: query mix, short-read random walk, calibration.

Paper §4 "Query Mix": the workload is read-dominated and calibrated so
that ~10% of total runtime goes to updates, ~50% to complex reads and
~40% to simple reads, with each complex query taking an approximately
equal share of the complex-read budget — realized by the Table 4 relative
frequencies (one execution of query *i* per ``f_i`` update operations).
"""

from .mix import TABLE4_FREQUENCIES, QueryMix, build_mixed_stream
from .operations import EntityRef, ReadOperation, op_class_name
from .random_walk import RandomWalkConfig, extract_entities, run_walk
from .calibration import (
    CalibrationResult,
    calibrate_frequencies,
    expected_walk_length,
    scale_frequencies,
    solve_walk_probability,
)

__all__ = [
    "CalibrationResult",
    "EntityRef",
    "QueryMix",
    "ReadOperation",
    "RandomWalkConfig",
    "TABLE4_FREQUENCIES",
    "build_mixed_stream",
    "calibrate_frequencies",
    "expected_walk_length",
    "extract_entities",
    "op_class_name",
    "run_walk",
    "scale_frequencies",
    "solve_walk_probability",
]
