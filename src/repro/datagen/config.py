"""Configuration for DATAGEN.

Scale is expressed either directly as a person count or as a *scale factor*
(SF).  In the paper the SF is the number of GB of CSV data; persons grow
sublinearly with SF (paper Table 3: SF30 → 0.18M persons, SF1000 → 3.6M).
Fitting a power law to Table 3 gives ``persons ≈ 10000 · SF^0.849``, which
this module uses so miniature runs keep the paper's scaling relationships.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import DatagenError
from ..sim_time import DEFAULT_WINDOW, SimulationWindow

#: Fit of persons-vs-SF to the paper's Table 3.
_PERSONS_COEFFICIENT = 10000.0
_PERSONS_EXPONENT = 0.849

#: Start methods accepted by :class:`ParallelConfig`.
_START_METHODS = ("spawn", "fork", "forkserver")


@dataclass
class ParallelConfig:
    """Knobs of the process-parallel execution layer (``--jobs``).

    ``jobs`` is the number of *real* worker processes the pipeline may
    use; it is distinct from :attr:`DatagenConfig.num_workers`, which
    only emulates cluster width for the serial path and the Amdahl
    projection.  Neither knob may change the generated network — the
    paper's determinism-regardless-of-cluster-shape property, and the
    invariance tests assert it for both.
    """

    #: Worker processes; 1 means the in-process serial path.
    jobs: int = 1
    #: ``multiprocessing`` start method.  ``spawn`` is the safe default
    #: everywhere (no inherited locks/threads); ``fork`` starts faster
    #: on Linux when the parent is known to be single-threaded.
    start_method: str = "spawn"
    #: Tasks submitted per worker per stage — >1 gives the pool slack to
    #: balance skewed task costs (hub owners dominate activity chunks).
    tasks_per_worker: int = 4
    #: Smallest number of items (persons, sweep positions, forum owners)
    #: worth shipping as one task.
    min_chunk: int = 16
    #: Fall back to the serial path when the pool cannot be created
    #: (sandboxed platforms, broken start methods).  When False, pool
    #: creation errors propagate.
    fallback_serial: bool = True
    #: Seconds a single task may run before the run is declared hung.
    #: Caps pool deadlocks: CI fails fast instead of timing out the job.
    task_timeout: float = 300.0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise DatagenError("parallel jobs must be >= 1")
        if self.start_method not in _START_METHODS:
            raise DatagenError(
                f"unknown start method {self.start_method!r}; "
                f"expected one of {_START_METHODS}")
        if self.tasks_per_worker < 1:
            raise DatagenError("tasks_per_worker must be >= 1")
        if self.min_chunk < 1:
            raise DatagenError("min_chunk must be >= 1")
        if self.task_timeout <= 0:
            raise DatagenError("task_timeout must be positive")


def persons_for_scale_factor(scale_factor: float) -> int:
    """Person count for a given scale factor (paper Table 3 power-law fit)."""
    if scale_factor <= 0:
        raise DatagenError(f"scale factor must be positive: {scale_factor}")
    return max(10, round(_PERSONS_COEFFICIENT
                         * scale_factor ** _PERSONS_EXPONENT))


def scale_factor_for_persons(num_persons: int) -> float:
    """Inverse of :func:`persons_for_scale_factor` (for reporting)."""
    if num_persons <= 0:
        raise DatagenError(f"person count must be positive: {num_persons}")
    return (num_persons / _PERSONS_COEFFICIENT) ** (1.0 / _PERSONS_EXPONENT)


@dataclass
class DatagenConfig:
    """All knobs of the data generator.

    The output of :func:`repro.datagen.pipeline.generate` is a pure function
    of this configuration; in particular it does **not** depend on
    ``num_workers`` (emulated cluster width) or on ``parallel.jobs``
    (real worker processes) — the paper: "we have paid specific
    attention to making data generation deterministic".
    """

    num_persons: int = 300
    seed: int = 42
    window: SimulationWindow = field(default_factory=lambda: DEFAULT_WINDOW)
    #: Emulated number of parallel workers (Hadoop mappers); must not
    #: change the output.  Drives the serial path's round-robin chunk
    #: interleaving and the Amdahl projection only.
    num_workers: int = 1
    #: Real process-parallel execution (``--jobs``); must not change the
    #: output either.
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    #: Enable event-driven spiking post generation (Fig. 2a).  When off,
    #: post timestamps are uniform over each person's active period.
    event_driven_posts: bool = True
    #: Number of simulated world events per simulated year.
    events_per_year: int = 12
    #: Sliding window size for friendship generation (persons kept in
    #: memory per worker during a pass).
    friendship_window: int = 200
    #: Degree budget split across the three correlation passes
    #: (study location, interest, random) — paper: 45% / 45% / 10%.
    dimension_shares: tuple[float, float, float] = (0.45, 0.45, 0.10)
    #: Geometric parameter for picking friends by window distance.  At
    #: miniature scales correlation clusters (same university+year, same
    #: primary interest) hold only a handful of persons, so the decay is
    #: steeper than a cluster-scale deployment would use — the mean jump
    #: (≈ 1/p) must stay comparable to the cluster size for the
    #: homophily correlation to materialize.
    window_geometric_p: float = 0.18
    #: Mean number of forum groups a person moderates.
    mean_groups_per_person: float = 0.35
    #: Mean posts per wall-forum per active month, before degree scaling.
    posts_per_friendship: float = 2.0
    #: Mean comments attached below each post (discussion tree size).
    mean_comments_per_post: float = 1.4
    #: Probability that a friend likes a given message.
    like_probability: float = 0.08
    #: Minimum gap (ms) between a dependency and its dependents
    #: (paper: T_SAFE, enabling windowed execution).
    t_safe_millis: int = 10 * 24 * 3600 * 1000
    #: Maximum number of interests (tags) per person.
    max_interests: int = 12
    #: Probability a person has a second university / workplace entry.
    extra_affiliation_p: float = 0.15

    @classmethod
    def for_scale_factor(cls, scale_factor: float, **overrides) -> "DatagenConfig":
        """Config for a scale factor; person count derived from Table 3 fit."""
        return cls(num_persons=persons_for_scale_factor(scale_factor),
                   **overrides)

    def __post_init__(self) -> None:
        if self.num_persons < 2:
            raise DatagenError("need at least 2 persons")
        if self.num_workers < 1:
            raise DatagenError("num_workers must be >= 1")
        if abs(sum(self.dimension_shares) - 1.0) > 1e-9:
            raise DatagenError("dimension shares must sum to 1")
        if not 0 < self.window_geometric_p < 1:
            raise DatagenError("window_geometric_p must be in (0,1)")
        if self.friendship_window < 2:
            raise DatagenError("friendship window must be >= 2")
        if self.t_safe_millis <= 0:
            raise DatagenError("t_safe_millis must be positive")

    @property
    def scale_factor(self) -> float:
        """Approximate SF this person count corresponds to."""
        return scale_factor_for_persons(self.num_persons)

    def average_degree_target(self) -> float:
        """Paper formula: ``avg_degree = n^(0.512 - 0.028 · log10 n)``.

        At Facebook size (700M persons) this yields ≈ 200 friends.
        """
        n = self.num_persons
        return n ** (0.512 - 0.028 * math.log10(n))
