"""DATAGEN: the correlated social-network data generator (paper Section 2).

The generator simulates user activity in a social network over three years.
It reproduces the paper's three pillars:

* **Correlated attribute values** (Table 1): a person's location determines
  the ranking (not the shape) of the skewed distributions their first name,
  last name, university, company and languages are drawn from; interests
  follow location; message topics follow interests; message text follows
  topics.
* **Time correlation and spiking trends** (Fig. 2a): all timestamps obey the
  logical ordering rules, and post volume optionally spikes around simulated
  events (trending topics).
* **Structure correlation** (Fig. 1, Fig. 3a): friendship edges are produced
  by a multi-stage sliding-window process over correlation dimensions
  (study location via Z-order composite key, interests, random) with a
  45/45/10 degree budget split, against a discretized Facebook-shaped degree
  distribution scaled by ``n^(0.512 - 0.028 log10 n)``.

Entry point: :func:`repro.datagen.pipeline.generate` /
:class:`repro.datagen.pipeline.DatagenPipeline`.
"""

from .config import DatagenConfig, ParallelConfig, persons_for_scale_factor
from .pipeline import DatagenPipeline, generate

__all__ = [
    "DatagenConfig",
    "DatagenPipeline",
    "ParallelConfig",
    "generate",
    "persons_for_scale_factor",
]
