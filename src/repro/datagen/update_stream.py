"""Splitting DATAGEN output into bulk-load data and the update stream.

Paper §4: "DATAGEN can divide its output in two parts, splitting all data
at one particular timestamp: all data before this point is output in the
requested bulk-load format, the data with a timestamp after the split is
formatted as input files for the query driver."  The default split is 32 of
36 simulated months (:func:`repro.sim_time.bulk_load_cut`).

Each update operation carries the metadata the driver's dependency tracking
needs (paper §4.2):

* ``due_time`` — T_DUE, the simulation time the operation is scheduled at;
* ``depends_on_time`` — T_DEP, the due time of the latest operation this
  one depends on (0 if none);
* whether the operation is in the **Dependencies** set (others may wait on
  it), the **Dependents** set (it waits on others), or both;
* ``partition_key`` — the forum id for intra-forum (tree-structured)
  operations, enabling the driver's sequential per-forum execution mode;
  ``None`` for person-graph operations, which are non-partitionable and
  must use global (GCT) tracking.

The eight update types match the SNB Interactive specification (and the
eight columns of the paper's Table 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..errors import DatagenError
from ..schema.dataset import SocialNetwork
from ..sim_time import bulk_load_cut


class UpdateKind(Enum):
    """The 8 transactional update types of SNB Interactive."""

    ADD_PERSON = 1
    ADD_LIKE_POST = 2
    ADD_LIKE_COMMENT = 3
    ADD_FORUM = 4
    ADD_FORUM_MEMBERSHIP = 5
    ADD_POST = 6
    ADD_COMMENT = 7
    ADD_FRIENDSHIP = 8


#: Update kinds whose completion other operations may depend on.
DEPENDENCY_KINDS = frozenset({
    UpdateKind.ADD_PERSON,
    UpdateKind.ADD_FORUM,
    UpdateKind.ADD_POST,
    UpdateKind.ADD_COMMENT,
    UpdateKind.ADD_FRIENDSHIP,
})

#: Update kinds that wait on at least one earlier operation.
DEPENDENT_KINDS = frozenset({
    UpdateKind.ADD_LIKE_POST,
    UpdateKind.ADD_LIKE_COMMENT,
    UpdateKind.ADD_FORUM,
    UpdateKind.ADD_FORUM_MEMBERSHIP,
    UpdateKind.ADD_POST,
    UpdateKind.ADD_COMMENT,
    UpdateKind.ADD_FRIENDSHIP,
})


@dataclass(frozen=True)
class UpdateOperation:
    """One DML statement of the update stream."""

    kind: UpdateKind
    due_time: int
    depends_on_time: int
    payload: object
    #: Forum id for tree-structured ops (sequential-mode partitioning);
    #: ``None`` for person-graph ops.
    partition_key: int | None = None
    #: The person-graph component of ``depends_on_time`` (creation of the
    #: involved persons/friendships).  The paper's sequential execution
    #: mode captures intra-forum dependencies by stream order and only
    #: synchronizes on GCT for these person-graph dependencies ("For
    #: dependencies between users and their generated content TGC tracking
    #: is used, as it is impossible to partition the social graph").
    global_depends_on_time: int = 0

    @property
    def is_dependency(self) -> bool:
        return self.kind in DEPENDENCY_KINDS

    @property
    def is_dependent(self) -> bool:
        return self.kind in DEPENDENT_KINDS


@dataclass
class SplitDataset:
    """Result of splitting a network at the bulk-load cut."""

    bulk: SocialNetwork
    updates: list[UpdateOperation]
    cut: int

    def update_counts(self) -> dict[UpdateKind, int]:
        counts: dict[UpdateKind, int] = {kind: 0 for kind in UpdateKind}
        for op in self.updates:
            counts[op.kind] += 1
        return counts


def split_network(network: SocialNetwork, cut: int | None = None,
                  ) -> SplitDataset:
    """Split a generated network into bulk-load part and update stream.

    Timestamp filtering is consistent by construction: every entity's
    creation date is at or after the creation dates of everything it
    references, so entities before the cut never reference entities after
    it.
    """
    if cut is None:
        cut = bulk_load_cut()
    bulk = SocialNetwork(
        tags=list(network.tags),
        tag_classes=list(network.tag_classes),
        places=list(network.places),
        organisations=list(network.organisations),
    )
    updates: list[UpdateOperation] = []
    persons_by_id = network.person_by_id()
    forums_by_id = network.forum_by_id()
    posts_by_id = network.post_by_id()
    comments_by_id = network.comment_by_id()
    #: person id → (forum id → join date), for post/comment T_DEP.
    join_dates: dict[tuple[int, int], int] = {}
    for membership in network.memberships:
        join_dates[(membership.person_id, membership.forum_id)] = \
            membership.joined_date

    for person in network.persons:
        if person.creation_date < cut:
            bulk.persons.append(person)
        else:
            updates.append(UpdateOperation(
                UpdateKind.ADD_PERSON, person.creation_date, 0, person))

    for edge in network.knows:
        if edge.creation_date < cut:
            bulk.knows.append(edge)
        else:
            dep = max(persons_by_id[edge.person1_id].creation_date,
                      persons_by_id[edge.person2_id].creation_date)
            updates.append(UpdateOperation(
                UpdateKind.ADD_FRIENDSHIP, edge.creation_date, dep, edge,
                global_depends_on_time=dep))

    for forum in network.forums:
        if forum.creation_date < cut:
            bulk.forums.append(forum)
        else:
            dep = persons_by_id[forum.moderator_id].creation_date
            updates.append(UpdateOperation(
                UpdateKind.ADD_FORUM, forum.creation_date, dep, forum,
                partition_key=forum.id, global_depends_on_time=dep))

    for membership in network.memberships:
        if membership.joined_date < cut:
            bulk.memberships.append(membership)
        else:
            dep = max(forums_by_id[membership.forum_id].creation_date,
                      persons_by_id[membership.person_id].creation_date)
            updates.append(UpdateOperation(
                UpdateKind.ADD_FORUM_MEMBERSHIP, membership.joined_date,
                dep, membership, partition_key=membership.forum_id,
                global_depends_on_time=persons_by_id[
                    membership.person_id].creation_date))

    for post in network.posts:
        if post.creation_date < cut:
            bulk.posts.append(post)
        else:
            join = join_dates.get((post.author_id, post.forum_id), 0)
            dep = max(forums_by_id[post.forum_id].creation_date, join)
            updates.append(UpdateOperation(
                UpdateKind.ADD_POST, post.creation_date, dep, post,
                partition_key=post.forum_id,
                global_depends_on_time=persons_by_id[
                    post.author_id].creation_date))

    for comment in network.comments:
        if comment.creation_date < cut:
            bulk.comments.append(comment)
        else:
            parent = posts_by_id.get(comment.reply_of_id) \
                or comments_by_id.get(comment.reply_of_id)
            if parent is None:
                raise DatagenError(
                    f"comment {comment.id} parent {comment.reply_of_id} "
                    "missing during split")
            root = posts_by_id[comment.root_post_id]
            updates.append(UpdateOperation(
                UpdateKind.ADD_COMMENT, comment.creation_date,
                parent.creation_date, comment,
                partition_key=root.forum_id,
                global_depends_on_time=persons_by_id[
                    comment.author_id].creation_date))

    for like in network.likes:
        if like.creation_date < cut:
            bulk.likes.append(like)
        else:
            if like.is_post:
                message = posts_by_id[like.message_id]
                forum_id = message.forum_id
                kind = UpdateKind.ADD_LIKE_POST
            else:
                message = comments_by_id[like.message_id]
                forum_id = posts_by_id[message.root_post_id].forum_id
                kind = UpdateKind.ADD_LIKE_COMMENT
            dep = max(message.creation_date,
                      persons_by_id[like.person_id].creation_date)
            updates.append(UpdateOperation(
                kind, like.creation_date, dep, like,
                partition_key=forum_id,
                global_depends_on_time=persons_by_id[
                    like.person_id].creation_date))

    updates.sort(key=lambda op: (op.due_time, op.kind.value))
    return SplitDataset(bulk=bulk, updates=updates, cut=cut)


def partition_updates(updates: Iterable[UpdateOperation],
                      num_partitions: int) -> list[list[UpdateOperation]]:
    """Assign updates to parallel streams (paper §4.2).

    Tree-structured operations of one forum always land in the same stream
    (hash by forum id) so the sequential mode can keep intra-forum causal
    order with no cross-stream synchronization; person-graph operations are
    spread round-robin and rely on GCT tracking.
    """
    if num_partitions < 1:
        raise DatagenError("need at least one partition")
    partitions: list[list[UpdateOperation]] = \
        [[] for __ in range(num_partitions)]
    round_robin = 0
    for op in updates:
        if op.partition_key is not None:
            index = op.partition_key % num_partitions
        else:
            index = round_robin % num_partitions
            round_robin += 1
        partitions[index].append(op)
    return partitions
