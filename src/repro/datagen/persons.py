"""Person generation (paper §2, "person generation" step).

Each person is produced by an independent random stream keyed on the
person's serial, which makes the step embarrassingly parallel *and*
deterministic regardless of how persons are partitioned over workers —
exactly the property the paper's Hadoop mappers have.

The attribute correlations of Table 1 realized here:

* ``person.location`` + ``person.gender`` → first-name ranking,
* ``person.location`` → last name, university (nearby), company (in
  country), spoken languages, interests (popular tags *in that country*),
* ``person.employer`` → email domain,
* ``person.birthDate`` < ``person.createdDate``.
"""

from __future__ import annotations

from ..ids import EntityKind, make_id
from ..rng import RandomStream
from ..schema.entities import Person, StudyAt, WorkAt
from ..sim_time import MILLIS_PER_DAY, MILLIS_PER_YEAR, date_from_millis
from .config import DatagenConfig
from .dictionaries import (
    BROWSER_WEIGHTS,
    BROWSERS,
    EMAIL_PROVIDERS,
    GENDERS,
    Dictionaries,
)
from .universe import Universe

#: Rank-selection skew for dictionary draws (names, interests).
_NAME_SKEW = 1.3
#: Fraction of persons with a recorded university.
_STUDY_PROBABILITY = 0.8
#: Fraction of studied-abroad persons (university outside home country).
_FOREIGN_STUDY_PROBABILITY = 0.1
#: Fraction of persons with at least one job.
_WORK_PROBABILITY = 0.85


def generate_person(serial: int, config: DatagenConfig,
                    dictionaries: Dictionaries, universe: Universe) -> Person:
    """Generate person ``serial`` (pure function of (config, serial))."""
    stream = RandomStream.for_key(config.seed, "person", serial)
    country_index = stream.weighted_choice(dictionaries.country_weights())
    country = universe.countries[country_index]
    city_id = stream.choice(country.city_ids)
    gender = stream.choice(GENDERS)

    first_names = dictionaries.first_names_for(country.spec.name, gender)
    first_name = first_names[stream.zipf_index(len(first_names), _NAME_SKEW)]
    last_names = dictionaries.last_names_for(country.spec.name)
    last_name = last_names[stream.zipf_index(len(last_names), _NAME_SKEW)]

    # Birthday: age 18-55 at network start.
    age_years = stream.randint(18, 55)
    birthday = (config.window.start - age_years * MILLIS_PER_YEAR
                - stream.randint(0, 364) * MILLIS_PER_DAY)

    # Join date: uniform over the window except the final 30 days, so even
    # the latest joiners can produce some activity.
    join_span = config.window.span - 30 * MILLIS_PER_DAY
    creation_date = config.window.start + stream.randint(0, max(join_span, 1))

    languages = list(country.spec.languages)
    if "en" not in languages and stream.random() < 0.5:
        languages.append("en")

    interests = _pick_interests(stream, config, country.ranked_tag_ids)
    study_at = _pick_university(stream, universe, country_index, birthday)
    work_at = _pick_jobs(stream, config, country, creation_date)
    emails = _make_emails(stream, first_name, last_name, serial, work_at,
                          universe)

    browser = BROWSERS[stream.weighted_choice(BROWSER_WEIGHTS)]
    location_ip = (f"{country_index + 1}.{stream.randint(0, 255)}"
                   f".{stream.randint(0, 255)}.{stream.randint(1, 254)}")

    return Person(
        id=make_id(EntityKind.PERSON, serial),
        first_name=first_name,
        last_name=last_name,
        gender=gender,
        birthday=birthday,
        creation_date=creation_date,
        location_ip=location_ip,
        browser_used=browser,
        city_id=city_id,
        country_id=country.country_place_id,
        languages=tuple(languages),
        emails=emails,
        interests=interests,
        study_at=study_at,
        work_at=work_at,
    )


def _pick_interests(stream: RandomStream, config: DatagenConfig,
                    ranked_tags: tuple[int, ...]) -> tuple[int, ...]:
    """Interests: skewed ranks over the country's tag popularity order."""
    count = min(1 + stream.geometric(0.35), config.max_interests)
    picked: list[int] = []
    seen: set[int] = set()
    attempts = 0
    while len(picked) < count and attempts < count * 20:
        attempts += 1
        tag_id = ranked_tags[stream.zipf_index(len(ranked_tags), 1.1)]
        if tag_id not in seen:
            seen.add(tag_id)
            picked.append(tag_id)
    return tuple(picked)


def _pick_university(stream: RandomStream, universe: Universe,
                     home_country_index: int, birthday: int,
                     ) -> tuple[StudyAt, ...]:
    if stream.random() >= _STUDY_PROBABILITY:
        return ()
    country_index = home_country_index
    if stream.random() < _FOREIGN_STUDY_PROBABILITY:
        country_index = stream.randint(0, len(universe.countries) - 1)
    universities = universe.countries[country_index].university_ids
    university_id = stream.choice(universities)
    birth_year = date_from_millis(birthday).year
    class_year = birth_year + stream.randint(21, 24)
    return (StudyAt(university_id, class_year),)


def _pick_jobs(stream: RandomStream, config: DatagenConfig, country,
               creation_date: int) -> tuple[WorkAt, ...]:
    if stream.random() >= _WORK_PROBABILITY:
        return ()
    jobs = [WorkAt(stream.choice(country.company_ids),
                   date_from_millis(creation_date).year
                   - stream.randint(0, 10))]
    if stream.random() < config.extra_affiliation_p:
        other = stream.choice(country.company_ids)
        if other != jobs[0].organisation_id:
            jobs.append(WorkAt(other, jobs[0].work_from
                               + stream.randint(1, 5)))
    return tuple(jobs)


def _make_emails(stream: RandomStream, first_name: str, last_name: str,
                 serial: int, work_at: tuple[WorkAt, ...],
                 universe: Universe) -> tuple[str, ...]:
    """Emails correlate with the employer (Table 1: @company domain)."""
    slug_first = _ascii_slug(first_name)
    slug_last = _ascii_slug(last_name)
    emails = [f"{slug_first}.{slug_last}{serial}@"
              f"{stream.choice(EMAIL_PROVIDERS)}"]
    if work_at:
        employer = universe.organisation_by_id[work_at[0].organisation_id]
        domain = _ascii_slug(employer.name).replace(" ", "") + ".example.com"
        emails.append(f"{slug_first}.{slug_last}@{domain}")
    return tuple(emails)


def _ascii_slug(text: str) -> str:
    """Lowercase ASCII-only slug of a name (for email local parts)."""
    folded = []
    for ch in text.lower():
        if ch.isascii() and ch.isalnum():
            folded.append(ch)
    return "".join(folded) or "user"


def generate_persons(config: DatagenConfig, dictionaries: Dictionaries,
                     universe: Universe) -> list[Person]:
    """Generate all persons, ordered by serial."""
    return [generate_person(serial, config, dictionaries, universe)
            for serial in range(config.num_persons)]
