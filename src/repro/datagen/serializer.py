"""CSV serialization of a generated network (the paper's bulk-load format).

One file per entity/relation kind, pipe-delimited with a header row, in the
style of the official DATAGEN CSV output.  :func:`write_csv` dumps a
:class:`~repro.schema.dataset.SocialNetwork` into a directory;
:func:`read_csv` loads it back (round-trip is tested).  Scale factors are
defined as *GB of CSV data* in the paper, so :func:`csv_size_bytes` is also
what our miniature scale-factor reporting is based on.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

from ..schema.dataset import SocialNetwork
from ..schema.entities import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Organisation,
    OrganisationType,
    Person,
    Place,
    PlaceType,
    Post,
    StudyAt,
    Tag,
    TagClass,
    WorkAt,
)

_DELIMITER = "|"


def _write(path: Path, header: list[str], rows) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=_DELIMITER)
        writer.writerow(header)
        writer.writerows(rows)


def write_csv(network: SocialNetwork, directory: str | os.PathLike) -> None:
    """Write the network as pipe-delimited CSV files into ``directory``."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)

    _write(out / "place.csv", ["id", "name", "type", "partOf", "zOrder"],
           ([p.id, p.name, p.type.value, p.part_of if p.part_of is not None
             else "", p.z_order] for p in network.places))
    _write(out / "organisation.csv", ["id", "name", "type", "location"],
           ([o.id, o.name, o.type.value, o.location_id]
            for o in network.organisations))
    _write(out / "tagclass.csv", ["id", "name", "parent"],
           ([tc.id, tc.name, tc.parent_id if tc.parent_id is not None
             else ""] for tc in network.tag_classes))
    _write(out / "tag.csv", ["id", "name", "class"],
           ([t.id, t.name, t.class_id] for t in network.tags))
    _write(out / "person.csv",
           ["id", "firstName", "lastName", "gender", "birthday",
            "creationDate", "locationIP", "browserUsed", "city", "country",
            "languages", "emails", "interests", "studyAt", "workAt"],
           ([p.id, p.first_name, p.last_name, p.gender, p.birthday,
             p.creation_date, p.location_ip, p.browser_used, p.city_id,
             p.country_id, ";".join(p.languages), ";".join(p.emails),
             ";".join(str(t) for t in p.interests),
             ";".join(f"{s.organisation_id},{s.class_year}"
                      for s in p.study_at),
             ";".join(f"{w.organisation_id},{w.work_from}"
                      for w in p.work_at)]
            for p in network.persons))
    _write(out / "knows.csv",
           ["person1", "person2", "creationDate", "dimension"],
           ([k.person1_id, k.person2_id, k.creation_date, k.dimension]
            for k in network.knows))
    _write(out / "forum.csv",
           ["id", "title", "creationDate", "moderator", "tags"],
           ([f.id, f.title, f.creation_date, f.moderator_id,
             ";".join(str(t) for t in f.tag_ids)] for f in network.forums))
    _write(out / "forum_hasMember.csv", ["forum", "person", "joinDate"],
           ([m.forum_id, m.person_id, m.joined_date]
            for m in network.memberships))
    _write(out / "post.csv",
           ["id", "creationDate", "author", "forum", "content", "length",
            "language", "country", "tags", "imageFile", "locationIP",
            "browserUsed", "latitude", "longitude"],
           ([p.id, p.creation_date, p.author_id, p.forum_id, p.content,
             p.length, p.language, p.country_id,
             ";".join(str(t) for t in p.tag_ids), p.image_file or "",
             p.location_ip, p.browser_used,
             "" if p.latitude is None else p.latitude,
             "" if p.longitude is None else p.longitude]
            for p in network.posts))
    _write(out / "comment.csv",
           ["id", "creationDate", "author", "content", "length", "country",
            "rootPost", "replyOf", "tags", "locationIP", "browserUsed"],
           ([c.id, c.creation_date, c.author_id, c.content, c.length,
             c.country_id, c.root_post_id, c.reply_of_id,
             ";".join(str(t) for t in c.tag_ids), c.location_ip,
             c.browser_used] for c in network.comments))
    _write(out / "likes.csv",
           ["person", "message", "creationDate", "isPost"],
           ([like.person_id, like.message_id, like.creation_date,
             int(like.is_post)] for like in network.likes))


def _read(path: Path) -> list[dict[str, str]]:
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle, delimiter=_DELIMITER))


def _ints(joined: str) -> tuple[int, ...]:
    return tuple(int(part) for part in joined.split(";") if part)


def read_csv(directory: str | os.PathLike) -> SocialNetwork:
    """Load a network previously written by :func:`write_csv`."""
    src = Path(directory)
    network = SocialNetwork()
    for row in _read(src / "place.csv"):
        network.places.append(Place(
            int(row["id"]), row["name"], PlaceType(row["type"]),
            int(row["partOf"]) if row["partOf"] else None,
            int(row["zOrder"])))
    for row in _read(src / "organisation.csv"):
        network.organisations.append(Organisation(
            int(row["id"]), row["name"], OrganisationType(row["type"]),
            int(row["location"])))
    for row in _read(src / "tagclass.csv"):
        network.tag_classes.append(TagClass(
            int(row["id"]), row["name"],
            int(row["parent"]) if row["parent"] else None))
    for row in _read(src / "tag.csv"):
        network.tags.append(Tag(int(row["id"]), row["name"],
                                int(row["class"])))
    for row in _read(src / "person.csv"):
        study = tuple(StudyAt(int(org), int(year))
                      for org, year in (pair.split(",")
                                        for pair in row["studyAt"].split(";")
                                        if pair))
        work = tuple(WorkAt(int(org), int(year))
                     for org, year in (pair.split(",")
                                       for pair in row["workAt"].split(";")
                                       if pair))
        network.persons.append(Person(
            id=int(row["id"]), first_name=row["firstName"],
            last_name=row["lastName"], gender=row["gender"],
            birthday=int(row["birthday"]),
            creation_date=int(row["creationDate"]),
            location_ip=row["locationIP"], browser_used=row["browserUsed"],
            city_id=int(row["city"]), country_id=int(row["country"]),
            languages=tuple(part for part in row["languages"].split(";")
                            if part),
            emails=tuple(part for part in row["emails"].split(";") if part),
            interests=_ints(row["interests"]),
            study_at=study, work_at=work))
    for row in _read(src / "knows.csv"):
        network.knows.append(Knows(
            int(row["person1"]), int(row["person2"]),
            int(row["creationDate"]), int(row["dimension"])))
    for row in _read(src / "forum.csv"):
        network.forums.append(Forum(
            int(row["id"]), row["title"], int(row["creationDate"]),
            int(row["moderator"]), _ints(row["tags"])))
    for row in _read(src / "forum_hasMember.csv"):
        network.memberships.append(ForumMembership(
            int(row["forum"]), int(row["person"]), int(row["joinDate"])))
    for row in _read(src / "post.csv"):
        network.posts.append(Post(
            id=int(row["id"]), creation_date=int(row["creationDate"]),
            author_id=int(row["author"]), forum_id=int(row["forum"]),
            content=row["content"], length=int(row["length"]),
            language=row["language"], country_id=int(row["country"]),
            tag_ids=_ints(row["tags"]),
            image_file=row["imageFile"] or None,
            location_ip=row["locationIP"], browser_used=row["browserUsed"],
            latitude=float(row["latitude"]) if row["latitude"] else None,
            longitude=float(row["longitude"]) if row["longitude"]
            else None))
    for row in _read(src / "comment.csv"):
        network.comments.append(Comment(
            id=int(row["id"]), creation_date=int(row["creationDate"]),
            author_id=int(row["author"]), content=row["content"],
            length=int(row["length"]), country_id=int(row["country"]),
            root_post_id=int(row["rootPost"]),
            reply_of_id=int(row["replyOf"]), tag_ids=_ints(row["tags"]),
            location_ip=row["locationIP"], browser_used=row["browserUsed"]))
    for row in _read(src / "likes.csv"):
        network.likes.append(Like(
            int(row["person"]), int(row["message"]),
            int(row["creationDate"]), bool(int(row["isPost"]))))
    return network


def csv_size_bytes(directory: str | os.PathLike) -> int:
    """Total size of the CSV files (what the paper's SF measures, in GB)."""
    return sum(path.stat().st_size
               for path in Path(directory).glob("*.csv"))
