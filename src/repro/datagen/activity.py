"""Person activity generation: forums, posts, comment trees, likes.

Paper §2.4 "person activity generation": *"this involves filling the forums
with posts comments and likes.  This data is mostly tree-structured and is
therefore easily parallelized by the person who owns the forum."*

Accordingly, all activity of a forum is generated from random streams keyed
on the forum owner's serial: workers can process disjoint person ranges in
any order and produce identical output (tested).

Temporal rules enforced here (paper Table 1 and §4.2):

* forums are created after their moderator joined;
* members join after both the forum exists and the friendship that pulled
  them in was created;
* nobody posts/comments/likes in a forum before **T_SAFE** after joining —
  the guaranteed gap DATAGEN provides so the driver's windowed execution
  mode is sound;
* comments strictly follow their parent, likes strictly follow the liked
  message.

Message topics follow author interests (and the forum's tags); message text
is drawn from the topic's vocabulary; timestamps optionally spike around
world events (:mod:`repro.datagen.events`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ids import EntityKind, IdAllocator, make_id, serial_of
from ..rng import RandomStream, ZipfSampler
from ..schema.entities import (
    Comment,
    Forum,
    ForumMembership,
    Like,
    Person,
    Post,
)
from ..sim_time import MILLIS_PER_DAY, MILLIS_PER_HOUR, MILLIS_PER_MINUTE
from .config import DatagenConfig
from .dictionaries import Dictionaries
from .events import EventCalendar
from .universe import Universe

#: Probability that a wall post is written by the owner (vs a friend).
_OWNER_POST_SHARE = 0.7
#: Probability a post is geo-tagged in a foreign country ("travel").
_TRAVEL_PROBABILITY = 0.08
#: Probability a person keeps a photo album.
_ALBUM_PROBABILITY = 0.3
#: Probability that one non-friend likes a message (Q7's "outside direct
#: connections" flag needs such likes to exist).
_STRANGER_LIKE_PROBABILITY = 0.05
#: Mean delay of a comment after its parent message.
_COMMENT_LAG_MEAN = 2 * MILLIS_PER_DAY
#: Mean delay of a like after the liked message.
_LIKE_LAG_MEAN = 1 * MILLIS_PER_DAY
#: Forum-id slots reserved per owner (wall + groups + album).  Keeping the
#: forum-id function of (owner serial, slot) makes activity generation
#: independent of the order owners are processed in — the property that
#: lets DATAGEN partition this stage over workers deterministically.
_FORUM_SLOTS_PER_OWNER = 32
#: Cap on moderated groups per person (bounds the geometric draw).
_MAX_GROUPS_PER_OWNER = _FORUM_SLOTS_PER_OWNER - 2


@dataclass
class _DraftMessage:
    """A post or comment before global time-ordered id assignment."""

    creation_date: int
    author_id: int
    forum: Forum
    tags: tuple[int, ...]
    content: str
    language: str
    country_id: int
    location_ip: str
    browser_used: str
    image_file: str | None = None
    #: Photo geolocation (photos only).
    latitude: float | None = None
    longitude: float | None = None
    #: None for posts; the parent draft for comments.
    parent: "_DraftMessage | None" = None
    #: The root post draft (self for posts).
    root: "_DraftMessage | None" = None
    #: (person_id, like timestamp) pairs.
    likes: list[tuple[int, int]] = field(default_factory=list)
    #: Assigned during finalization.
    final_id: int = 0

    @property
    def is_post(self) -> bool:
        return self.parent is None


@dataclass
class ActivityResult:
    """Everything the activity stage produces."""

    forums: list[Forum]
    memberships: list[ForumMembership]
    posts: list[Post]
    comments: list[Comment]
    likes: list[Like]


@dataclass
class _Membership:
    """In-flight membership info used for eligibility checks."""

    person: Person
    joined_date: int


class ActivityGenerator:
    """Generates all forums/messages/likes for a set of persons.

    ``person_resolver`` maps a person id to its :class:`Person`.  The
    serial path builds it from the full person list; datagen workers pass
    :meth:`repro.datagen.parallel.WorkerContext.person_by_id`, which
    regenerates non-local persons on demand — persons are pure functions
    of ``(config, serial)``, so both views are identical.
    """

    def __init__(self, config: DatagenConfig, dictionaries: Dictionaries,
                 universe: Universe, calendar: EventCalendar,
                 person_resolver=None) -> None:
        self.config = config
        self.dictionaries = dictionaries
        self.universe = universe
        self.calendar = calendar
        self._resolve = person_resolver

    @staticmethod
    def _forum_id(owner: Person, slot: int) -> int:
        """Deterministic forum id from (owner serial, slot)."""
        return make_id(EntityKind.FORUM,
                       serial_of(owner.id) * _FORUM_SLOTS_PER_OWNER + slot)

    def generate(self, persons: list[Person],
                 adjacency: dict[int, list[tuple[int, int]]],
                 ) -> ActivityResult:
        """Run the activity stage for all persons (serial order).

        ``adjacency`` maps a person id to ``(friend id, friendship date)``
        pairs.
        """
        if self._resolve is None:
            self._resolve = {p.id: p for p in persons}.__getitem__
        forums, memberships, drafts = self.generate_range(persons, adjacency)
        return finalize_activity(forums, memberships, drafts)

    def generate_range(self, owners: list[Person],
                       adjacency: dict[int, list[tuple[int, int]]],
                       ) -> tuple[list[Forum], list[ForumMembership],
                                  list[_DraftMessage]]:
        """Generate raw activity for a contiguous owner range.

        Activity is keyed per owner, so disjoint ranges concatenated in
        serial order reproduce the serial run exactly; the id-assigning
        stitch is :func:`finalize_activity`, run once over the merged
        drafts.
        """
        if self._resolve is None:
            raise ValueError("generate_range needs a person_resolver")
        forums: list[Forum] = []
        memberships: list[ForumMembership] = []
        drafts: list[_DraftMessage] = []
        for person in owners:
            self._generate_for_owner(person, self._resolve,
                                     adjacency.get(person.id, []),
                                     forums, memberships, drafts)
        return forums, memberships, drafts

    # ------------------------------------------------------------------
    # per-owner generation
    # ------------------------------------------------------------------

    def _generate_for_owner(self, owner: Person, resolve, friends,
                            forums, memberships, drafts) -> None:
        stream = RandomStream.for_key(self.config.seed, "activity",
                                      serial_of(owner.id))
        wall, wall_members = self._make_wall(stream, owner, resolve,
                                             friends, memberships)
        forums.append(wall)
        self._fill_forum(stream, wall, wall_members, owner, drafts,
                         wall_mode=True)

        group_count = min(stream.geometric(
            1.0 / (1.0 + self.config.mean_groups_per_person)),
            _MAX_GROUPS_PER_OWNER)
        for group_index in range(group_count):
            group, group_members = self._make_group(
                stream, owner, resolve, friends, memberships,
                slot=2 + group_index)
            if group is None:
                continue
            forums.append(group)
            self._fill_forum(stream, group, group_members, owner, drafts,
                             wall_mode=False)

        if stream.random() < _ALBUM_PROBABILITY:
            album, album_members = self._make_album(
                stream, owner, resolve, friends, memberships)
            forums.append(album)
            self._fill_album(stream, album, album_members, owner, drafts)

    def _make_wall(self, stream, owner, resolve, friends,
                   memberships):
        creation = owner.creation_date + stream.randint(
            MILLIS_PER_HOUR, MILLIS_PER_DAY)
        creation = self.config.window.clamp(creation)
        wall = Forum(self._forum_id(owner, 0),
                     f"Wall of {owner.first_name} {owner.last_name}",
                     creation, owner.id, owner.interests[:3])
        # The owner joins strictly after creation: the update stream needs
        # every dependent operation's T_DUE to strictly exceed its T_DEP,
        # or the driver's GCT wait would block on itself.
        owner_join = creation + MILLIS_PER_MINUTE
        members = [_Membership(owner, owner_join)]
        memberships.append(ForumMembership(wall.id, owner.id, owner_join))
        for friend_id, friendship_date in friends:
            join = max(creation, friendship_date) + stream.randint(
                MILLIS_PER_HOUR, 3 * MILLIS_PER_DAY)
            if join >= self.config.window.end:
                continue
            friend = resolve(friend_id)
            members.append(_Membership(friend, join))
            memberships.append(ForumMembership(wall.id, friend_id, join))
        return wall, members

    def _make_group(self, stream, owner, resolve, friends,
                    memberships, slot: int):
        """A topical group: members drawn from friends and their friends."""
        if not owner.interests:
            return None, []
        topic = stream.choice(owner.interests)
        topic_name = self.universe.tag_name_by_id[topic]
        creation = owner.creation_date + stream.randint(
            MILLIS_PER_DAY, 120 * MILLIS_PER_DAY)
        if creation >= self.config.window.end:
            return None, []
        group = Forum(self._forum_id(owner, slot),
                      f"Group for {topic_name}",
                      creation, owner.id, (topic,))
        owner_join = creation + MILLIS_PER_MINUTE
        members = [_Membership(owner, owner_join)]
        memberships.append(ForumMembership(group.id, owner.id, owner_join))
        pool = [resolve(friend_id) for friend_id, __ in friends]
        if pool:
            size = min(len(pool), 1 + stream.geometric(0.15))
            for member in stream.sample(pool, size):
                join = max(creation, member.creation_date) + stream.randint(
                    MILLIS_PER_HOUR, 30 * MILLIS_PER_DAY)
                if join >= self.config.window.end:
                    continue
                members.append(_Membership(member, join))
                memberships.append(
                    ForumMembership(group.id, member.id, join))
        return group, members

    def _make_album(self, stream, owner, resolve, friends,
                    memberships):
        creation = owner.creation_date + stream.randint(
            MILLIS_PER_DAY, 200 * MILLIS_PER_DAY)
        creation = self.config.window.clamp(creation)
        album = Forum(self._forum_id(owner, 1),
                      f"Album of {owner.first_name} {owner.last_name}",
                      creation, owner.id, ())
        owner_join = creation + MILLIS_PER_MINUTE
        members = [_Membership(owner, owner_join)]
        memberships.append(ForumMembership(album.id, owner.id, owner_join))
        for friend_id, friendship_date in friends:
            join = max(creation, friendship_date) + MILLIS_PER_HOUR
            if join >= self.config.window.end:
                continue
            members.append(_Membership(resolve(friend_id), join))
            memberships.append(ForumMembership(album.id, friend_id, join))
        return album, members

    # ------------------------------------------------------------------
    # posts, comment trees, likes
    # ------------------------------------------------------------------

    def _fill_forum(self, stream, forum, members, owner, drafts,
                    wall_mode: bool) -> None:
        friend_count = max(len(members) - 1, 0)
        mean_posts = self.config.posts_per_friendship * max(friend_count, 1)
        post_count = stream.geometric(1.0 / (1.0 + mean_posts))
        for _ in range(post_count):
            draft = self._make_post(stream, forum, members, owner,
                                    wall_mode)
            if draft is None:
                continue
            drafts.append(draft)
            self._grow_comment_tree(stream, draft, members, drafts)
            self._add_likes(stream, draft, members)

    def _pick_author(self, stream, members, owner, wall_mode: bool,
                     when: int):
        """An author eligible (join + T_SAFE) at ``when``; wall posts are
        owner-authored ~70% of the time."""
        eligible = [m for m in members
                    if m.joined_date + self.config.t_safe_millis <= when]
        if not eligible:
            return None
        if wall_mode and stream.random() < _OWNER_POST_SHARE:
            for member in eligible:
                if member.person.id == owner.id:
                    return member
        return stream.choice(eligible)

    def _make_post(self, stream, forum, members, owner,
                   wall_mode: bool) -> _DraftMessage | None:
        # Post times are uniform over the forum lifetime (then an
        # eligible author is chosen), keeping overall post density
        # roughly proportional to network size over time — per-author
        # uniform draws would pile posts up at the window end.
        earliest = forum.creation_date + self.config.t_safe_millis
        end = self.config.window.end
        if earliest >= end:
            return None
        creation = earliest + stream.randint(0, end - earliest - 1)
        author = self._pick_author(stream, members, owner, wall_mode,
                                   creation)
        if author is None:
            return None
        person = author.person
        event = self.calendar.maybe_event_post(
            stream, person.interests,
            author.joined_date + self.config.t_safe_millis, end) \
            if self.config.event_driven_posts else None
        if event is not None:
            creation, tag_id = event
            tags = (tag_id,)
        else:
            tags = self._pick_post_tags(stream, forum, person)
        content = self._make_text(stream, tags, 20, 120)
        language = stream.choice(person.languages) if person.languages \
            else "en"
        country_id = self._post_country(stream, person)
        return _DraftMessage(
            creation_date=creation,
            author_id=person.id,
            forum=forum,
            tags=tags,
            content=content,
            language=language,
            country_id=country_id,
            location_ip=person.location_ip,
            browser_used=person.browser_used,
        )

    def _pick_post_tags(self, stream, forum, person) -> tuple[int, ...]:
        """Post topics: author interests mixed with the forum's tags."""
        pool = list(dict.fromkeys(person.interests + forum.tag_ids))
        if not pool:
            pool = [self.universe.tags[
                stream.zipf_index(len(self.universe.tags), 1.1)].id]
        count = min(len(pool), 1 + stream.geometric(0.6))
        return tuple(stream.sample(pool, count))

    def _post_country(self, stream, person) -> int:
        if stream.random() < _TRAVEL_PROBABILITY:
            country = stream.choice(self.universe.countries)
            return country.country_place_id
        return person.country_id

    def _make_text(self, stream, tags: tuple[int, ...], min_words: int,
                   max_words: int) -> str:
        """Topic-correlated message text (Table 1: post.topic → post.text)."""
        tag_name = (self.universe.tag_name_by_id[tags[0]] if tags
                    else "general")
        vocabulary = self.dictionaries.words_for_tag(tag_name)
        sampler = self._word_sampler(len(vocabulary))
        count = stream.randint(min_words, max_words)
        words = [vocabulary[sampler.sample(stream)]
                 for _ in range(count)]
        sentence = " ".join(words)
        return f"About {tag_name}: {sentence}."

    #: Word-rank samplers are pure functions of the vocabulary size, so
    #: one table per size is shared by every generator instance.
    _word_samplers: dict[int, ZipfSampler] = {}

    @classmethod
    def _word_sampler(cls, vocabulary_size: int) -> ZipfSampler:
        sampler = cls._word_samplers.get(vocabulary_size)
        if sampler is None:
            sampler = ZipfSampler(vocabulary_size, skew=1.05)
            cls._word_samplers[vocabulary_size] = sampler
        return sampler

    def _grow_comment_tree(self, stream, post: _DraftMessage, members,
                           drafts) -> None:
        mean = self.config.mean_comments_per_post
        count = stream.geometric(1.0 / (1.0 + mean))
        tree: list[_DraftMessage] = [post]
        for _ in range(count):
            # Recency bias: reply to the latest messages more often.
            parent = tree[-1 - min(stream.geometric(0.5), len(tree) - 1)]
            when = parent.creation_date + 1 + int(
                stream.exponential(_COMMENT_LAG_MEAN))
            if when >= self.config.window.end:
                continue
            author = self._eligible_member(stream, members, when)
            if author is None:
                continue
            tags = post.tags[:1] if stream.random() < 0.7 else ()
            comment = _DraftMessage(
                creation_date=when,
                author_id=author.person.id,
                forum=post.forum,
                tags=tags,
                content=self._make_text(stream, post.tags, 5, 40),
                language="",
                country_id=self._post_country(stream, author.person),
                location_ip=author.person.location_ip,
                browser_used=author.person.browser_used,
                parent=parent,
                root=post,
            )
            drafts.append(comment)
            tree.append(comment)
            self._add_likes(stream, comment, members)

    def _eligible_member(self, stream, members, when: int):
        """A member whose join + T_SAFE precedes ``when`` (or None)."""
        eligible = [m for m in members
                    if m.joined_date + self.config.t_safe_millis <= when]
        if not eligible:
            return None
        return stream.choice(eligible)

    def _add_likes(self, stream, draft: _DraftMessage, members) -> None:
        pool = [m for m in members
                if m.person.id != draft.author_id
                and m.joined_date + self.config.t_safe_millis
                <= draft.creation_date]
        if pool:
            mean = self.config.like_probability * len(pool)
            count = min(len(pool), stream.geometric(1.0 / (1.0 + mean)))
            for member in stream.sample(pool, count) if count else []:
                when = draft.creation_date + 1 + int(
                    stream.exponential(_LIKE_LAG_MEAN))
                if when < self.config.window.end:
                    draft.likes.append((member.person.id, when))
        if stream.random() < _STRANGER_LIKE_PROBABILITY:
            self._stranger_like(stream, draft, members)

    def _stranger_like(self, stream, draft: _DraftMessage, members) -> None:
        """A like from outside the forum's membership (Q7 flags these)."""
        num_persons = self.config.num_persons
        member_ids = {m.person.id for m in members}
        for _ in range(4):
            serial = stream.randint(0, num_persons - 1)
            candidate = make_id(EntityKind.PERSON, serial)
            if candidate in member_ids:
                continue
            when = draft.creation_date + 1 + int(
                stream.exponential(_LIKE_LAG_MEAN))
            stranger = self._resolve(candidate)
            if stranger.creation_date > draft.creation_date:
                continue  # the stranger had not joined the network yet
            if when < self.config.window.end:
                draft.likes.append((candidate, when))
            return

    def _fill_album(self, stream, album, members, owner, drafts) -> None:
        """Albums hold photos: image posts without text or comment trees."""
        earliest = album.creation_date + self.config.t_safe_millis
        end = self.config.window.end
        if earliest >= end:
            return
        photo_count = 1 + stream.geometric(0.15)
        session_start = earliest + stream.randint(0, end - earliest - 1)
        for index in range(photo_count):
            when = session_start + index * stream.randint(
                1000, MILLIS_PER_HOUR)
            if when >= end:
                break
            # Table 1: post.photoLocation → latitude/longitude match
            # the location — photos geotag near the owner's home city.
            lat, lon = self.universe.city_coords.get(owner.city_id,
                                                     (0.0, 0.0))
            photo = _DraftMessage(
                creation_date=when,
                author_id=owner.id,
                forum=album,
                tags=(),
                content="",
                language="",
                country_id=owner.country_id,
                location_ip=owner.location_ip,
                browser_used=owner.browser_used,
                image_file=f"photo{serial_of(album.id)}_{index}.jpg",
                latitude=round(lat + (stream.random() - 0.5) * 0.5, 4),
                longitude=round(lon + (stream.random() - 0.5) * 0.5, 4),
            )
            drafts.append(photo)
            self._add_likes(stream, photo, members)

def finalize_activity(forums, memberships, drafts) -> ActivityResult:
    """Assign ids in creation-time order and materialize entities.

    The paper (footnote 3) ensures message identifiers increase with
    creation time, which §3 notes gives high locality to date-range
    selections — we reproduce that property here, which is nontrivial
    because generation happens in owner order, not time order.

    This is also the sequential stitch of the parallel activity stage:
    the sorts below are stable and generation order only breaks their
    ties, so worker outputs concatenated in owner-serial order finalize
    into exactly the serial run's entities.
    """
    posts_drafts = sorted((d for d in drafts if d.is_post),
                          key=lambda d: (d.creation_date, d.author_id))
    comment_drafts = sorted((d for d in drafts if not d.is_post),
                            key=lambda d: (d.creation_date, d.author_id))
    post_ids = IdAllocator(EntityKind.POST)
    comment_ids = IdAllocator(EntityKind.COMMENT)
    for draft in posts_drafts:
        draft.final_id = post_ids.allocate()
    for draft in comment_drafts:
        draft.final_id = comment_ids.allocate()

    posts = [Post(
        id=d.final_id, creation_date=d.creation_date,
        author_id=d.author_id, forum_id=d.forum.id, content=d.content,
        length=len(d.content), language=d.language,
        country_id=d.country_id, tag_ids=d.tags,
        image_file=d.image_file, location_ip=d.location_ip,
        browser_used=d.browser_used, latitude=d.latitude,
        longitude=d.longitude,
    ) for d in posts_drafts]
    comments = [Comment(
        id=d.final_id, creation_date=d.creation_date,
        author_id=d.author_id, content=d.content,
        length=len(d.content), country_id=d.country_id,
        root_post_id=d.root.final_id, reply_of_id=d.parent.final_id,
        tag_ids=d.tags, location_ip=d.location_ip,
        browser_used=d.browser_used,
    ) for d in comment_drafts]
    likes = [Like(person_id, d.final_id, when, d.is_post)
             for d in drafts for person_id, when in d.likes]
    likes.sort(key=lambda like: (like.creation_date, like.person_id,
                                 like.message_id))
    memberships = sorted(memberships,
                         key=lambda m: (m.joined_date, m.forum_id,
                                        m.person_id))
    forums = sorted(forums, key=lambda f: f.id)
    return ActivityResult(forums, memberships, posts, comments, likes)
