"""Value dictionaries: the DBpedia substitute.

The original DATAGEN draws attribute values (names, universities, companies,
tags, message text) from DBpedia.  We ship curated built-in dictionaries
instead.  What matters for the benchmark — and what we preserve exactly — is
the *correlation machinery*: every country sees the same skewed rank
distribution over a dictionary, but the **order** of dictionary entries is
permuted per country (paper §2.1: "the shape of the attribute value
distributions is equal (and skewed), but the order of the values ... changes
depending on the correlation parameters").

For Germany and China the top-10 first names are the exact lists from the
paper's Table 2, so the Table 2 bench regenerates the paper's artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rng import RandomStream

# --------------------------------------------------------------------------
# Name cultures
# --------------------------------------------------------------------------

#: Per-culture first names.  Germany/China lead with the paper's Table 2
#: top-10 lists (treated as the male dictionary heads).
FIRST_NAMES: dict[str, dict[str, tuple[str, ...]]] = {
    "germanic": {
        "male": ("Karl", "Hans", "Wolfgang", "Fritz", "Rudolf", "Walter",
                 "Franz", "Paul", "Otto", "Wilhelm", "Stefan", "Jürgen",
                 "Klaus", "Dieter", "Heinz"),
        "female": ("Anna", "Ursula", "Monika", "Petra", "Sabine", "Renate",
                   "Helga", "Karin", "Brigitte", "Ingrid", "Claudia",
                   "Susanne", "Andrea", "Gisela", "Erika"),
    },
    "chinese": {
        "male": ("Yang", "Chen", "Wei", "Lei", "Jun", "Jie", "Li", "Hao",
                 "Lin", "Peng", "Ming", "Feng", "Tao", "Bin", "Gang"),
        "female": ("Fang", "Xiu", "Ying", "Na", "Min", "Jing", "Hua", "Yan",
                   "Mei", "Juan", "Xia", "Lan", "Hong", "Qing", "Zhen"),
    },
    "anglo": {
        "male": ("James", "John", "Robert", "Michael", "William", "David",
                 "Richard", "Joseph", "Thomas", "Charles", "George", "Daniel",
                 "Matthew", "Andrew", "Edward"),
        "female": ("Mary", "Patricia", "Jennifer", "Linda", "Elizabeth",
                   "Barbara", "Susan", "Jessica", "Sarah", "Karen", "Nancy",
                   "Margaret", "Lisa", "Betty", "Dorothy"),
    },
    "romance": {
        "male": ("José", "Antonio", "Juan", "Francisco", "Manuel", "Luis",
                 "Carlos", "Miguel", "Pedro", "Rafael", "Marco", "Paolo",
                 "Giovanni", "Pierre", "Jean"),
        "female": ("María", "Carmen", "Josefa", "Isabel", "Ana", "Dolores",
                   "Francisca", "Lucia", "Sofia", "Giulia", "Chiara",
                   "Camille", "Marie", "Elena", "Paula"),
    },
    "slavic": {
        "male": ("Ivan", "Dmitri", "Sergei", "Vladimir", "Andrei", "Alexei",
                 "Nikolai", "Mikhail", "Pavel", "Yuri", "Boris", "Oleg",
                 "Viktor", "Anton", "Roman"),
        "female": ("Olga", "Natasha", "Svetlana", "Irina", "Tatiana", "Elena",
                   "Anna", "Maria", "Ekaterina", "Ludmila", "Galina", "Vera",
                   "Nadia", "Polina", "Daria"),
    },
    "indic": {
        "male": ("Raj", "Amit", "Sanjay", "Vijay", "Rahul", "Arjun", "Ravi",
                 "Anil", "Suresh", "Deepak", "Kiran", "Manoj", "Ashok",
                 "Vikram", "Rohan"),
        "female": ("Priya", "Anita", "Sunita", "Kavita", "Pooja", "Neha",
                   "Meera", "Lakshmi", "Divya", "Asha", "Rani", "Sita",
                   "Geeta", "Nisha", "Shanti"),
    },
    "arabic": {
        "male": ("Mohammed", "Ahmed", "Ali", "Omar", "Hassan", "Hussein",
                 "Khalid", "Ibrahim", "Youssef", "Mustafa", "Tariq", "Samir",
                 "Karim", "Nabil", "Said"),
        "female": ("Fatima", "Aisha", "Mariam", "Zainab", "Layla", "Amina",
                   "Khadija", "Salma", "Nour", "Yasmin", "Huda", "Rania",
                   "Samira", "Leila", "Dalia"),
    },
    "japanese": {
        "male": ("Hiroshi", "Takashi", "Kenji", "Akira", "Yuki", "Satoshi",
                 "Kazuo", "Makoto", "Shinji", "Taro", "Daisuke", "Ryo",
                 "Kenta", "Sho", "Haruto"),
        "female": ("Yoko", "Keiko", "Sakura", "Yumi", "Akiko", "Naoko",
                   "Emi", "Mariko", "Haruka", "Aoi", "Rin", "Mei", "Hana",
                   "Misaki", "Kaori"),
    },
}

LAST_NAMES: dict[str, tuple[str, ...]] = {
    "germanic": ("Müller", "Schmidt", "Schneider", "Fischer", "Weber",
                 "Meyer", "Wagner", "Becker", "Schulz", "Hoffmann",
                 "Koch", "Bauer", "Richter", "Klein", "Wolf"),
    "chinese": ("Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang",
                "Zhao", "Wu", "Zhou", "Xu", "Sun", "Ma", "Zhu", "Hu"),
    "anglo": ("Smith", "Johnson", "Williams", "Brown", "Jones", "Miller",
              "Davis", "Wilson", "Taylor", "Clark", "Hall", "Allen",
              "Young", "King", "Wright"),
    "romance": ("García", "Rodríguez", "Martínez", "López", "González",
                "Rossi", "Ferrari", "Bianchi", "Martin", "Bernard",
                "Dubois", "Moreau", "Silva", "Santos", "Costa"),
    "slavic": ("Ivanov", "Petrov", "Sidorov", "Smirnov", "Kuznetsov",
               "Popov", "Volkov", "Sokolov", "Novak", "Kowalski",
               "Nowak", "Horvat", "Dvorak", "Svoboda", "Kovac"),
    "indic": ("Sharma", "Patel", "Singh", "Kumar", "Gupta", "Verma", "Rao",
              "Reddy", "Mehta", "Joshi", "Nair", "Iyer", "Das", "Bose",
              "Chatterjee"),
    "arabic": ("Al-Sayed", "Hassan", "Hussein", "Abdullah", "Rahman",
               "Khalil", "Nasser", "Saleh", "Amin", "Aziz", "Farah",
               "Haddad", "Khoury", "Najjar", "Sabbagh"),
    "japanese": ("Sato", "Suzuki", "Takahashi", "Tanaka", "Watanabe", "Ito",
                 "Yamamoto", "Nakamura", "Kobayashi", "Kato", "Yoshida",
                 "Yamada", "Sasaki", "Matsumoto", "Inoue"),
}

# --------------------------------------------------------------------------
# Geography: continents → countries → cities
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CountrySpec:
    """Static description of one country in the built-in gazetteer."""

    name: str
    continent: str
    culture: str
    #: Relative membership weight (skewed, roughly population-shaped).
    weight: float
    languages: tuple[str, ...]
    #: (city name, latitude, longitude) triples.
    cities: tuple[tuple[str, float, float], ...]
    universities: tuple[str, ...]
    companies: tuple[str, ...]


COUNTRIES: tuple[CountrySpec, ...] = (
    CountrySpec("China", "Asia", "chinese", 20.0, ("zh",),
                (("Beijing", 39.9, 116.4), ("Shanghai", 31.2, 121.5),
                 ("Guangzhou", 23.1, 113.3), ("Chengdu", 30.6, 104.1)),
                ("Tsinghua University", "Peking University",
                 "Fudan University"),
                ("Dragon Telecom", "Red Lantern Media", "Jade Motors",
                 "Golden Harvest Foods")),
    CountrySpec("India", "Asia", "indic", 18.0, ("hi", "en"),
                (("Mumbai", 19.1, 72.9), ("Delhi", 28.6, 77.2),
                 ("Bangalore", 13.0, 77.6), ("Chennai", 13.1, 80.3)),
                ("IIT Bombay", "University of Delhi", "IISc Bangalore"),
                ("Lotus Software", "Ganges Steel", "Peacock Textiles",
                 "Monsoon Pharma")),
    CountrySpec("United States", "NorthAmerica", "anglo", 15.0, ("en",),
                (("New York", 40.7, -74.0), ("Los Angeles", 34.1, -118.2),
                 ("Chicago", 41.9, -87.6), ("Houston", 29.8, -95.4)),
                ("MIT", "Stanford University", "Harvard University"),
                ("Apex Systems", "Liberty Logistics", "Summit Retail",
                 "Pioneer Energy")),
    CountrySpec("Indonesia", "Asia", "arabic", 8.0, ("id",),
                (("Jakarta", -6.2, 106.8), ("Surabaya", -7.2, 112.7),
                 ("Bandung", -6.9, 107.6)),
                ("University of Indonesia", "Bandung Institute"),
                ("Archipelago Air", "Spice Route Trading")),
    CountrySpec("Brazil", "SouthAmerica", "romance", 7.0, ("pt",),
                (("São Paulo", -23.6, -46.6), ("Rio de Janeiro", -22.9, -43.2),
                 ("Brasília", -15.8, -47.9)),
                ("University of São Paulo", "UNICAMP"),
                ("Amazonia Mining", "Carnival Media", "Ipanema Foods")),
    CountrySpec("Russia", "Europe", "slavic", 6.0, ("ru",),
                (("Moscow", 55.8, 37.6), ("Saint Petersburg", 59.9, 30.4),
                 ("Novosibirsk", 55.0, 82.9)),
                ("Moscow State University", "SPbU"),
                ("Volga Motors", "Siberia Gas", "Tundra Telecom")),
    CountrySpec("Japan", "Asia", "japanese", 5.0, ("ja",),
                (("Tokyo", 35.7, 139.7), ("Osaka", 34.7, 135.5),
                 ("Nagoya", 35.2, 136.9)),
                ("University of Tokyo", "Kyoto University"),
                ("Sakura Electronics", "Fuji Precision", "Kaze Robotics")),
    CountrySpec("Germany", "Europe", "germanic", 4.5, ("de",),
                (("Berlin", 52.5, 13.4), ("Munich", 48.1, 11.6),
                 ("Hamburg", 53.6, 10.0), ("Cologne", 50.9, 6.9)),
                ("TU Munich", "Heidelberg University", "HU Berlin"),
                ("Rhein Motoren", "Schwarzwald Pharma", "Hanse Logistik",
                 "Alpen Software")),
    CountrySpec("Mexico", "NorthAmerica", "romance", 4.0, ("es",),
                (("Mexico City", 19.4, -99.1), ("Guadalajara", 20.7, -103.3),
                 ("Monterrey", 25.7, -100.3)),
                ("UNAM", "Tecnológico de Monterrey"),
                ("Azteca Cement", "Sierra Foods")),
    CountrySpec("France", "Europe", "romance", 3.5, ("fr",),
                (("Paris", 48.9, 2.4), ("Lyon", 45.8, 4.8),
                 ("Marseille", 43.3, 5.4)),
                ("Sorbonne", "École Polytechnique"),
                ("Lumière Cosmetics", "Gaulois Rail", "Provence Vins")),
    CountrySpec("United Kingdom", "Europe", "anglo", 3.5, ("en",),
                (("London", 51.5, -0.1), ("Manchester", 53.5, -2.2),
                 ("Edinburgh", 55.9, -3.2)),
                ("University of Oxford", "University of Cambridge",
                 "Imperial College"),
                ("Thames Bank", "Albion Press", "Crown Chemicals")),
    CountrySpec("Italy", "Europe", "romance", 3.0, ("it",),
                (("Rome", 41.9, 12.5), ("Milan", 45.5, 9.2),
                 ("Naples", 40.9, 14.3)),
                ("Sapienza University", "Politecnico di Milano"),
                ("Vesuvio Fashion", "Adriatico Shipping")),
    CountrySpec("Egypt", "Africa", "arabic", 3.0, ("ar",),
                (("Cairo", 30.0, 31.2), ("Alexandria", 31.2, 29.9)),
                ("Cairo University", "Alexandria University"),
                ("Nile Cotton", "Pyramid Construction")),
    CountrySpec("Nigeria", "Africa", "anglo", 3.0, ("en",),
                (("Lagos", 6.5, 3.4), ("Abuja", 9.1, 7.4)),
                ("University of Lagos", "University of Ibadan"),
                ("Savanna Oil", "Harmattan Media")),
    CountrySpec("Spain", "Europe", "romance", 2.5, ("es",),
                (("Madrid", 40.4, -3.7), ("Barcelona", 41.4, 2.2),
                 ("Valencia", 39.5, -0.4)),
                ("UPC Barcelona", "Universidad Complutense"),
                ("Iberia Solar", "Flamenco Media")),
    CountrySpec("Netherlands", "Europe", "germanic", 2.0, ("nl", "en"),
                (("Amsterdam", 52.4, 4.9), ("Rotterdam", 51.9, 4.5),
                 ("Utrecht", 52.1, 5.1)),
                ("University of Amsterdam", "VU University", "TU Delft"),
                ("Tulip Bank", "Polder Logistics", "Delta Engineering")),
    CountrySpec("Sweden", "Europe", "germanic", 1.5, ("sv", "en"),
                (("Stockholm", 59.3, 18.1), ("Gothenburg", 57.7, 12.0)),
                ("KTH Royal Institute", "Uppsala University"),
                ("Norrland Timber", "Aurora Telecom")),
    CountrySpec("Canada", "NorthAmerica", "anglo", 1.5, ("en", "fr"),
                (("Toronto", 43.7, -79.4), ("Vancouver", 49.3, -123.1),
                 ("Montreal", 45.5, -73.6)),
                ("University of Toronto", "McGill University"),
                ("Maple Rail", "Tundra Outfitters")),
    CountrySpec("Australia", "Oceania", "anglo", 1.5, ("en",),
                (("Sydney", -33.9, 151.2), ("Melbourne", -37.8, 145.0)),
                ("University of Sydney", "University of Melbourne"),
                ("Outback Mining", "Reef Tourism")),
    CountrySpec("Argentina", "SouthAmerica", "romance", 1.5, ("es",),
                (("Buenos Aires", -34.6, -58.4), ("Córdoba", -31.4, -64.2)),
                ("University of Buenos Aires", "UNC Córdoba"),
                ("Pampas Beef", "Tango Media")),
    CountrySpec("Poland", "Europe", "slavic", 1.5, ("pl",),
                (("Warsaw", 52.2, 21.0), ("Kraków", 50.1, 19.9)),
                ("University of Warsaw", "Jagiellonian University"),
                ("Vistula Shipyards", "Baltic Amber Works")),
    CountrySpec("South Korea", "Asia", "chinese", 1.5, ("ko",),
                (("Seoul", 37.6, 127.0), ("Busan", 35.2, 129.1)),
                ("Seoul National University", "KAIST"),
                ("Han River Electronics", "Mugunghwa Motors")),
)

CONTINENTS: tuple[str, ...] = tuple(sorted({c.continent for c in COUNTRIES}))

BROWSERS: tuple[str, ...] = ("Firefox", "Chrome", "Internet Explorer",
                             "Safari", "Opera")
#: Skewed browser market shares.
BROWSER_WEIGHTS: tuple[float, ...] = (0.30, 0.35, 0.20, 0.10, 0.05)

GENDERS: tuple[str, ...] = ("male", "female")

EMAIL_PROVIDERS: tuple[str, ...] = ("mail.example.org", "inbox.example.net",
                                    "post.example.com")

# --------------------------------------------------------------------------
# Tags and tag classes (topics)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TagClassSpec:
    """One tag class and its tags; ``parent`` names a broader class."""

    name: str
    parent: str | None
    tags: tuple[str, ...]


TAG_CLASSES: tuple[TagClassSpec, ...] = (
    TagClassSpec("Thing", None, ()),
    TagClassSpec("Person", "Thing", ()),
    TagClassSpec("MusicalArtist", "Person",
                 ("The Velvet Tides", "Elvis Presley", "Aurora Quartet",
                  "Johann Sebastian Bach", "Neon Harbour", "Miles Davis",
                  "The Paper Lanterns", "Ludwig van Beethoven",
                  "Scarlet Meridian", "Ravi Shankar", "Midnight Express",
                  "Edith Piaf", "Golden Pagoda", "Bob Marley",
                  "Crystal Static", "Umm Kulthum")),
    TagClassSpec("Athlete", "Person",
                 ("Diego Maradona", "Serena Sprint", "Usain Bolt",
                  "Vera Marathon", "Pelé", "Kim Slalom", "Roger Federer",
                  "Nadia Vault", "Michael Jordan", "Yuki Blade")),
    TagClassSpec("Politician", "Person",
                 ("Winston Churchill", "Abraham Lincoln", "Indira Gandhi",
                  "Nelson Mandela", "Golda Meir", "Simón Bolívar",
                  "Otto von Bismarck", "Eleanor Roosevelt")),
    TagClassSpec("Writer", "Person",
                 ("Leo Tolstoy", "Jane Austen", "Gabriel García Márquez",
                  "Franz Kafka", "Murasaki Shikibu", "Jorge Luis Borges",
                  "Virginia Woolf", "Rabindranath Tagore", "Naguib Mahfouz",
                  "Astrid Lindgren")),
    TagClassSpec("Scientist", "Person",
                 ("Albert Einstein", "Marie Curie", "Isaac Newton",
                  "Ada Lovelace", "Charles Darwin", "Alan Turing",
                  "Rosalind Franklin", "Nikola Tesla", "Emmy Noether",
                  "Srinivasa Ramanujan")),
    TagClassSpec("CreativeWork", "Thing", ()),
    TagClassSpec("Film", "CreativeWork",
                 ("Casablanca", "Seven Samurai", "The Clockwork Garden",
                  "Metropolis", "Cinema Paradiso", "The Salt Road",
                  "City Lights", "Winter Harbour", "The Glass Mountain",
                  "Monsoon Season")),
    TagClassSpec("Book", "CreativeWork",
                 ("War and Peace", "Don Quixote", "The Dream of Red Mansions",
                  "One Hundred Years of Solitude", "The Tale of Genji",
                  "Things Fall Apart", "Crime and Punishment",
                  "Pride and Prejudice", "The Metamorphosis", "Ramayana")),
    TagClassSpec("VideoGame", "CreativeWork",
                 ("Star Forge", "Pixel Kingdom", "Dungeon of Echoes",
                  "Sky Racer", "Chrono Harvest", "Mecha Arena")),
    TagClassSpec("Place", "Thing", ()),
    TagClassSpec("Landmark", "Place",
                 ("Great Wall of China", "Eiffel Tower", "Taj Mahal",
                  "Machu Picchu", "Pyramids of Giza", "Mount Fuji",
                  "Statue of Liberty", "Brandenburg Gate", "Sydney Opera",
                  "Red Square")),
    TagClassSpec("Activity", "Thing", ()),
    TagClassSpec("Sport", "Activity",
                 ("Football", "Cricket", "Basketball", "Tennis",
                  "Table Tennis", "Swimming", "Athletics", "Chess",
                  "Volleyball", "Cycling", "Baseball", "Rugby")),
    TagClassSpec("Hobby", "Activity",
                 ("Photography", "Cooking", "Gardening", "Hiking",
                  "Painting", "Calligraphy", "Origami", "Birdwatching",
                  "Astronomy", "Knitting")),
    TagClassSpec("Technology", "Thing",
                 ("Databases", "Machine Learning", "Graph Theory",
                  "Operating Systems", "Compilers", "Distributed Systems",
                  "Cryptography", "Robotics", "Semantic Web",
                  "Computer Graphics", "Quantum Computing", "Networking")),
)

#: Word bank for generating message text; per-tag sub-vocabularies are
#: carved out of this bank deterministically (the DBpedia-article-text
#: substitute).
WORD_BANK: tuple[str, ...] = (
    "about", "above", "across", "album", "ancient", "annual", "archive",
    "article", "artist", "audience", "author", "award", "ballad", "band",
    "battle", "beautiful", "between", "border", "bridge", "bright",
    "capital", "career", "century", "champion", "chapter", "character",
    "city", "classic", "climate", "collection", "college", "colour",
    "concert", "country", "critic", "culture", "debut", "decade", "defence",
    "design", "director", "discovery", "district", "drama", "dynasty",
    "early", "eastern", "edition", "emperor", "empire", "energy", "engine",
    "episode", "equation", "event", "exhibition", "experiment", "famous",
    "festival", "fiction", "field", "final", "forest", "formula", "founded",
    "garden", "genre", "global", "gold", "government", "great", "harbour",
    "heritage", "historic", "history", "honour", "island", "journal",
    "journey", "kingdom", "language", "league", "legend", "library",
    "literature", "local", "machine", "market", "match", "medal", "member",
    "memory", "method", "modern", "monument", "mountain", "museum", "music",
    "nation", "nature", "network", "northern", "notable", "novel", "ocean",
    "opera", "orchestra", "origin", "palace", "paper", "period", "physics",
    "player", "poem", "popular", "portrait", "premiere", "president",
    "prize", "professor", "project", "province", "public", "publish",
    "record", "reform", "region", "research", "result", "river", "royal",
    "school", "science", "season", "senate", "series", "silver", "society",
    "southern", "stadium", "state", "station", "statue", "story", "student",
    "studio", "style", "summer", "symphony", "system", "teacher", "team",
    "temple", "theatre", "theory", "title", "tournament", "tradition",
    "treaty", "university", "valley", "victory", "village", "volume",
    "western", "winner", "winter", "world", "writer", "young",
)


class Dictionaries:
    """Accessor over the built-in dictionaries with correlation-aware picks.

    The central primitive is :meth:`ranked`: given a dictionary (tuple of
    values) and a correlation key (e.g. country name), it returns the values
    re-ordered by a per-key deterministic permutation.  Drawing ranks from a
    fixed skewed distribution over the re-ordered list realizes the paper's
    "same shape, different order" correlated distributions.

    For first names the permutation is anchored: the culture's own list is
    kept in order at the head (so Table 2 reproduces), with other cultures'
    names appended in permuted order as the rare tail ("there are Germans
    with Chinese names, but these are infrequent").
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.country_by_name = {c.name: c for c in COUNTRIES}
        self._tag_names = tuple(
            tag for spec in TAG_CLASSES for tag in spec.tags)
        self._permutation_cache: dict[tuple, tuple] = {}

    # -- generic correlated ordering ------------------------------------

    def permuted(self, values: tuple, *key_parts: int | str) -> tuple:
        """Deterministic permutation of ``values`` keyed by ``key_parts``."""
        cache_key = (len(values), *key_parts)
        cached = self._permutation_cache.get(cache_key)
        if cached is not None:
            return cached
        stream = RandomStream.for_key(self.seed, "perm", *key_parts)
        order = list(values)
        stream.shuffle(order)
        result = tuple(order)
        self._permutation_cache[cache_key] = result
        return result

    # -- names -----------------------------------------------------------

    def first_names_for(self, country: str, gender: str) -> tuple[str, ...]:
        """First-name dictionary for a (country, gender) pair.

        The local culture's list leads in its canonical order; a permuted
        sample of foreign names forms the rare tail.
        """
        culture = self.country_by_name[country].culture
        local = FIRST_NAMES[culture][gender]
        foreign: list[str] = []
        for other_culture, by_gender in FIRST_NAMES.items():
            if other_culture != culture:
                foreign.extend(by_gender[gender])
        tail = self.permuted(tuple(foreign), "first", country, gender)
        return local + tail

    def last_names_for(self, country: str) -> tuple[str, ...]:
        """Last-name dictionary for a country (same anchoring scheme)."""
        culture = self.country_by_name[country].culture
        local = LAST_NAMES[culture]
        foreign: list[str] = []
        for other_culture, names in LAST_NAMES.items():
            if other_culture != culture:
                foreign.extend(names)
        tail = self.permuted(tuple(foreign), "last", country)
        return local + tail

    # -- tags --------------------------------------------------------------

    @property
    def tag_names(self) -> tuple[str, ...]:
        """All tag names across all classes."""
        return self._tag_names

    def tags_ranked_for_country(self, country: str) -> tuple[str, ...]:
        """Tag popularity order as seen from one country.

        Same skewed shape everywhere, country-specific order — the
        "popular artist depends on location" correlation of Table 1.
        """
        return self.permuted(self._tag_names, "tags", country)

    def words_for_tag(self, tag_name: str, vocabulary_size: int = 40,
                      ) -> tuple[str, ...]:
        """Per-topic sub-vocabulary of the word bank (DBpedia text stand-in)."""
        ordered = self.permuted(WORD_BANK, "words", tag_name)
        return ordered[:vocabulary_size]

    # -- geography ---------------------------------------------------------

    def country_weights(self) -> list[float]:
        """Relative population weights aligned with ``COUNTRIES`` order."""
        return [c.weight for c in COUNTRIES]

    def pick_country(self, stream: RandomStream) -> CountrySpec:
        """Draw a country by population weight."""
        idx = stream.weighted_choice(self.country_weights())
        return COUNTRIES[idx]


def total_city_count() -> int:
    """Number of cities in the gazetteer."""
    return sum(len(c.cities) for c in COUNTRIES)


def total_tag_count() -> int:
    """Number of tags across all classes."""
    return sum(len(spec.tags) for spec in TAG_CLASSES)
