"""DATAGEN pipeline: person → friendship → activity stages (paper §2.4).

The original generator runs as three groups of MapReduce jobs.  Here the
stages run in-process by default, but the structure (and the determinism
guarantee) is preserved:

* **person generation** is embarrassingly parallel per person serial;
* **friendship generation** is "a succession of stages, each of them based
  on a different correlation dimension", each a sort followed by a
  sequential sliding-window sweep;
* **person activity generation** is parallel per forum owner.

With ``config.parallel.jobs > 1`` the three parallelizable stages really
do run across worker processes (:mod:`repro.datagen.parallel`): persons
chunked by serial range, friendship sweeps as speculative blocks with a
sequential validate-and-stitch, activity by owner range with the
time-ordered id assignment as the stitch.  The output is byte-identical
to the serial run for any job count — the invariance tests assert it.

``config.num_workers`` separately emulates cluster *width* for Fig. 3b:
the pipeline records, per stage, how much of the work is partitionable,
and :meth:`DatagenTimings.projected_seconds` projects multi-node runtimes
the way the paper reports them (sort/sequential parts scale; per-item
parts divide by the worker count).  The measured counterpart is
``benchmarks/bench_figure3b_datagen_scaleup.py``, which times real runs
at several ``--jobs`` values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import telemetry
from ..schema.dataset import SocialNetwork
from .activity import ActivityGenerator, finalize_activity
from .config import DatagenConfig
from .dictionaries import Dictionaries
from .events import EventCalendar
from .friendships import generate_friendships
from .parallel import DatagenExecutor
from .persons import generate_person
from .universe import build_universe


@dataclass
class StageTiming:
    """Wall-clock seconds of one stage, split by parallelizability."""

    name: str
    seconds: float
    #: Fraction of the stage that partitions cleanly over workers.
    parallel_fraction: float


@dataclass
class DatagenTimings:
    """Per-stage timings of one generation run (Fig. 3b input)."""

    stages: list[StageTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def projected_seconds(self, num_workers: int) -> float:
        """Amdahl projection of the run on ``num_workers`` nodes."""
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        total = 0.0
        for stage in self.stages:
            parallel = stage.seconds * stage.parallel_fraction
            serial = stage.seconds - parallel
            total += serial + parallel / num_workers
        return total


class DatagenPipeline:
    """Runs the full generation pipeline for one configuration."""

    def __init__(self, config: DatagenConfig) -> None:
        self.config = config
        self.timings = DatagenTimings()

    def run(self) -> SocialNetwork:
        """Generate the network; timings are recorded on ``self.timings``."""
        config = self.config
        dictionaries = Dictionaries(config.seed)
        executor = DatagenExecutor.create(config)
        jobs = executor.jobs if executor is not None else 1
        try:
            started = time.perf_counter()
            universe = build_universe(dictionaries)
            self._record("universe", started, parallel_fraction=0.0,
                         jobs=1)

            started = time.perf_counter()
            persons = self._generate_persons(dictionaries, universe,
                                             executor)
            self._record("persons", started, parallel_fraction=1.0,
                         jobs=jobs)

            started = time.perf_counter()
            knows = generate_friendships(config, universe, persons,
                                         executor)
            # The three passes are dominated by the per-person window
            # sweeps, which partition over workers; the sorts are the
            # serial part.
            self._record("friendships", started, parallel_fraction=0.8,
                         jobs=jobs)

            started = time.perf_counter()
            calendar = EventCalendar.generate(config, universe)
            adjacency = _adjacency(persons, knows)
            generator = ActivityGenerator(config, dictionaries, universe,
                                          calendar)
            if executor is not None:
                activity = self._generate_activity_parallel(
                    generator, persons, adjacency, executor)
            else:
                activity = generator.generate(persons, adjacency)
            self._record("activity", started, parallel_fraction=0.95,
                         jobs=jobs)
        finally:
            if executor is not None:
                executor.close()

        return SocialNetwork(
            persons=persons,
            knows=knows,
            forums=activity.forums,
            memberships=activity.memberships,
            posts=activity.posts,
            comments=activity.comments,
            likes=activity.likes,
            tags=list(universe.tags),
            tag_classes=list(universe.tag_classes),
            places=list(universe.places),
            organisations=list(universe.organisations),
        )

    def _generate_persons(self, dictionaries, universe, executor=None):
        """Person stage: chunked over workers, merged in serial order.

        With an executor, serial ranges run in worker processes and the
        ordered results concatenate back into serial order.  The
        in-process path emulates a ``num_workers``-wide cluster instead:
        chunks are processed round-robin (one person from each chunk per
        round, as interleaved mapper output would arrive) and merged by
        serial — the output is identical for any worker count, and the
        determinism test exercises exactly this reordering.
        """
        config = self.config
        if executor is not None:
            blocks = executor.partition(config.num_persons)
            results = executor.run_tasks("persons", blocks,
                                         span_name="datagen.persons.block")
            return [person for block in results for person in block]
        chunk_size = max(1, -(-config.num_persons // config.num_workers))
        chunks = [range(start, min(start + chunk_size, config.num_persons))
                  for start in range(0, config.num_persons, chunk_size)]
        by_serial = {}
        for round_index in range(chunk_size):
            for chunk in chunks:
                if round_index >= len(chunk):
                    continue
                serial = chunk[round_index]
                by_serial[serial] = generate_person(serial, config,
                                                    dictionaries, universe)
        return [by_serial[serial] for serial in range(config.num_persons)]

    def _generate_activity_parallel(self, generator, persons, adjacency,
                                    executor):
        """Activity stage over owner ranges; finalize is the stitch."""
        payloads = []
        for start, end in executor.partition(len(persons)):
            owners = persons[start:end]
            payloads.append({
                "owners": owners,
                "adjacency": {p.id: adjacency.get(p.id, [])
                              for p in owners},
            })
        results = executor.run_tasks("activity", payloads,
                                     span_name="datagen.activity.block")
        forums, memberships, drafts = [], [], []
        for block_forums, block_memberships, block_drafts in results:
            forums.extend(block_forums)
            memberships.extend(block_memberships)
            drafts.extend(block_drafts)
        return finalize_activity(forums, memberships, drafts)

    def _record(self, name: str, started: float,
                parallel_fraction: float, jobs: int = 1) -> None:
        ended = time.perf_counter()
        elapsed = ended - started
        self.timings.stages.append(StageTiming(name, elapsed,
                                               parallel_fraction))
        if telemetry.active:
            # Stages time themselves (perf_counter, the tracer's clock),
            # so they export as pre-timed spans.
            telemetry.add_span("datagen." + name, started, ended,
                               parallel_fraction=parallel_fraction,
                               jobs=jobs)


def _adjacency(persons, knows) -> dict[int, list[tuple[int, int]]]:
    """Person id → [(friend id, friendship creation date)], both ways."""
    adjacency: dict[int, list[tuple[int, int]]] = {p.id: [] for p in persons}
    for edge in knows:
        adjacency[edge.person1_id].append((edge.person2_id,
                                           edge.creation_date))
        adjacency[edge.person2_id].append((edge.person1_id,
                                           edge.creation_date))
    return adjacency


def generate(config: DatagenConfig) -> SocialNetwork:
    """Generate a social network for the given configuration."""
    return DatagenPipeline(config).run()
