"""DATAGEN pipeline: person → friendship → activity stages (paper §2.4).

The original generator runs as three groups of MapReduce jobs.  Here the
stages run in-process, but the structure (and the determinism guarantee) is
preserved:

* **person generation** is embarrassingly parallel per person serial;
* **friendship generation** is "a succession of stages, each of them based
  on a different correlation dimension", each a sort followed by a
  sequential sliding-window sweep;
* **person activity generation** is parallel per forum owner.

``config.num_workers`` emulates the cluster width: the pipeline records,
per stage, how much of the work is partitionable, and
:meth:`DatagenTimings.projected_seconds` projects multi-node runtimes the
way Fig. 3b reports them (sort/sequential parts scale; per-item parts
divide by the worker count).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import telemetry
from ..schema.dataset import SocialNetwork
from .activity import ActivityGenerator
from .config import DatagenConfig
from .dictionaries import Dictionaries
from .events import EventCalendar
from .friendships import generate_friendships
from .persons import generate_person
from .universe import build_universe


@dataclass
class StageTiming:
    """Wall-clock seconds of one stage, split by parallelizability."""

    name: str
    seconds: float
    #: Fraction of the stage that partitions cleanly over workers.
    parallel_fraction: float


@dataclass
class DatagenTimings:
    """Per-stage timings of one generation run (Fig. 3b input)."""

    stages: list[StageTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def projected_seconds(self, num_workers: int) -> float:
        """Amdahl projection of the run on ``num_workers`` nodes."""
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        total = 0.0
        for stage in self.stages:
            parallel = stage.seconds * stage.parallel_fraction
            serial = stage.seconds - parallel
            total += serial + parallel / num_workers
        return total


class DatagenPipeline:
    """Runs the full generation pipeline for one configuration."""

    def __init__(self, config: DatagenConfig) -> None:
        self.config = config
        self.timings = DatagenTimings()

    def run(self) -> SocialNetwork:
        """Generate the network; timings are recorded on ``self.timings``."""
        config = self.config
        dictionaries = Dictionaries(config.seed)

        started = time.perf_counter()
        universe = build_universe(dictionaries)
        self._record("universe", started, parallel_fraction=0.0)

        started = time.perf_counter()
        persons = self._generate_persons(dictionaries, universe)
        self._record("persons", started, parallel_fraction=1.0)

        started = time.perf_counter()
        knows = generate_friendships(config, universe, persons)
        # The three passes are dominated by the per-person window sweeps,
        # which partition over workers; the sorts are the serial part.
        self._record("friendships", started, parallel_fraction=0.8)

        started = time.perf_counter()
        calendar = EventCalendar.generate(config, universe)
        adjacency = _adjacency(persons, knows)
        activity = ActivityGenerator(config, dictionaries, universe,
                                     calendar).generate(persons, adjacency)
        self._record("activity", started, parallel_fraction=0.95)

        return SocialNetwork(
            persons=persons,
            knows=knows,
            forums=activity.forums,
            memberships=activity.memberships,
            posts=activity.posts,
            comments=activity.comments,
            likes=activity.likes,
            tags=list(universe.tags),
            tag_classes=list(universe.tag_classes),
            places=list(universe.places),
            organisations=list(universe.organisations),
        )

    def _generate_persons(self, dictionaries, universe):
        """Person stage: chunked over workers, merged in serial order.

        Chunks are processed in an order that depends on ``num_workers``
        (round-robin, as a cluster would interleave them) and then merged
        by serial — the output is identical for any worker count, and the
        determinism test exercises exactly this.
        """
        config = self.config
        chunk_size = max(1, -(-config.num_persons // config.num_workers))
        chunks = [range(start, min(start + chunk_size, config.num_persons))
                  for start in range(0, config.num_persons, chunk_size)]
        by_serial = {}
        for chunk in chunks:
            for serial in chunk:
                by_serial[serial] = generate_person(serial, config,
                                                    dictionaries, universe)
        return [by_serial[serial] for serial in range(config.num_persons)]

    def _record(self, name: str, started: float,
                parallel_fraction: float) -> None:
        ended = time.perf_counter()
        elapsed = ended - started
        self.timings.stages.append(StageTiming(name, elapsed,
                                               parallel_fraction))
        if telemetry.active:
            # Stages time themselves (perf_counter, the tracer's clock),
            # so they export as pre-timed spans.
            telemetry.add_span("datagen." + name, started, ended,
                               parallel_fraction=parallel_fraction)


def _adjacency(persons, knows) -> dict[int, list[tuple[int, int]]]:
    """Person id → [(friend id, friendship creation date)], both ways."""
    adjacency: dict[int, list[tuple[int, int]]] = {p.id: [] for p in persons}
    for edge in knows:
        adjacency[edge.person1_id].append((edge.person2_id,
                                           edge.creation_date))
        adjacency[edge.person2_id].append((edge.person1_id,
                                           edge.creation_date))
    return adjacency


def generate(config: DatagenConfig) -> SocialNetwork:
    """Generate a social network for the given configuration."""
    return DatagenPipeline(config).run()
