"""Event-driven spiking trends (paper §2.2, Figure 2a).

"The volume of person activity in a real social network ... is not uniform,
but driven by real world events ...  Whenever an important real world event
occurs, the amount of people and messages talking about that topic spikes."

We simulate a calendar of world events.  Each event has a timestamp, a
topic tag and an importance level; post volume around an event follows the
rise-and-decay kernel proposed in Leskovec et al.'s meme-tracking study
(sharp, short rise before/at the peak; slower power-law-ish decay after).
When event-driven generation is enabled, a person interested in an event's
topic redirects a share of their posts to the event: the post's timestamp
is drawn from the kernel around the event and its topic becomes the event
tag.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rng import RandomStream
from ..sim_time import MILLIS_PER_DAY
from .config import DatagenConfig
from .universe import Universe

#: Importance levels and their relative frequency / attraction weight.
_LEVEL_WEIGHTS = (0.70, 0.25, 0.05)
_LEVEL_MAGNITUDES = (1.0, 3.0, 9.0)
#: Mean decay time of interest after an event, per level (days).
_DECAY_DAYS = (2.0, 4.0, 8.0)
#: Mean rise time before the event peak (days).
_RISE_DAYS = 0.5
#: Probability that a post by an interested person is about a live event.
_EVENT_POST_PROBABILITY = 0.6


@dataclass(frozen=True)
class WorldEvent:
    """One simulated real-world event (election, disaster, final, ...)."""

    time: int
    tag_id: int
    #: 0 = minor, 1 = national, 2 = global.
    level: int

    @property
    def magnitude(self) -> float:
        return _LEVEL_MAGNITUDES[self.level]

    @property
    def decay_millis(self) -> float:
        return _DECAY_DAYS[self.level] * MILLIS_PER_DAY


class EventCalendar:
    """The set of simulated events over the generation window."""

    def __init__(self, events: list[WorldEvent]) -> None:
        self.events = sorted(events, key=lambda e: e.time)
        self._by_tag: dict[int, list[WorldEvent]] = {}
        for event in self.events:
            self._by_tag.setdefault(event.tag_id, []).append(event)

    @classmethod
    def generate(cls, config: DatagenConfig,
                 universe: Universe) -> "EventCalendar":
        """Simulate ``events_per_year`` events per simulated year."""
        years = max(config.window.span / (365.25 * MILLIS_PER_DAY), 0.1)
        count = max(1, round(config.events_per_year * years))
        stream = RandomStream.for_key(config.seed, "events")
        all_tags = [t.id for t in universe.tags]
        events = []
        for _ in range(count):
            time = config.window.start + stream.randint(
                0, config.window.span - 1)
            # Popular (low-rank) tags are more likely to have events.
            tag_id = all_tags[stream.zipf_index(len(all_tags), 1.05)]
            level = stream.weighted_choice(_LEVEL_WEIGHTS)
            events.append(WorldEvent(time, tag_id, level))
        return cls(events)

    def events_for_interests(self, interests: tuple[int, ...],
                             start: int, end: int) -> list[WorldEvent]:
        """Events on any interested-in tag peaking within ``[start, end]``."""
        matching: list[WorldEvent] = []
        for tag_id in interests:
            for event in self._by_tag.get(tag_id, ()):
                if start <= event.time <= end:
                    matching.append(event)
        return matching

    def maybe_event_post(self, stream: RandomStream,
                         interests: tuple[int, ...], start: int,
                         end: int) -> tuple[int, int] | None:
        """Decide whether a post is event-driven.

        Returns ``(timestamp, tag_id)`` drawn from an event kernel, or
        ``None`` for a regular (uniform-in-time, own-topic) post.  ``start``
        is the earliest time the author may post (join + T_SAFE) and
        ``end`` the end of the window.
        """
        if stream.random() >= _EVENT_POST_PROBABILITY:
            return None
        candidates = self.events_for_interests(interests, start, end)
        if not candidates:
            return None
        weights = [event.magnitude for event in candidates]
        event = candidates[stream.weighted_choice(weights)]
        timestamp = self._sample_kernel(stream, event, start, end)
        if timestamp is None:
            return None
        return timestamp, event.tag_id

    @staticmethod
    def _sample_kernel(stream: RandomStream, event: WorldEvent,
                       start: int, end: int) -> int | None:
        """Draw a post time from the rise/decay kernel around the event."""
        if stream.random() < 0.15:
            # Anticipation: short exponential rise before the peak.
            offset = -int(stream.exponential(_RISE_DAYS * MILLIS_PER_DAY))
        else:
            # Decay: longer exponential tail after the peak.
            offset = int(stream.exponential(event.decay_millis))
        timestamp = event.time + offset
        if timestamp < start or timestamp >= end:
            return None
        return timestamp

    def density_series(self, timestamps: list[int], start: int, end: int,
                       buckets: int = 100) -> list[int]:
        """Bucketed post counts over time (Fig. 2a series helper)."""
        series = [0] * buckets
        span = max(end - start, 1)
        for ts in timestamps:
            if start <= ts < end:
                series[min((ts - start) * buckets // span, buckets - 1)] += 1
        return series
