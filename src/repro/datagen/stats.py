"""Dataset statistics (paper Table 3) and frequency statistics for curation.

Two consumers:

* the Table 3 bench reports entity counts per scale factor;
* parameter curation (paper §4.1 "since we are generating the data anyway,
  we can keep the corresponding counts ... as a by-product of data
  generation") consumes per-person frequency statistics: friend counts,
  2-hop neighborhood sizes, message counts, etc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schema.dataset import SocialNetwork


@dataclass
class DatasetStatistics:
    """Aggregate counts of a generated network (Table 3 columns)."""

    nodes: int
    edges: int
    persons: int
    friendships: int
    messages: int
    forums: int

    @classmethod
    def of(cls, network: SocialNetwork) -> "DatasetStatistics":
        return cls(
            nodes=network.num_nodes,
            edges=network.num_edges,
            persons=len(network.persons),
            friendships=len(network.knows),
            messages=len(network.posts) + len(network.comments),
            forums=len(network.forums),
        )

    def as_row(self) -> dict[str, int]:
        """Table 3 row (entity counts)."""
        return {
            "Nodes": self.nodes,
            "Edges": self.edges,
            "Persons": self.persons,
            "Friends": self.friendships,
            "Messages": self.messages,
            "Forums": self.forums,
        }


@dataclass
class FrequencyStatistics:
    """Per-person frequency counts kept as a by-product of generation.

    These are the raw columns Parameter-Count tables are assembled from
    (paper Fig. 6: ``|⋈1|`` = friends per person, ``|⋈2|`` = posts of those
    friends, ...).
    """

    #: person id → number of friends (1-hop).
    friend_count: dict[int, int] = field(default_factory=dict)
    #: person id → number of distinct friends-of-friends (2 hops, exclusive).
    two_hop_count: dict[int, int] = field(default_factory=dict)
    #: person id → number of messages (posts+comments) the person created.
    message_count: dict[int, int] = field(default_factory=dict)
    #: person id → total messages created by the person's friends.
    friend_message_count: dict[int, int] = field(default_factory=dict)
    #: person id → total messages created by friends + friends-of-friends.
    two_hop_message_count: dict[int, int] = field(default_factory=dict)
    #: tag id → number of messages carrying the tag.
    tag_message_count: dict[int, int] = field(default_factory=dict)
    #: forum id → number of posts in the forum.
    forum_post_count: dict[int, int] = field(default_factory=dict)

    @classmethod
    def of(cls, network: SocialNetwork) -> "FrequencyStatistics":
        stats = cls()
        neighbors: dict[int, set[int]] = {p.id: set()
                                          for p in network.persons}
        for edge in network.knows:
            neighbors[edge.person1_id].add(edge.person2_id)
            neighbors[edge.person2_id].add(edge.person1_id)

        for person in network.persons:
            friends = neighbors[person.id]
            stats.friend_count[person.id] = len(friends)
            two_hop: set[int] = set()
            for friend in friends:
                two_hop |= neighbors[friend]
            two_hop.discard(person.id)
            two_hop |= friends
            stats.two_hop_count[person.id] = len(two_hop)

        message_count: dict[int, int] = {p.id: 0 for p in network.persons}
        for message in network.messages():
            message_count[message.author_id] = (
                message_count.get(message.author_id, 0) + 1)
            for tag_id in message.tag_ids:
                stats.tag_message_count[tag_id] = (
                    stats.tag_message_count.get(tag_id, 0) + 1)
        stats.message_count = message_count

        for person in network.persons:
            friends = neighbors[person.id]
            friend_total = sum(message_count.get(f, 0) for f in friends)
            stats.friend_message_count[person.id] = friend_total
            two_hop: set[int] = set(friends)
            for friend in friends:
                two_hop |= neighbors[friend]
            two_hop.discard(person.id)
            stats.two_hop_message_count[person.id] = sum(
                message_count.get(p, 0) for p in two_hop)

        for post in network.posts:
            stats.forum_post_count[post.forum_id] = (
                stats.forum_post_count.get(post.forum_id, 0) + 1)
        return stats


def two_hop_histogram(stats: FrequencyStatistics, buckets: int = 30,
                      ) -> list[tuple[int, int]]:
    """Histogram of 2-hop neighborhood sizes (paper Fig. 5a)."""
    values = sorted(stats.two_hop_count.values())
    if not values:
        return []
    top = values[-1] or 1
    width = max(top // buckets, 1)
    histogram: dict[int, int] = {}
    for value in values:
        key = (value // width) * width
        histogram[key] = histogram.get(key, 0) + 1
    return sorted(histogram.items())
