"""Friendship (knows) edge generation (paper §2.3, Figure 1).

The "Homophily Principle" is realized by a multi-stage edge generation
process over correlation dimensions:

* **pass 0 — where people studied**: persons are sorted by the composite
  key ``(city Z-order << 24) | (university << 12) | class year``;
* **pass 1 — interests**: sorted by their primary interest tag;
* **pass 2 — random**: sorted by a keyed random number, reproducing the
  inhomogeneities found in real data.

In each pass every person walks a bounded window of the persons ahead of it
in sort order and picks friends with a geometric probability that decays
with window distance (zero outside the window).  Each person has a target
degree drawn from the scaled Facebook distribution
(:mod:`repro.datagen.degrees`); the per-pass budgets split it 45% / 45% /
10% across the three dimensions.
"""

from __future__ import annotations

from ..ids import serial_of
from ..rng import RandomStream
from ..schema.entities import Knows, Person
from ..sim_time import MILLIS_PER_DAY
from .config import DatagenConfig
from .degrees import target_degree
from .universe import Universe, university_serial
from .zorder import study_location_key

#: Attempt multiplier before a person gives up filling its pass budget.
_ATTEMPTS_PER_EDGE = 12


def sort_key_for_pass(person: Person, pass_index: int, universe: Universe,
                      seed: int) -> int:
    """The correlation-dimension sort key of ``person`` for a given pass."""
    serial = serial_of(person.id)
    if pass_index == 0:
        if person.study_at:
            study = person.study_at[0]
            university = universe.organisation_by_id[study.organisation_id]
            city_z = universe.city_zorder.get(university.location_id, 0)
            return study_location_key(city_z,
                                      university_serial(study.organisation_id),
                                      study.class_year)
        # Persons without a university sort by home city with the
        # university slot saturated, so they cluster geographically after
        # all alumni of local universities.
        city_z = universe.city_zorder.get(person.city_id, 0)
        return study_location_key(city_z, 0xFFF, 0)
    if pass_index == 1:
        if person.interests:
            primary = serial_of(person.interests[0])
            # Tie-break by a keyed random so same-interest persons mix.
            jitter = RandomStream.for_key(seed, "dim1jitter", serial)
            return (primary << 32) | (jitter.next_u64() & 0xFFFFFFFF)
        jitter = RandomStream.for_key(seed, "dim1jitter", serial)
        return (0xFFFF << 32) | (jitter.next_u64() & 0xFFFFFFFF)
    if pass_index == 2:
        return RandomStream.for_key(seed, "dim2key", serial).next_u64()
    raise ValueError(f"unknown pass {pass_index}")


def split_degree_budget(total: int,
                        shares: tuple[float, float, float]) -> list[int]:
    """Split a target degree over the three passes (45/45/10 by default)."""
    first = round(total * shares[0])
    second = round(total * shares[1])
    rest = max(total - first - second, 0)
    return [first, second, rest]


class FriendshipGenerator:
    """Runs the three sliding-window passes and accumulates knows edges."""

    def __init__(self, config: DatagenConfig, universe: Universe) -> None:
        self.config = config
        self.universe = universe

    def generate(self, persons: list[Person]) -> list[Knows]:
        """Produce the friendship edge list for the given persons."""
        config = self.config
        n = len(persons)
        targets = [target_degree(serial_of(p.id), n, config.seed)
                   for p in persons]
        # Per-pass budgets: an edge made in pass p consumes the pass-p
        # budget of BOTH endpoints, so each correlation dimension keeps
        # its 45/45/10 share of the final degree.
        remaining = [split_degree_budget(t, config.dimension_shares)
                     for t in targets]
        edges: list[Knows] = []
        edge_set: set[tuple[int, int]] = set()

        for pass_index in range(3):
            order = sorted(
                range(n),
                key=lambda i: (sort_key_for_pass(persons[i], pass_index,
                                                 self.universe, config.seed),
                               serial_of(persons[i].id)))
            self._run_pass(pass_index, order, persons, remaining, edges,
                           edge_set)
        edges.sort(key=lambda e: (e.creation_date, e.person1_id,
                                  e.person2_id))
        return edges

    def _run_pass(self, pass_index: int, order: list[int],
                  persons: list[Person], remaining: list[list[int]],
                  edges: list[Knows],
                  edge_set: set[tuple[int, int]]) -> None:
        """One sliding-window pass over persons in correlation-key order."""
        config = self.config
        window = config.friendship_window
        n = len(order)
        for position, person_index in enumerate(order):
            budget = remaining[person_index][pass_index]
            if budget <= 0:
                continue
            person = persons[person_index]
            stream = RandomStream.for_key(config.seed, "friend", pass_index,
                                          serial_of(person.id))
            made = 0
            attempts = 0
            max_attempts = budget * _ATTEMPTS_PER_EDGE
            while made < budget and attempts < max_attempts:
                attempts += 1
                offset = 1 + stream.geometric(config.window_geometric_p)
                if offset > window:
                    continue  # probability is zero outside the window
                candidate_position = position + offset
                if candidate_position >= n:
                    continue
                other_index = order[candidate_position]
                if remaining[other_index][pass_index] <= 0:
                    continue
                other = persons[other_index]
                key = (min(person.id, other.id), max(person.id, other.id))
                if key in edge_set:
                    continue
                edge_set.add(key)
                creation = self._edge_creation_date(stream, person, other)
                edges.append(Knows(key[0], key[1], creation, pass_index))
                remaining[person_index][pass_index] -= 1
                remaining[other_index][pass_index] -= 1
                made += 1

    def _edge_creation_date(self, stream: RandomStream, a: Person,
                            b: Person) -> int:
        """Friendship date: after both joined, skewed toward soon-after."""
        window = self.config.window
        base = max(a.creation_date, b.creation_date) + MILLIS_PER_DAY
        room = max(window.end - base - MILLIS_PER_DAY, 1)
        lag = int(stream.exponential(room * 0.25))
        return min(base + lag, window.end - 1)


def generate_friendships(config: DatagenConfig, universe: Universe,
                         persons: list[Person]) -> list[Knows]:
    """Convenience wrapper over :class:`FriendshipGenerator`."""
    return FriendshipGenerator(config, universe).generate(persons)
