"""Friendship (knows) edge generation (paper §2.3, Figure 1).

The "Homophily Principle" is realized by a multi-stage edge generation
process over correlation dimensions:

* **pass 0 — where people studied**: persons are sorted by the composite
  key ``(city Z-order << 24) | (university << 12) | class year``;
* **pass 1 — interests**: sorted by their primary interest tag;
* **pass 2 — random**: sorted by a keyed random number, reproducing the
  inhomogeneities found in real data.

In each pass every person walks a bounded window of the persons ahead of it
in sort order and picks friends with a geometric probability that decays
with window distance (zero outside the window).  Each person has a target
degree drawn from the scaled Facebook distribution
(:mod:`repro.datagen.degrees`); the per-pass budgets split it 45% / 45% /
10% across the three dimensions.

Parallel execution
------------------

The window sweep of a pass mutates shared state (pass budgets, the global
edge set), so it cannot be split naively.  It *is* almost local, though:
a person only ever reads the budgets of the ≤ ``friendship_window``
persons ahead of it and membership of the specific edge keys it draws.
The parallel path exploits that with **speculative block execution**
(DESIGN.md §4f): sort-order positions are cut into blocks, every block is
swept in a worker process under the *pass-start* state while recording a
read log per person (own starting budget, each candidate's
budget-positivity, each tested edge key), and the parent then stitches
blocks back in serial order — a person whose recorded reads all match the
live state commits its pre-built edges verbatim; any mismatched person is
re-swept in-process against the live state.  Because every person draws
from its own keyed random stream, a validated speculation is *exactly*
the serial computation, and a re-sweep is exact by construction — so the
merged edge list is byte-identical to the serial run for any job count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import telemetry
from ..ids import EntityKind, make_id, serial_of
from ..rng import RandomStream
from ..schema.entities import Knows, Person
from ..sim_time import MILLIS_PER_DAY, SimulationWindow
from .config import DatagenConfig
from .degrees import target_degree
from .universe import Universe, university_serial
from .zorder import study_location_key

#: Attempt multiplier before a person gives up filling its pass budget.
_ATTEMPTS_PER_EDGE = 12


def sort_key_for_pass(person: Person, pass_index: int, universe: Universe,
                      seed: int) -> int:
    """The correlation-dimension sort key of ``person`` for a given pass."""
    serial = serial_of(person.id)
    if pass_index == 0:
        if person.study_at:
            study = person.study_at[0]
            university = universe.organisation_by_id[study.organisation_id]
            city_z = universe.city_zorder.get(university.location_id, 0)
            return study_location_key(city_z,
                                      university_serial(study.organisation_id),
                                      study.class_year)
        # Persons without a university sort by home city with the
        # university slot saturated, so they cluster geographically after
        # all alumni of local universities.
        city_z = universe.city_zorder.get(person.city_id, 0)
        return study_location_key(city_z, 0xFFF, 0)
    if pass_index == 1:
        if person.interests:
            primary = serial_of(person.interests[0])
            # Tie-break by a keyed random so same-interest persons mix.
            jitter = RandomStream.for_key(seed, "dim1jitter", serial)
            return (primary << 32) | (jitter.next_u64() & 0xFFFFFFFF)
        jitter = RandomStream.for_key(seed, "dim1jitter", serial)
        return (0xFFFF << 32) | (jitter.next_u64() & 0xFFFFFFFF)
    if pass_index == 2:
        return RandomStream.for_key(seed, "dim2key", serial).next_u64()
    raise ValueError(f"unknown pass {pass_index}")


def split_degree_budget(total: int,
                        shares: tuple[float, float, float]) -> list[int]:
    """Split a target degree over the three passes (45/45/10 by default)."""
    first = round(total * shares[0])
    second = round(total * shares[1])
    rest = max(total - first - second, 0)
    return [first, second, rest]


def _edge_creation_date(stream: RandomStream, window: SimulationWindow,
                        date_a: int, date_b: int) -> int:
    """Friendship date: after both joined, skewed toward soon-after."""
    base = max(date_a, date_b) + MILLIS_PER_DAY
    room = max(window.end - base - MILLIS_PER_DAY, 1)
    lag = int(stream.exponential(room * 0.25))
    return min(base + lag, window.end - 1)


@dataclass
class PersonSweep:
    """Outcome of one person's window sweep (plus its read log).

    The read log makes speculative sweeps checkable: an entry
    ``(other, had_budget, edge_known)`` records, per state-touching
    attempt, which candidate was probed and what the sweep observed.
    ``edge_known`` is only meaningful when ``had_budget`` is True (the
    serial code short-circuits the edge-set probe otherwise).
    """

    serial: int
    position: int
    start_budget: int
    reads: list[tuple[int, bool, bool]] = field(default_factory=list)
    edges: list[Knows] = field(default_factory=list)
    #: Partner serial for each made edge, aligned with ``edges``.
    partners: list[int] = field(default_factory=list)


def sweep_person(config: DatagenConfig, pass_index: int, serial: int,
                 position: int, order, base: int, total: int, date_of,
                 start_budget: int, budget_of, edge_known,
                 record: bool = False) -> PersonSweep:
    """Run one person's sliding-window sweep.

    Shared by the serial pass, the worker-side block speculation, and
    the parent-side re-sweep of invalidated speculations, so all three
    consume the person's keyed random stream identically.

    ``order`` may be a slice of the full sort order starting at global
    position ``base`` (workers ship the block plus a window-sized halo);
    ``total`` is always the full pass length.  ``budget_of(serial)`` and
    ``edge_known(key)`` expose the caller's state *excluding* this
    person's own writes — the sweep tracks those internally, exactly as
    the historical in-place implementation did.
    """
    sweep = PersonSweep(serial, position, start_budget)
    if start_budget <= 0:
        return sweep
    stream = RandomStream.for_key(config.seed, "friend", pass_index, serial)
    person_id = make_id(EntityKind.PERSON, serial)
    window = config.friendship_window
    own_decrements: dict[int, int] = {}
    own_keys: set[tuple[int, int]] = set()
    made = 0
    attempts = 0
    max_attempts = start_budget * _ATTEMPTS_PER_EDGE
    while made < start_budget and attempts < max_attempts:
        attempts += 1
        offset = 1 + stream.geometric(config.window_geometric_p)
        if offset > window:
            continue  # probability is zero outside the window
        candidate_position = position + offset
        if candidate_position >= total:
            continue
        other = order[candidate_position - base]
        has_budget = (budget_of(other)
                      - own_decrements.get(other, 0)) > 0
        if not has_budget:
            if record:
                sweep.reads.append((other, False, False))
            continue
        other_id = make_id(EntityKind.PERSON, other)
        key = ((person_id, other_id) if person_id < other_id
               else (other_id, person_id))
        known = key in own_keys or edge_known(key)
        if record:
            sweep.reads.append((other, True, known))
        if known:
            continue
        creation = _edge_creation_date(stream, config.window,
                                       date_of(serial), date_of(other))
        sweep.edges.append(Knows(key[0], key[1], creation, pass_index))
        sweep.partners.append(other)
        own_keys.add(key)
        own_decrements[other] = own_decrements.get(other, 0) + 1
        made += 1
    return sweep


def speculate_block(config: DatagenConfig, payload: dict) -> list[PersonSweep]:
    """Worker side of a parallel pass: sweep one block under assumed state.

    ``payload`` carries the block's slice of the sort order (with its
    window halo), the pass budgets and creation dates of every slice
    person, and the already-known edge keys among them — a snapshot of
    the pass-start state.  The block is swept sequentially under that
    snapshot with read recording on; the parent validates the logs
    against the live state when it stitches blocks back together.
    """
    pass_index = payload["pass_index"]
    start = payload["start"]
    order_slice = payload["order"]
    budgets = dict(payload["budgets"])
    dates = payload["dates"]
    known: set[tuple[int, int]] = set(payload["known"])
    total = payload["total"]
    sweeps: list[PersonSweep] = []
    for rel in range(payload["block_len"]):
        serial = order_slice[rel]
        sweep = sweep_person(
            config, pass_index, serial, start + rel, order_slice, start,
            total, dates.__getitem__, budgets[serial],
            budgets.__getitem__, known.__contains__, record=True)
        for partner, knows in zip(sweep.partners, sweep.edges):
            budgets[serial] -= 1
            budgets[partner] -= 1
            known.add((knows.person1_id, knows.person2_id))
        sweeps.append(sweep)
    return sweeps


class FriendshipGenerator:
    """Runs the three sliding-window passes and accumulates knows edges."""

    def __init__(self, config: DatagenConfig, universe: Universe) -> None:
        self.config = config
        self.universe = universe
        #: Speculation accounting of the last ``generate`` call.
        self.committed_speculations = 0
        self.reswept_speculations = 0

    def generate(self, persons: list[Person],
                 executor=None) -> list[Knows]:
        """Produce the friendship edge list for the given persons.

        With an ``executor`` (see :mod:`repro.datagen.parallel`) the
        window sweeps run speculatively in worker processes; the output
        is identical either way.
        """
        config = self.config
        n = len(persons)
        self._ids = [p.id for p in persons]
        self._dates = [p.creation_date for p in persons]
        targets = [target_degree(serial_of(p.id), n, config.seed)
                   for p in persons]
        # Per-pass budgets: an edge made in pass p consumes the pass-p
        # budget of BOTH endpoints, so each correlation dimension keeps
        # its 45/45/10 share of the final degree.
        self._remaining = [split_degree_budget(t, config.dimension_shares)
                           for t in targets]
        self._edges: list[Knows] = []
        self._edge_set: set[tuple[int, int]] = set()
        #: serial → set of partner serials (for block state snapshots).
        self._neighbors: dict[int, set[int]] = {}

        for pass_index in range(3):
            order = sorted(
                range(n),
                key=lambda i: (sort_key_for_pass(persons[i], pass_index,
                                                 self.universe, config.seed),
                               serial_of(persons[i].id)))
            if executor is not None:
                self._run_pass_parallel(pass_index, order, executor)
            else:
                self._run_pass(pass_index, order)
        edges = self._edges
        edges.sort(key=lambda e: (e.creation_date, e.person1_id,
                                  e.person2_id))
        return edges

    # ------------------------------------------------------------------
    # serial path
    # ------------------------------------------------------------------

    def _run_pass(self, pass_index: int, order: list[int]) -> None:
        """One sliding-window pass over persons in correlation-key order."""
        n = len(order)
        for position, serial in enumerate(order):
            budget = self._remaining[serial][pass_index]
            if budget <= 0:
                continue
            sweep = sweep_person(
                self.config, pass_index, serial, position, order, 0, n,
                self._dates.__getitem__, budget,
                lambda other: self._remaining[other][pass_index],
                self._edge_set.__contains__)
            self._apply(sweep, pass_index)

    def _apply(self, sweep: PersonSweep, pass_index: int) -> None:
        """Commit one person's sweep to the live pass state."""
        for partner, knows in zip(sweep.partners, sweep.edges):
            self._edges.append(knows)
            self._edge_set.add((knows.person1_id, knows.person2_id))
            self._remaining[sweep.serial][pass_index] -= 1
            self._remaining[partner][pass_index] -= 1
            self._neighbors.setdefault(sweep.serial, set()).add(partner)
            self._neighbors.setdefault(partner, set()).add(sweep.serial)

    # ------------------------------------------------------------------
    # parallel path: speculative blocks, sequential stitch
    # ------------------------------------------------------------------

    def _run_pass_parallel(self, pass_index: int, order: list[int],
                           executor) -> None:
        n = len(order)
        window = self.config.friendship_window
        blocks = executor.partition(n)
        payloads = []
        for start, end in blocks:
            order_slice = order[start:min(end + window, n)]
            reach = set(order_slice)
            known: set[tuple[int, int]] = set()
            for serial in order_slice:
                for partner in self._neighbors.get(serial, ()):
                    if serial < partner and partner in reach:
                        known.add((self._ids[serial], self._ids[partner]))
            payloads.append({
                "pass_index": pass_index,
                "start": start,
                "block_len": end - start,
                "order": order_slice,
                "total": n,
                "budgets": {s: self._remaining[s][pass_index]
                            for s in order_slice},
                "dates": {s: self._dates[s] for s in order_slice},
                "known": known,
            })
        results = executor.run_tasks(
            "friendship_block", payloads,
            span_name=f"datagen.friendships.pass{pass_index}")
        committed = reswept = 0
        for sweeps in results:
            for sweep in sweeps:
                if self._validate(sweep, pass_index):
                    self._apply(sweep, pass_index)
                    committed += 1
                else:
                    fresh = sweep_person(
                        self.config, pass_index, sweep.serial,
                        sweep.position, order, 0, n,
                        self._dates.__getitem__,
                        self._remaining[sweep.serial][pass_index],
                        lambda other: self._remaining[other][pass_index],
                        self._edge_set.__contains__)
                    self._apply(fresh, pass_index)
                    reswept += 1
        self.committed_speculations += committed
        self.reswept_speculations += reswept
        telemetry.counter("datagen.friendships.speculation.committed") \
            .inc(committed)
        if reswept:
            telemetry.counter("datagen.friendships.speculation.reswept") \
                .inc(reswept)

    def _validate(self, sweep: PersonSweep, pass_index: int) -> bool:
        """Would the serial sweep have observed exactly what this
        speculation recorded?  Simulates the sweep's own writes so later
        reads of the same candidate see its earlier decrements."""
        if self._remaining[sweep.serial][pass_index] != sweep.start_budget:
            return False
        person_id = self._ids[sweep.serial]
        own_decrements: dict[int, int] = {}
        own_keys: set[tuple[int, int]] = set()
        for other, had_budget, edge_known in sweep.reads:
            actual_budget = (self._remaining[other][pass_index]
                             - own_decrements.get(other, 0)) > 0
            if actual_budget != had_budget:
                return False
            if not had_budget:
                continue
            other_id = self._ids[other]
            key = ((person_id, other_id) if person_id < other_id
                   else (other_id, person_id))
            actual_known = key in own_keys or key in self._edge_set
            if actual_known != edge_known:
                return False
            if not edge_known:
                own_keys.add(key)
                own_decrements[other] = own_decrements.get(other, 0) + 1
                own_decrements[sweep.serial] = \
                    own_decrements.get(sweep.serial, 0) + 1
        return True


def generate_friendships(config: DatagenConfig, universe: Universe,
                         persons: list[Person],
                         executor=None) -> list[Knows]:
    """Convenience wrapper over :class:`FriendshipGenerator`."""
    return FriendshipGenerator(config, universe).generate(persons, executor)
